// Quickstart: simulate a small Illumina-like run, correct it through
// the unified corrector registry and the streaming correction pipeline,
// and measure the result against exact ground truth.
//
//   $ ./examples/quickstart [genome_length] [coverage]
//
// This walks the same path a user with a real FASTQ would take —
// core::make_corrector("reptile", ...) + core::CorrectionPipeline over
// FASTQ files — with the simulator standing in for the sequencer.

#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "eval/correction_metrics.hpp"
#include "io/fastx.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  const std::size_t genome_len =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 50000;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 60.0;

  // 1. A target genome and a sequencing run with 1% substitution errors.
  util::Rng rng(2024);
  sim::GenomeSpec gspec;
  gspec.length = genome_len;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto error_model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig read_cfg;
  read_cfg.read_length = 36;
  read_cfg.coverage = coverage;
  const auto run = sim::simulate_reads(genome.sequence, error_model,
                                       read_cfg, rng);
  std::cout << "simulated " << run.reads.size() << " reads ("
            << run.substitution_errors << " erroneous bases, "
            << util::Table::percent(run.realized_error_rate()) << ")\n";

  // 2. Write the run to FASTQ, as real data would arrive.
  const std::string path = "/tmp/ngs_quickstart.fastq";
  const std::string corrected_path = "/tmp/ngs_quickstart.corrected.fastq";
  io::write_fastq_file(path, run.reads);
  std::cout << "wrote " << path << "\n";

  // 3. Pick a method from the registry and stream-correct the file.
  //    (Every surveyed corrector is one name away — see
  //    `ngs-correct --method list`.)
  core::CorrectorConfig config;
  config.genome_length = genome_len;
  util::Timer timer;
  core::CorrectionPipeline pipeline(core::make_corrector("reptile", config));
  const auto result = pipeline.run_file(path, corrected_path);
  std::cout << "corrected: " << result.report.summary() << "\n";
  std::cout << "pipeline: " << result.batches << " batches of "
            << pipeline.options().batch_size << ", "
            << (result.streamed ? "streamed" : "buffered") << " phase 1, "
            << util::Table::fixed(timer.seconds(), 1) << "s\n";

  // 4. Score against the simulator's exact truth.
  const auto corrected = io::read_fastq_file(corrected_path);
  const auto metrics = eval::evaluate_correction(run.reads, corrected.reads);
  std::cout << "sensitivity " << util::Table::percent(metrics.sensitivity())
            << ", specificity " << util::Table::percent(metrics.specificity())
            << ", gain " << util::Table::percent(metrics.gain())
            << ", EBA " << util::Table::fixed(metrics.eba() * 100, 3)
            << "%\n";
  std::cout << "corrected reads written to " << corrected_path << "\n";
  return 0;
}
