// Quickstart: simulate a small Illumina-like run, correct it with
// Reptile, and measure the result against exact ground truth.
//
//   $ ./examples/quickstart [genome_length] [coverage]
//
// This walks the same path a user with a real FASTQ would take —
// io::read_fastq_file + reptile::select_parameters + ReptileCorrector —
// with the simulator standing in for the sequencer.

#include <cstdlib>
#include <iostream>

#include "eval/correction_metrics.hpp"
#include "io/fastx.hpp"
#include "reptile/corrector.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  const std::size_t genome_len =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 50000;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 60.0;

  // 1. A target genome and a sequencing run with 1% substitution errors.
  util::Rng rng(2024);
  sim::GenomeSpec gspec;
  gspec.length = genome_len;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto error_model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig read_cfg;
  read_cfg.read_length = 36;
  read_cfg.coverage = coverage;
  const auto run = sim::simulate_reads(genome.sequence, error_model,
                                       read_cfg, rng);
  std::cout << "simulated " << run.reads.size() << " reads ("
            << run.substitution_errors << " erroneous bases, "
            << util::Table::percent(run.realized_error_rate()) << ")\n";

  // 2. Round-trip through FASTQ, as real data would arrive.
  const std::string path = "/tmp/ngs_quickstart.fastq";
  io::write_fastq_file(path, run.reads);
  auto reads = io::read_fastq_file(path);
  std::cout << "wrote and re-read " << path << "\n";

  // 3. Choose Reptile parameters from the data and correct.
  const auto params = reptile::select_parameters(reads, genome_len);
  std::cout << "selected parameters: k=" << params.k
            << " Qc=" << params.quality_cutoff << " Cg=" << params.c_good
            << " Cm=" << params.c_min << "\n";
  util::Timer timer;
  reptile::ReptileCorrector corrector(reads, params);
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(reads, stats);
  std::cout << "corrected " << stats.bases_changed << " bases in "
            << util::Table::fixed(timer.seconds(), 1) << "s\n";

  // 4. Score against the simulator's exact truth.
  const auto metrics = eval::evaluate_correction(run.reads, corrected);
  std::cout << "sensitivity " << util::Table::percent(metrics.sensitivity())
            << ", specificity " << util::Table::percent(metrics.specificity())
            << ", gain " << util::Table::percent(metrics.gain())
            << ", EBA " << util::Table::fixed(metrics.eba() * 100, 3)
            << "%\n";

  // 5. Persist the corrected reads.
  seq::ReadSet out;
  out.reads = corrected;
  io::write_fastq_file("/tmp/ngs_quickstart.corrected.fastq", out);
  std::cout << "corrected reads written to "
               "/tmp/ngs_quickstart.corrected.fastq\n";
  return 0;
}
