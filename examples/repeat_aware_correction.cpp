// Repeat-aware error detection and correction with REDEEM (Chapter 3):
// a genome whose sequence is 60% spanned by a 35-copy repeat family
// defeats count-threshold error detection — erroneous kmers in repeat
// shadows are observed often enough to look genomic. REDEEM's EM
// estimate of the true read attempts separates them.
//
//   $ ./examples/repeat_aware_correction

#include <iostream>

#include "core/registry.hpp"
#include "eval/correction_metrics.hpp"
#include "eval/kmer_classification.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/threshold.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

using namespace ngs;

int main() {
  // A repeat-rich genome: 35 copies of a 400 bp element (60% span).
  util::Rng rng(7);
  sim::GenomeSpec gspec;
  gspec.length = 25000;
  gspec.repeats = {{400, 37, 0.0}};
  const auto genome = sim::simulate_genome(gspec, rng);
  std::cout << "genome: " << genome.sequence.size() << " bp, "
            << util::Table::percent(genome.repeat_fraction, 0)
            << " repeat span\n";

  const auto model_true = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 60.0;
  const auto run =
      sim::simulate_reads(genome.sequence, model_true, cfg, rng);

  // Fit the REDEEM model under the true Illumina error distribution.
  const int k = 11;
  const auto spectrum = kspec::KSpectrum::build(run.reads, k, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, k, model_true);
  const redeem::RedeemModel model(spectrum, q, {});
  std::cout << "EM converged after " << model.iterations_run()
            << " iterations over " << spectrum.size() << " kmers\n";

  // Detection: compare thresholding on Y vs on T against genome truth.
  const auto genome_spectrum =
      kspec::KSpectrum::build_from_sequence(genome.sequence, k, true);
  const auto truth = eval::genome_truth(spectrum, genome_spectrum);
  const auto thresholds = eval::linear_thresholds(80.0, 0.5);
  const auto y_best = eval::best_point(
      eval::sweep_thresholds(model.observed(), truth, thresholds));
  const auto t_best = eval::best_point(
      eval::sweep_thresholds(model.estimates(), truth, thresholds));
  std::cout << "min FP+FN thresholding on observed counts Y: "
            << y_best.wrong() << " (threshold " << y_best.threshold << ")\n";
  std::cout << "min FP+FN thresholding on estimated T:       "
            << t_best.wrong() << " (threshold " << t_best.threshold << ")\n";

  // Model-chosen threshold (Sec. 3.7) — no truth needed.
  util::Rng mix_rng(3);
  const auto fit =
      redeem::fit_threshold_mixture(model.estimates(), {}, mix_rng);
  std::cout << "mixture-inferred threshold: "
            << util::Table::fixed(fit.threshold, 1) << " (G="
            << fit.num_normals << ", BIC-selected)\n";

  // Correction — through the unified registry (the adapter refits the
  // same EM model; detection above inspected it directly).
  core::CorrectorConfig config;
  config.genome_length = genome.sequence.size();
  config.k = k;
  config.error_model = model_true;
  auto corrector = core::make_corrector("redeem", config);
  corrector->build(run.reads);
  core::CorrectionReport report;
  const auto corrected = corrector->correct_all(run.reads, report);
  const auto metrics = eval::evaluate_correction(run.reads, corrected);
  std::cout << "correction: gain "
            << util::Table::percent(metrics.gain()) << ", sensitivity "
            << util::Table::percent(metrics.sensitivity())
            << ", specificity "
            << util::Table::percent(metrics.specificity()) << " ("
            << report.extra("reads_flagged") << " reads flagged)\n";
  return 0;
}
