// Metagenomic read clustering with CLOSET (Chapter 4): simulate a 16S
// amplicon pool over a known taxonomy, cluster it at a ladder of
// similarity thresholds, and show how the Adjusted Rand Index against
// each taxonomic rank guides threshold selection.
//
//   $ ./examples/metagenome_clustering [num_reads]

#include <cstdlib>
#include <iostream>

#include "closet/closet.hpp"
#include "eval/ari.hpp"
#include "sim/metagenome.hpp"
#include "util/table.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  const std::size_t num_reads =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;

  // A taxonomy: 3 phyla -> 12 genera -> 48 species, log-normal abundances.
  util::Rng rng(99);
  sim::TaxonomySpec tspec;
  tspec.branching = {3, 4, 4};
  tspec.divergence = {0.12, 0.06, 0.02};
  const auto taxonomy = sim::simulate_taxonomy(tspec, rng);
  sim::MetagenomeReadConfig cfg;
  cfg.num_reads = num_reads;
  cfg.error_rate = 0.004;
  const auto sample = sim::simulate_metagenome_reads(taxonomy, cfg, rng);
  std::cout << "simulated " << sample.reads.size() << " 454-like reads from "
            << taxonomy.num_species() << " species\n";

  // Cluster at a decreasing ladder of thresholds.
  closet::ClosetParams params;
  params.thresholds = {0.95, 0.90, 0.85, 0.80, 0.75};
  params.cmin = 0.5;
  closet::Closet closet(params);
  const auto result = closet.run(sample.reads);
  std::cout << "sketching screened "
            << util::Table::num(result.unique_candidate_pairs)
            << " candidate pairs ("
            << util::Table::num(result.confirmed_edges)
            << " edges confirmed) out of "
            << util::Table::num(sample.reads.size() *
                                (sample.reads.size() - 1) / 2)
            << " possible\n\n";

  // Truth labels per rank for ARI.
  auto rank_labels = [&](std::size_t rank) {
    std::vector<std::uint32_t> labels;
    labels.reserve(sample.species_of.size());
    for (const auto s : sample.species_of) {
      labels.push_back(
          static_cast<std::uint32_t>(taxonomy.ancestor_at_rank(s, rank)));
    }
    return labels;
  };
  const auto phylum = rank_labels(1);
  const auto genus = rank_labels(2);
  const auto species = rank_labels(3);

  util::Table table({"Threshold", "Clusters", "Largest", "ARI phylum",
                     "ARI genus", "ARI species"});
  for (const auto& level : result.levels) {
    std::size_t largest = 0;
    for (const auto& c : level.clusters) {
      largest = std::max(largest, c.verts.size());
    }
    const auto labels =
        closet::Closet::to_partition(level.clusters, sample.reads.size());
    table.add_row({util::Table::percent(level.threshold, 0),
                   util::Table::num(level.resulting_clusters),
                   util::Table::num(largest),
                   util::Table::fixed(
                       eval::adjusted_rand_index(labels, phylum).ari, 3),
                   util::Table::fixed(
                       eval::adjusted_rand_index(labels, genus).ari, 3),
                   util::Table::fixed(
                       eval::adjusted_rand_index(labels, species).ari, 3)});
  }
  table.print(std::cout);
  std::cout << "\nPick the threshold maximizing ARI at the rank of "
               "interest (Sec. 4.5.2).\n";
  return 0;
}
