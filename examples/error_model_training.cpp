// Error-model training (Sec. 3.4.1): estimate the position-specific
// misread matrices M from sequenced reads by mapping them back to a
// reference with the mismatch mapper — the "control lane" workflow —
// and verify the estimate recovers the 3'-ramp and nucleotide-specific
// substitution skew the reads were generated with.
//
//   $ ./examples/error_model_training

#include <iostream>

#include "mapper/mismatch_mapper.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/table.hpp"

using namespace ngs;

int main() {
  util::Rng rng(31);
  sim::GenomeSpec gspec;
  gspec.length = 40000;
  const auto genome = sim::simulate_genome(gspec, rng);

  const auto truth = sim::ErrorModel::illumina(36, 0.02);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 40.0;
  const auto run = sim::simulate_reads(genome.sequence, truth, cfg, rng);
  std::cout << "simulated " << run.reads.size()
            << " reads at 2% average error\n";

  mapper::MismatchMapper mapper(genome.sequence, 9);
  const auto stats = mapper::map_read_set(mapper, run.reads, 5);
  std::cout << "mapped: "
            << util::Table::percent(static_cast<double>(stats.unique) /
                                    static_cast<double>(stats.total))
            << " unique, "
            << util::Table::percent(static_cast<double>(stats.ambiguous) /
                                    static_cast<double>(stats.total))
            << " ambiguous\n";

  const auto estimated =
      mapper::estimate_error_model(mapper, genome.sequence, run.reads, 5);

  util::Table table({"Read position", "True error rate",
                     "Estimated error rate"});
  for (const std::size_t pos : {0ul, 8ul, 17ul, 26ul, 35ul}) {
    double true_rate = 0.0, est_rate = 0.0;
    for (int a = 0; a < 4; ++a) {
      true_rate += truth.error_prob(pos, static_cast<std::uint8_t>(a)) / 4;
      est_rate += estimated.error_prob(pos, static_cast<std::uint8_t>(a)) / 4;
    }
    table.add_row({std::to_string(pos + 1),
                   util::Table::percent(true_rate, 2),
                   util::Table::percent(est_rate, 2)});
  }
  table.print(std::cout);

  std::cout << "\nSubstitution skew at the 3' end (position 36):\n";
  util::Table skew({"", "A->C", "G->T", "C->A", "T->G"});
  const auto& t = truth.matrix(35);
  const auto& e = estimated.matrix(35);
  skew.add_row({"true", util::Table::percent(t[0][1], 2),
                util::Table::percent(t[2][3], 2),
                util::Table::percent(t[1][0], 2),
                util::Table::percent(t[3][2], 2)});
  skew.add_row({"estimated", util::Table::percent(e[0][1], 2),
                util::Table::percent(e[2][3], 2),
                util::Table::percent(e[1][0], 2),
                util::Table::percent(e[3][2], 2)});
  skew.print(std::cout);
  std::cout << "\nThe estimated matrices feed REDEEM as its tIED error "
               "distribution (see examples/repeat_aware_correction).\n";
  return 0;
}
