// The MapReduce substrate under failure (Sec. 1.3.1's case for Hadoop
// over MPI: automatic fault tolerance): a kmer-counting job keeps
// producing exact results while map tasks fail randomly, and the
// HDFS-like block store survives DataNode loss through replication and
// re-replication. The same retry machinery is drivable from the
// process-wide fault registry (ngs::fault) — the finale arms the
// mapreduce.map_task site and reruns the job deterministically.
//
//   $ ./examples/fault_tolerant_pipeline

#include <iostream>
#include <numeric>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "mapreduce/block_store.hpp"
#include "mapreduce/job.hpp"
#include "seq/kmer.hpp"
#include "sim/genome.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ngs;

int main() {
  // Input: simulated reads stored in the replicated block store.
  util::Rng rng(77);
  const auto genome = sim::random_sequence(20000, {0.25, 0.25, 0.25, 0.25},
                                           rng);
  mapreduce::BlockStore store(/*nodes=*/8, /*replication=*/3,
                              /*block_size=*/4096);
  store.write("genome.txt", genome);
  std::cout << "stored genome across " << store.num_nodes() << " nodes ("
            << store.total_blocks() << " blocks, replication 3)\n";

  // Two DataNodes die; the NameNode re-replicates.
  store.fail_node(1);
  store.fail_node(5);
  const std::size_t restored = store.rereplicate();
  std::cout << "2 DataNodes failed; re-replication created " << restored
            << " new replicas; file intact: "
            << (store.read("genome.txt") == genome ? "yes" : "NO") << "\n\n";

  // A kmer-counting MapReduce job with a 30% injected map-task failure
  // rate: tasks are retried from their input split, so the histogram is
  // exact despite the failures.
  std::vector<std::pair<std::uint32_t, std::string>> splits;
  const std::string data = store.read("genome.txt");
  for (std::size_t off = 0; off < data.size(); off += 1000) {
    // Overlap splits by k-1 so window kmers are not lost at boundaries.
    splits.emplace_back(static_cast<std::uint32_t>(off),
                        data.substr(off, 1000 + 11));
  }
  mapreduce::JobConfig config;
  config.task_failure_rate = 0.3;
  config.max_task_attempts = 32;
  mapreduce::JobCounters counters;
  using CountJob = mapreduce::Job<std::uint32_t, std::string, std::uint64_t,
                                  std::uint32_t, std::uint64_t,
                                  std::uint64_t>;
  const auto counts = CountJob::run(
      splits,
      [](const std::uint32_t&, const std::string& chunk,
         mapreduce::Emitter<std::uint64_t, std::uint32_t>& out) {
        std::vector<seq::KmerCode> codes;
        seq::extract_kmer_codes(chunk, 12, codes);
        for (const auto c : codes) out.emit(c, 1);
      },
      [](const std::uint64_t& kmer, std::span<const std::uint32_t> ones,
         mapreduce::Emitter<std::uint64_t, std::uint64_t>& out) {
        out.emit(kmer, ones.size());
      },
      config, &counters);

  std::uint64_t total = 0;
  for (const auto& [kmer, count] : counts) total += count;
  std::cout << "kmer-count job: " << counters.map_task_attempts
            << " task attempts (" << counters.map_task_failures
            << " injected failures, all retried)\n";
  std::cout << "distinct 12-mers: " << util::Table::num(counts.size())
            << ", total instances: " << util::Table::num(total) << "\n";

  // Verify against a direct count.
  std::vector<seq::KmerCode> direct;
  for (const auto& [off, chunk] : splits) {
    seq::extract_kmer_codes(chunk, 12, direct);
  }
  std::cout << "exact despite failures: "
            << (direct.size() == total ? "yes" : "NO") << "\n\n";

  // The same failures driven from the fault-injection registry: the
  // spec below kills exactly the 3rd map-task attempt process-wide,
  // reproducibly (see src/fault/sites.hpp for the full site catalog).
  fault::Registry::instance().configure("mapreduce.map_task=n3");
  mapreduce::JobCounters injected;
  const auto counts2 =
      CountJob::run(splits,
                    [](const std::uint32_t&, const std::string& chunk,
                       mapreduce::Emitter<std::uint64_t, std::uint32_t>& out) {
                      std::vector<seq::KmerCode> codes;
                      seq::extract_kmer_codes(chunk, 12, codes);
                      for (const auto c : codes) out.emit(c, 1);
                    },
                    [](const std::uint64_t& kmer,
                       std::span<const std::uint32_t> ones,
                       mapreduce::Emitter<std::uint64_t, std::uint64_t>& out) {
                      out.emit(kmer, ones.size());
                    },
                    {}, &injected);
  std::cout << "registry-injected run (mapreduce.map_task=n3): "
            << injected.map_task_failures
            << " injected failure, output identical: "
            << (counts2 == counts ? "yes" : "NO") << "\n";
  std::cout << fault::Registry::instance().summary();
  fault::Registry::instance().reset();
  return 0;
}
