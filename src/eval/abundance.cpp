#include "eval/abundance.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace ngs::eval {

std::vector<double> abundance_profile(
    const std::vector<std::uint32_t>& labels) {
  if (labels.empty()) return {};
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto l : labels) ++counts[l];
  std::vector<double> profile;
  profile.reserve(counts.size());
  const double n = static_cast<double>(labels.size());
  for (const auto& [_, c] : counts) {
    profile.push_back(static_cast<double>(c) / n);
  }
  std::sort(profile.rbegin(), profile.rend());
  return profile;
}

double bray_curtis(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double min_sum = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = i < a.size() ? a[i] : 0.0;
    const double y = i < b.size() ? b[i] : 0.0;
    min_sum += std::min(x, y);
    total += x + y;
  }
  return total == 0.0 ? 0.0 : 1.0 - 2.0 * min_sum / total;
}

double matched_abundance_error(
    const std::vector<std::uint32_t>& cluster_labels,
    const std::vector<std::uint32_t>& true_labels) {
  if (cluster_labels.size() != true_labels.size() || cluster_labels.empty()) {
    throw std::invalid_argument("matched_abundance_error: bad label vectors");
  }
  const std::size_t n = cluster_labels.size();

  // For each cluster, the true taxon it overlaps most.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> overlap;
  std::unordered_map<std::uint32_t, std::uint64_t> cluster_size, taxon_size;
  for (std::size_t i = 0; i < n; ++i) {
    ++overlap[{cluster_labels[i], true_labels[i]}];
    ++cluster_size[cluster_labels[i]];
    ++taxon_size[true_labels[i]];
  }
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>>
      best;  // cluster -> (taxon, overlap)
  for (const auto& [key, count] : overlap) {
    auto& entry = best[key.first];
    if (count > entry.second) entry = {key.second, count};
  }

  // Estimated per-taxon mass = summed sizes of clusters assigned to it.
  std::unordered_map<std::uint32_t, std::uint64_t> estimated;
  for (const auto& [cluster, assignment] : best) {
    estimated[assignment.first] += cluster_size[cluster];
  }

  // Total variation distance between the two per-taxon distributions.
  double tv = 0.0;
  for (const auto& [taxon, size] : taxon_size) {
    const double truth = static_cast<double>(size) / static_cast<double>(n);
    const auto it = estimated.find(taxon);
    const double est =
        it == estimated.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(n);
    tv += std::abs(truth - est);
  }
  for (const auto& [taxon, size] : estimated) {
    if (taxon_size.find(taxon) == taxon_size.end()) {
      tv += static_cast<double>(size) / static_cast<double>(n);
    }
  }
  return tv / 2.0;
}

}  // namespace ngs::eval
