#pragma once
// Taxonomic-unit abundance profiling (Sec. 4.1): the motivating task of
// Chapter 4 is to estimate each taxonomic unit's abundance as the
// fraction of reads belonging to it. Given a clustering (hard labels),
// the estimated profile is the normalized cluster-size vector; its
// quality against the true profile is measured with Bray-Curtis
// dissimilarity after greedily matching clusters to taxa by overlap.

#include <cstdint>
#include <vector>

namespace ngs::eval {

/// Normalized cluster-size profile: fraction of elements per label.
/// Returned in descending order (rank-abundance curve).
std::vector<double> abundance_profile(
    const std::vector<std::uint32_t>& labels);

/// Bray-Curtis dissimilarity between two abundance profiles (compared as
/// rank-abundance curves, padded with zeros). 0 = identical, 1 = disjoint.
double bray_curtis(const std::vector<double>& a, const std::vector<double>& b);

/// Matched abundance error: each cluster is assigned to the true taxon
/// it overlaps most; per-taxon estimated abundance is the summed size of
/// its clusters. Returns the total variation distance between the
/// estimated and true per-taxon profiles (0 = exact quantification).
double matched_abundance_error(const std::vector<std::uint32_t>& cluster_labels,
                               const std::vector<std::uint32_t>& true_labels);

}  // namespace ngs::eval
