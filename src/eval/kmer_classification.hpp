#pragma once
// Kmer-level error-detection evaluation (Sec. 3.4.2, Table 3.3/Fig 3.2):
// a kmer of the read spectrum is "valid" iff it occurs in the reference
// genome (either strand). Thresholding any score vector (observed counts
// Y or REDEEM's estimated attempts T) at M classifies kmers below M as
// erroneous; we count
//   FP — a valid kmer classified erroneous (score < M)
//   FN — an invalid kmer classified valid (score >= M)
// and sweep M to find the minimum FP+FN per method.

#include <cstdint>
#include <vector>

#include "kspec/kspectrum.hpp"

namespace ngs::eval {

/// truth[i] = true iff spectrum kmer i occurs in the genome.
std::vector<bool> genome_truth(const kspec::KSpectrum& read_spectrum,
                               const kspec::KSpectrum& genome_spectrum);

struct ThresholdPoint {
  double threshold = 0.0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t wrong() const { return fp + fn; }
};

/// Evaluates FP/FN of classifying kmer i erroneous iff scores[i] <
/// threshold, for each threshold in `thresholds`.
std::vector<ThresholdPoint> sweep_thresholds(
    const std::vector<double>& scores, const std::vector<bool>& truth,
    const std::vector<double>& thresholds);

/// The minimum-FP+FN point over a sweep.
ThresholdPoint best_point(const std::vector<ThresholdPoint>& sweep);

/// Convenience: thresholds 0..max_threshold step `step`.
std::vector<double> linear_thresholds(double max_threshold, double step);

}  // namespace ngs::eval
