#include "eval/kmer_classification.hpp"

#include <algorithm>
#include <stdexcept>

namespace ngs::eval {

std::vector<bool> genome_truth(const kspec::KSpectrum& read_spectrum,
                               const kspec::KSpectrum& genome_spectrum) {
  std::vector<bool> truth(read_spectrum.size());
  for (std::size_t i = 0; i < read_spectrum.size(); ++i) {
    truth[i] = genome_spectrum.contains(read_spectrum.code_at(i));
  }
  return truth;
}

std::vector<ThresholdPoint> sweep_thresholds(
    const std::vector<double>& scores, const std::vector<bool>& truth,
    const std::vector<double>& thresholds) {
  if (scores.size() != truth.size()) {
    throw std::invalid_argument("sweep_thresholds: size mismatch");
  }
  // Sort scores by value, separating valid and invalid kmers; then each
  // threshold is two binary searches instead of a full scan.
  std::vector<double> valid_scores, invalid_scores;
  valid_scores.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    (truth[i] ? valid_scores : invalid_scores).push_back(scores[i]);
  }
  std::sort(valid_scores.begin(), valid_scores.end());
  std::sort(invalid_scores.begin(), invalid_scores.end());

  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  for (const double m : thresholds) {
    ThresholdPoint p;
    p.threshold = m;
    // FP: valid kmers with score < m.
    p.fp = static_cast<std::uint64_t>(
        std::lower_bound(valid_scores.begin(), valid_scores.end(), m) -
        valid_scores.begin());
    // FN: invalid kmers with score >= m.
    p.fn = static_cast<std::uint64_t>(
        invalid_scores.end() -
        std::lower_bound(invalid_scores.begin(), invalid_scores.end(), m));
    out.push_back(p);
  }
  return out;
}

ThresholdPoint best_point(const std::vector<ThresholdPoint>& sweep) {
  if (sweep.empty()) return {};
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const ThresholdPoint& a, const ThresholdPoint& b) {
                             return a.wrong() < b.wrong();
                           });
}

std::vector<double> linear_thresholds(double max_threshold, double step) {
  std::vector<double> ts;
  for (double t = 0.0; t <= max_threshold; t += step) ts.push_back(t);
  return ts;
}

}  // namespace ngs::eval
