#pragma once
// Base-level error-correction evaluation (Sec. 2.4): comparing the
// original, corrected, and true version of every read yields
//   TP — erroneous base changed to the true base
//   FP — true base changed (to anything)
//   TN — true base left unchanged
//   FN — erroneous base left unchanged
//   ne — erroneous base changed, but to a wrong base (feeds EBA)
// and the derived measures Sensitivity, Specificity, EBA = ne/(TP+ne),
// and Gain = (TP - FP)/(TP + FN).
//
// With simulated reads the truth is exact (ReadSet::truth), which is the
// evaluation the paper approximates via RMAP mapping.

#include <cstdint>
#include <string_view>
#include <vector>

#include "seq/read.hpp"

namespace ngs::eval {

struct CorrectionCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;
  std::uint64_t wrong_target = 0;  // ne: detected but miscorrected

  void merge(const CorrectionCounts& o) {
    tp += o.tp;
    fp += o.fp;
    tn += o.tn;
    fn += o.fn;
    wrong_target += o.wrong_target;
  }

  double sensitivity() const {
    const auto denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }
  double specificity() const {
    const auto denom = tn + fp;
    return denom == 0 ? 0.0 : static_cast<double>(tn) / static_cast<double>(denom);
  }
  double gain() const {
    const auto denom = tp + fn;
    return denom == 0 ? 0.0
                      : (static_cast<double>(tp) - static_cast<double>(fp)) /
                            static_cast<double>(denom);
  }
  double eba() const {
    const auto denom = tp + wrong_target;
    return denom == 0 ? 0.0
                      : static_cast<double>(wrong_target) /
                            static_cast<double>(denom);
  }
};

/// Per-base comparison of one read triple. All three strings must have
/// equal length. Ambiguous bases in `original` are classified against the
/// truth exactly like mismatching bases (an uncorrected N is a FN; an N
/// corrected to the true base is a TP).
CorrectionCounts evaluate_read(std::string_view original,
                               std::string_view corrected,
                               std::string_view truth);

/// Aggregates over a read set. `corrected` must parallel `original.reads`;
/// `original` must carry truth.
CorrectionCounts evaluate_correction(const seq::ReadSet& original,
                                     const std::vector<seq::Read>& corrected);

/// Accuracy of ambiguous-base correction (Table 2.4): among positions
/// that were 'N' in the original read, the fraction the corrector
/// resolved to the true base.
struct AmbiguousStats {
  std::uint64_t total_n = 0;
  std::uint64_t resolved_correctly = 0;
  double accuracy() const {
    return total_n == 0 ? 0.0
                        : static_cast<double>(resolved_correctly) /
                              static_cast<double>(total_n);
  }
};

AmbiguousStats evaluate_ambiguous(const seq::ReadSet& original,
                                  const std::vector<seq::Read>& corrected);

}  // namespace ngs::eval
