#include "eval/correction_metrics.hpp"

#include <cassert>
#include <stdexcept>

namespace ngs::eval {

CorrectionCounts evaluate_read(std::string_view original,
                               std::string_view corrected,
                               std::string_view truth) {
  if (original.size() != corrected.size() ||
      original.size() != truth.size()) {
    throw std::invalid_argument("evaluate_read: length mismatch");
  }
  CorrectionCounts c;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const char o = original[i];
    const char t = truth[i];
    const char cc = corrected[i];
    if (o == t) {
      if (cc == o) {
        ++c.tn;
      } else {
        ++c.fp;
      }
    } else {
      if (cc == t) {
        ++c.tp;
      } else if (cc == o) {
        ++c.fn;
      } else {
        // Detected as erroneous but corrected to a wrong base: the error
        // persists (counts against Gain via FN) and feeds EBA via ne.
        ++c.fn;
        ++c.wrong_target;
      }
    }
  }
  return c;
}

CorrectionCounts evaluate_correction(const seq::ReadSet& original,
                                     const std::vector<seq::Read>& corrected) {
  if (!original.has_truth()) {
    throw std::invalid_argument("evaluate_correction: read set lacks truth");
  }
  if (corrected.size() != original.reads.size()) {
    throw std::invalid_argument("evaluate_correction: read count mismatch");
  }
  CorrectionCounts total;
  for (std::size_t i = 0; i < corrected.size(); ++i) {
    total.merge(evaluate_read(original.reads[i].bases, corrected[i].bases,
                              original.truth[i].true_bases));
  }
  return total;
}

AmbiguousStats evaluate_ambiguous(const seq::ReadSet& original,
                                  const std::vector<seq::Read>& corrected) {
  if (!original.has_truth()) {
    throw std::invalid_argument("evaluate_ambiguous: read set lacks truth");
  }
  AmbiguousStats stats;
  for (std::size_t i = 0; i < corrected.size(); ++i) {
    const auto& orig = original.reads[i].bases;
    const auto& corr = corrected[i].bases;
    const auto& truth = original.truth[i].true_bases;
    for (std::size_t p = 0; p < orig.size(); ++p) {
      if (orig[p] == 'N') {
        ++stats.total_n;
        if (corr[p] == truth[p]) ++stats.resolved_correctly;
      }
    }
  }
  return stats;
}

}  // namespace ngs::eval
