#include "eval/ari.hpp"

#include <map>
#include <stdexcept>
#include <unordered_map>

namespace ngs::eval {
namespace {

double choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

AriResult adjusted_rand_index(const std::vector<std::uint32_t>& labels_u,
                              const std::vector<std::uint32_t>& labels_v) {
  if (labels_u.size() != labels_v.size() || labels_u.empty()) {
    throw std::invalid_argument("adjusted_rand_index: bad label vectors");
  }
  const std::size_t n = labels_u.size();

  // Contingency table (sparse) plus row/column sums.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> cells;
  std::unordered_map<std::uint32_t, std::uint64_t> row_sums, col_sums;
  for (std::size_t i = 0; i < n; ++i) {
    ++cells[{labels_u[i], labels_v[i]}];
    ++row_sums[labels_u[i]];
    ++col_sums[labels_v[i]];
  }

  double sum_cells = 0.0;
  for (const auto& [_, c] : cells) sum_cells += choose2(static_cast<double>(c));
  double sum_rows = 0.0;
  for (const auto& [_, a] : row_sums) sum_rows += choose2(static_cast<double>(a));
  double sum_cols = 0.0;
  for (const auto& [_, b] : col_sums) sum_cols += choose2(static_cast<double>(b));

  const double total_pairs = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);

  AriResult result;
  result.n = n;
  result.clusters_u = row_sums.size();
  result.clusters_v = col_sums.size();
  const double denom = max_index - expected;
  result.ari = denom == 0.0 ? 1.0 : (sum_cells - expected) / denom;
  return result;
}

}  // namespace ngs::eval
