#pragma once
// Adjusted Rand Index between two hard clusterings (Sec. 4.5.2,
// Hubert & Arabie 1985), with the contingency-table computation of
// Table 4.4. Labels are arbitrary integers; element i belongs to
// cluster labels_u[i] in U and labels_v[i] in V.

#include <cstdint>
#include <vector>

namespace ngs::eval {

struct AriResult {
  double ari = 0.0;
  std::uint64_t n = 0;
  std::size_t clusters_u = 0;
  std::size_t clusters_v = 0;
};

/// Computes ARI. Both label vectors must have the same length (> 0).
AriResult adjusted_rand_index(const std::vector<std::uint32_t>& labels_u,
                              const std::vector<std::uint32_t>& labels_v);

}  // namespace ngs::eval
