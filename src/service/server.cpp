#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <span>
#include <utility>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "service/framing.hpp"

namespace ngs::service {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// Per-connection state. Lifetime: created by the acceptor, shared with
/// the reader/writer threads and every in-flight Task; the acceptor (or
/// stop()) reaps it once `finished` is set.
struct CorrectionServer::Connection {
  explicit Connection(int fd_in, std::uint64_t max_frame_bytes)
      : fd(fd_in), channel(fd_in, max_frame_bytes) {}

  ~Connection() { close_fd(fd); }

  int fd;
  FrameChannel channel;
  std::thread reader;
  std::thread writer;

  /// One queued reply frame awaiting its turn on the wire.
  struct Reply {
    FrameType type = FrameType::kError;
    std::vector<std::uint8_t> payload;
    /// True when this reply answers a REQ (counts against the
    /// per-client window; the writer releases the slot after sending).
    bool answers_request = false;
  };

  std::mutex mutex;
  std::condition_variable cv;
  /// Arrival-ticket -> reply. The writer sends strictly in ticket
  /// order, which is arrival order — workers may finish out of order
  /// but the client never observes reordering.
  std::map<std::uint64_t, Reply> pending;
  std::uint64_t next_ticket = 0;  // assigned by the reader at arrival
  std::uint64_t next_send = 0;    // next ticket the writer may send
  std::uint64_t next_seq = 0;     // REQ seq the client must send next
  std::size_t inflight = 0;       // REQs accepted but not yet replied
  bool closing = false;           // drain pending replies, then exit
  bool dead = false;              // socket broken: drop everything now
  std::atomic<bool> finished{false};  // threads joined; safe to reap

  // Negotiated session (reader thread only).
  bool hello_done = false;
  std::string method;
  core::CorrectorConfig config;
  std::shared_ptr<const Epoch> epoch;
  std::shared_ptr<const core::Corrector> corrector;

  /// Queues `reply` for the writer at `ticket`. Safe from any thread.
  void deposit(std::uint64_t ticket, FrameType type,
               std::vector<std::uint8_t> payload, bool answers_request) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending.emplace(ticket,
                      Reply{type, std::move(payload), answers_request});
    }
    cv.notify_all();
  }
};

CorrectionServer::CorrectionServer(ServiceOptions options,
                                   IndexRegistryConfig registry)
    : options_(std::move(options)), registry_(std::move(registry)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_inflight_per_client == 0) {
    options_.max_inflight_per_client = 1;
  }
}

CorrectionServer::~CorrectionServer() { stop(); }

void CorrectionServer::start() {
  registry_.load_initial();
  queue_ = std::make_unique<util::BoundedQueue<Task>>(options_.queue_capacity);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw ngs::Error(ngs::ErrorKind::kConfig, "",
                     "socket path '" + options_.socket_path +
                         "' exceeds the AF_UNIX limit of " +
                         std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceAccept,
                     std::string("service: socket() failed: ") +
                         std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceAccept,
                     "service: cannot listen on '" + options_.socket_path +
                         "': " + std::strerror(saved));
  }
  if (::pipe(stop_pipe_) < 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceAccept,
                     std::string("service: pipe() failed: ") +
                         std::strerror(saved));
  }

  running_.store(true);
  stopping_.store(false);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void CorrectionServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // Wake the acceptor out of poll() and join it first: no new
  // connections from here on.
  const char byte = 1;
  (void)!::write(stop_pipe_[1], &byte, 1);
  if (acceptor_.joinable()) acceptor_.join();

  // Half-close every connection: SHUT_RD pops the reader out of its
  // blocking read with a clean EOF while the write side stays open so
  // in-flight replies still reach the client.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RD);
      conn->cv.notify_all();
    }
  }
  // Connections drain (workers are still running and will finish the
  // queued batches); reap as they finish.
  for (;;) {
    reap_finished_connections();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  queue_->close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  close_fd(listen_fd_);
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
  ::unlink(options_.socket_path.c_str());
}

void CorrectionServer::acceptor_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      ++accept_failures_;
      return;
    }
    if (fds[1].revents != 0 || stopping_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    int fd = -1;
    try {
      fault::maybe_fail(fault::sites::kServiceAccept, ngs::ErrorKind::kIo,
                        "service: accepting connection");
      fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceAccept,
                         std::string("service: accept() failed: ") +
                             std::strerror(errno));
      }
    } catch (const ngs::Error&) {
      // An accept failure (injected or real) costs one client its
      // connection attempt; the daemon keeps serving.
      ++accept_failures_;
      continue;
    }

    auto conn = std::make_shared<Connection>(fd, options_.max_frame_bytes);
    ++connections_accepted_;
    ++connections_active_;
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
    }
    reap_finished_connections();
  }
}

void CorrectionServer::reap_finished_connections() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->finished.load()) {
        done.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void CorrectionServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    try {
      if (!conn->channel.read_frame(frame)) break;  // clean EOF
    } catch (const ngs::Error& e) {
      if (e.kind() == ngs::ErrorKind::kParse) ++protocol_errors_;
      // Tell the peer why before closing — unless the stream itself
      // broke, in which case nobody is listening.
      if (e.kind() != ngs::ErrorKind::kIo) {
        std::uint64_t ticket;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          ticket = conn->next_ticket++;
        }
        ErrorReply err;
        err.code = wire_error_code(e.kind());
        err.message = e.what();
        std::vector<std::uint8_t> payload;
        encode_error(err, payload);
        conn->deposit(ticket, FrameType::kError, std::move(payload), false);
      }
      break;
    }
    if (!handle_frame(conn, std::move(frame))) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing = true;
  }
  conn->cv.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  // Full close on the wire now (the fd itself lives until reap): a
  // client blocked on a reply it will never get sees EOF immediately
  // instead of waiting for the acceptor to reap this connection.
  ::shutdown(conn->fd, SHUT_RDWR);
  --connections_active_;
  conn->finished.store(true);
}

void CorrectionServer::writer_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::Reply reply;
    bool answers_request = false;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] {
        return conn->dead ||
               conn->pending.find(conn->next_send) != conn->pending.end() ||
               (conn->closing && conn->inflight == 0 && conn->pending.empty());
      });
      if (conn->dead) return;
      auto it = conn->pending.find(conn->next_send);
      if (it == conn->pending.end()) return;  // closing && drained
      reply = std::move(it->second);
      conn->pending.erase(it);
      ++conn->next_send;
      answers_request = reply.answers_request;
    }
    try {
      conn->channel.write_frame(reply.type, reply.payload);
    } catch (const ngs::Error&) {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->dead = true;
      // The reader may be blocked in read(); break the socket fully so
      // it wakes and winds the connection down.
      ::shutdown(conn->fd, SHUT_RDWR);
      conn->cv.notify_all();
      return;
    }
    if (answers_request) {
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        --conn->inflight;
      }
      conn->cv.notify_all();  // reopen the per-client window
    }
  }
}

bool CorrectionServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                    Frame&& frame) {
  std::uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    ticket = conn->next_ticket++;
  }
  std::vector<std::uint8_t> payload;

  // Closes the connection with a typed reason the client can decode.
  const auto connection_error = [&](ngs::ErrorKind kind,
                                    const std::string& message) {
    if (kind == ngs::ErrorKind::kParse) ++protocol_errors_;
    ErrorReply err;
    err.code = wire_error_code(kind);
    err.message = message;
    payload.clear();
    encode_error(err, payload);
    conn->deposit(ticket, FrameType::kError, std::move(payload), false);
    return false;
  };

  try {
    switch (frame.type) {
      case FrameType::kHello: {
        const HelloRequest hello =
            decode_hello(frame.payload.data(), frame.payload.size());
        if (hello.protocol_version != kProtocolVersion) {
          return connection_error(
              ngs::ErrorKind::kConfig,
              "unsupported protocol version " +
                  std::to_string(hello.protocol_version) + " (server speaks " +
                  std::to_string(kProtocolVersion) + ")");
        }
        if (conn->hello_done) {
          return connection_error(ngs::ErrorKind::kParse,
                                  "duplicate HELLO on this connection");
        }
        conn->method = hello.method;
        conn->config = core::CorrectorConfig{};
        conn->config.genome_length = hello.genome_length;
        conn->config.k = hello.k;
        conn->config.error_rate = hello.error_rate;
        conn->config.tile_cache_mb = registry_.config().tile_cache_mb;
        conn->epoch = registry_.snapshot();
        // HELLO pays the (cached) corrector build, so the first REQ is
        // served at full speed.
        conn->corrector = conn->epoch->corrector_for(conn->method,
                                                     conn->config);
        conn->hello_done = true;

        HelloOk ok;
        ok.resolved_k = conn->corrector->spectrum_k();
        ok.epoch_id = conn->epoch->id();
        ok.max_inflight =
            static_cast<std::uint32_t>(options_.max_inflight_per_client);
        ok.max_batch_reads =
            static_cast<std::uint32_t>(options_.max_batch_reads);
        ok.max_frame_bytes = options_.max_frame_bytes;
        encode_hello_ok(ok, payload);
        conn->deposit(ticket, FrameType::kHelloOk, std::move(payload), false);
        return true;
      }
      case FrameType::kRequest: {
        handle_request(conn, ticket, std::move(frame));
        std::lock_guard<std::mutex> lock(conn->mutex);
        return !conn->closing && !conn->dead;
      }
      case FrameType::kStats: {
        const std::string text = stats_text();
        payload.assign(text.begin(), text.end());
        conn->deposit(ticket, FrameType::kStatsOk, std::move(payload), false);
        return true;
      }
      case FrameType::kReload: {
        // Runs on this connection's reader thread: the requesting
        // client waits, every other connection keeps streaming against
        // the old epoch until the swap.
        const std::uint64_t epoch_id = registry_.reload();
        ReloadOk ok;
        ok.epoch_id = epoch_id;
        encode_reload_ok(ok, payload);
        conn->deposit(ticket, FrameType::kReloadOk, std::move(payload), false);
        return true;
      }
      default:
        return connection_error(
            ngs::ErrorKind::kParse,
            "unexpected frame type " +
                std::to_string(static_cast<unsigned>(frame.type)) +
                " from client");
    }
  } catch (const ngs::Error& e) {
    // HELLO resolution / RELOAD verification failures: typed, and the
    // old serving state is untouched. The connection closes; the client
    // reports the decoded kind.
    return connection_error(e.kind(), e.what());
  } catch (const std::exception& e) {
    return connection_error(ngs::ErrorKind::kInternal, e.what());
  }
}

void CorrectionServer::handle_request(const std::shared_ptr<Connection>& conn,
                                      std::uint64_t ticket, Frame&& frame) {
  std::vector<std::uint8_t> payload;
  const auto request_error = [&](std::uint64_t seq, ngs::ErrorKind kind,
                                 const std::string& message) {
    ErrorReply err;
    err.seq = seq;
    err.code = wire_error_code(kind);
    err.message = message;
    payload.clear();
    encode_error(err, payload);
    conn->deposit(ticket, FrameType::kError, std::move(payload), true);
  };

  if (!conn->hello_done) {
    ErrorReply err;
    err.code = wire_error_code(ngs::ErrorKind::kParse);
    err.message = "REQ before HELLO";
    encode_error(err, payload);
    ++protocol_errors_;
    conn->deposit(ticket, FrameType::kError, std::move(payload), false);
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing = true;
    return;
  }

  ReadBatch batch = decode_request(frame.payload.data(), frame.payload.size());
  frame.payload.clear();
  frame.payload.shrink_to_fit();

  if (batch.seq != conn->next_seq) {
    ErrorReply err;
    err.code = wire_error_code(ngs::ErrorKind::kParse);
    err.message = "REQ seq " + std::to_string(batch.seq) +
                  " out of order (expected " +
                  std::to_string(conn->next_seq) + ")";
    encode_error(err, payload);
    ++protocol_errors_;
    conn->deposit(ticket, FrameType::kError, std::move(payload), false);
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing = true;
    return;
  }
  ++conn->next_seq;

  // Per-client window: stop consuming this socket until a reply slot
  // frees up. The kernel socket buffer then backpressures the client.
  {
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->cv.wait(lock, [&] {
      return conn->inflight < options_.max_inflight_per_client ||
             conn->closing || conn->dead;
    });
    if (conn->closing || conn->dead) return;
    ++conn->inflight;
  }

  if (batch.reads.size() > options_.max_batch_reads) {
    request_error(batch.seq, ngs::ErrorKind::kConfig,
                  "batch of " + std::to_string(batch.reads.size()) +
                      " reads exceeds the server's max_batch_reads=" +
                      std::to_string(options_.max_batch_reads));
    return;
  }

  // Hot reload visibility: each REQ resolves against the current epoch,
  // so batches sent after a reload use the new indexes while batches
  // already queued finish on the epoch they pinned.
  auto current = registry_.snapshot();
  if (current != conn->epoch) {
    try {
      conn->corrector = current->corrector_for(conn->method, conn->config);
      conn->epoch = std::move(current);
    } catch (const ngs::Error& e) {
      request_error(batch.seq, e.kind(), e.what());
      return;
    }
  }

  Task task;
  task.conn = conn;
  task.ticket = ticket;
  task.seq = batch.seq;
  task.reads = std::move(batch.reads);
  task.corrector = conn->corrector;
  task.epoch = conn->epoch;
  if (!queue_->try_push(std::move(task))) {
    // Admission control: the shared queue is full (or the server is
    // shutting down) — shed this batch with a typed BUSY instead of
    // queueing unboundedly.
    ++busy_rejections_;
    BusyReply busy;
    busy.seq = batch.seq;
    encode_busy(busy, payload);
    conn->deposit(ticket, FrameType::kBusy, std::move(payload), true);
  }
}

void CorrectionServer::worker_loop() {
  // Per-worker scratch, reused across every batch this worker corrects
  // with the same corrector. The weak_ptr detects both a retired epoch
  // and a recycled heap address.
  struct ScratchEntry {
    std::weak_ptr<const core::Corrector> owner;
    std::unique_ptr<core::BatchScratch> scratch;
  };
  std::map<const core::Corrector*, ScratchEntry> scratch_pool;
  const auto scratch_for =
      [&scratch_pool](const std::shared_ptr<const core::Corrector>& c) {
        ScratchEntry& entry = scratch_pool[c.get()];
        if (entry.owner.lock() != c) {
          entry.owner = c;
          entry.scratch = c->make_scratch();
        }
        return entry.scratch.get();
      };

  Task task;
  while (queue_->pop(task)) {
    std::vector<std::uint8_t> payload;
    try {
      fault::maybe_fail(fault::sites::kServiceWorker, ngs::ErrorKind::kTask,
                        "service: correcting batch");
      core::CorrectionReport report;
      std::vector<seq::Read> corrected;
      corrected.reserve(task.reads.size());
      task.corrector->correct_batch(std::span<const seq::Read>(task.reads),
                                    corrected, report,
                                    scratch_for(task.corrector));
      ResponseBatch resp;
      resp.seq = task.seq;
      resp.reads_changed = report.reads_changed;
      resp.bases_changed = report.bases_changed;
      resp.reads = std::move(corrected);
      encode_response(resp, payload);
      ++batches_corrected_;
      reads_corrected_ += task.reads.size();
      reads_changed_ += report.reads_changed;
      bases_changed_ += report.bases_changed;
      task.conn->deposit(task.ticket, FrameType::kResponse, std::move(payload),
                         true);
    } catch (const ngs::Error& e) {
      // One batch fails, the connection survives: the ERROR takes the
      // batch's reply slot so ordering and the window stay intact.
      ++batches_failed_;
      ErrorReply err;
      err.seq = task.seq;
      err.code = wire_error_code(e.kind());
      err.message = e.what();
      payload.clear();
      encode_error(err, payload);
      task.conn->deposit(task.ticket, FrameType::kError, std::move(payload),
                         true);
    } catch (const std::exception& e) {
      ++batches_failed_;
      ErrorReply err;
      err.seq = task.seq;
      err.code = wire_error_code(ngs::ErrorKind::kInternal);
      err.message = e.what();
      payload.clear();
      encode_error(err, payload);
      task.conn->deposit(task.ticket, FrameType::kError, std::move(payload),
                         true);
    }
    task = Task{};  // release the conn/epoch pins before the next pop
  }
}

ServerStats CorrectionServer::stats() const {
  ServerStats s;
  const auto epoch = registry_.snapshot();
  s.epoch_id = epoch->id();
  s.reloads = registry_.reloads();
  s.indexes = epoch->indexes().size();
  s.connections_accepted = connections_accepted_.load();
  s.connections_active = connections_active_.load();
  s.accept_failures = accept_failures_.load();
  s.batches_corrected = batches_corrected_.load();
  s.batches_failed = batches_failed_.load();
  s.busy_rejections = busy_rejections_.load();
  s.protocol_errors = protocol_errors_.load();
  s.reads_corrected = reads_corrected_.load();
  s.reads_changed = reads_changed_.load();
  s.bases_changed = bases_changed_.load();
  s.workers = options_.workers;
  s.queue_capacity = options_.queue_capacity;
  return s;
}

std::string CorrectionServer::stats_text() const {
  const ServerStats s = stats();
  std::string out;
  const auto line = [&out](const char* key, std::uint64_t value) {
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  line("epoch", s.epoch_id);
  line("reloads", s.reloads);
  line("indexes", s.indexes);
  line("connections_accepted", s.connections_accepted);
  line("connections_active", s.connections_active);
  line("accept_failures", s.accept_failures);
  line("batches_corrected", s.batches_corrected);
  line("batches_failed", s.batches_failed);
  line("busy_rejections", s.busy_rejections);
  line("protocol_errors", s.protocol_errors);
  line("reads_corrected", s.reads_corrected);
  line("reads_changed", s.reads_changed);
  line("bases_changed", s.bases_changed);
  line("workers", s.workers);
  line("queue_capacity", s.queue_capacity);
  return out;
}

}  // namespace ngs::service
