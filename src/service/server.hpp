#pragma once
// ngs::service::CorrectionServer — the long-lived serving core behind
// `ngs-correctd`. One process maps every configured spectrum index
// once, builds correctors once per (method, config, epoch), and serves
// streaming correction to any number of concurrent local clients:
//
//   acceptor thread ── accept() ──> per-connection reader thread
//                                        │  decode REQ, admission check
//                                        ▼
//                              shared BoundedQueue<Task>   (global bound)
//                                        │
//                              worker pool (N threads, pooled scratch)
//                                        │  corrected batch
//                                        ▼
//                     per-connection ordered sender + writer thread
//
// Flow control has two independent layers:
//   - per-client window: a connection's reader stops reading the socket
//     while max_inflight_per_client batches are unanswered, so one
//     client cannot occupy the whole worker pool and a slow client
//     backpressures itself through the kernel socket buffer;
//   - global admission: REQ batches enter the shared queue with a
//     non-blocking try_push — when the queue is full the batch is shed
//     with a typed BUSY reply instead of queueing unboundedly, keeping
//     tail latency bounded under overload.
//
// Replies (RESP / BUSY / per-request ERROR) are delivered strictly in
// request order per connection: every frame that needs a reply takes an
// arrival ticket, workers finish in any order, and the connection's
// writer thread drains tickets in sequence. A worker fault therefore
// costs exactly one ERROR reply — the connection, and every other
// in-flight batch on it, keeps going.
//
// Index hot reload (SIGHUP or the RELOAD verb) goes through the
// refcounted epoch scheme of IndexRegistry: new requests resolve
// against the freshly verified epoch, in-flight batches finish on the
// epoch they started with, and a corrupt replacement rejects the whole
// reload and keeps the old epoch serving.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/framing.hpp"
#include "service/index_registry.hpp"
#include "service/protocol.hpp"
#include "util/bounded_queue.hpp"

namespace ngs::service {

struct ServiceOptions {
  /// AF_UNIX stream socket path. Any stale file at the path is replaced.
  std::string socket_path;
  /// Correction worker threads shared by all connections.
  std::size_t workers = 2;
  /// Global admission bound: REQ batches queued across all connections.
  /// A full queue sheds with BUSY.
  std::size_t queue_capacity = 32;
  /// Unanswered batches one connection may have in flight.
  std::size_t max_inflight_per_client = 4;
  /// Largest read count a REQ may carry (bigger gets a typed error).
  std::size_t max_batch_reads = 65536;
  /// Frame payload cap negotiated with clients.
  std::uint64_t max_frame_bytes = 64ull << 20;
  int listen_backlog = 64;
};

/// Counters snapshot (the STATS verb payload is rendered from this).
struct ServerStats {
  std::uint64_t epoch_id = 0;
  std::uint64_t reloads = 0;
  std::uint64_t indexes = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t accept_failures = 0;
  std::uint64_t batches_corrected = 0;
  std::uint64_t batches_failed = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t reads_corrected = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t bases_changed = 0;
  std::uint64_t workers = 0;
  std::uint64_t queue_capacity = 0;
};

class CorrectionServer {
 public:
  CorrectionServer(ServiceOptions options, IndexRegistryConfig registry);
  ~CorrectionServer();

  CorrectionServer(const CorrectionServer&) = delete;
  CorrectionServer& operator=(const CorrectionServer&) = delete;

  /// Loads + verifies the initial epoch, binds the socket, and spawns
  /// the acceptor and worker threads. Throws (and leaves nothing
  /// running) if any index fails verification or the socket cannot be
  /// bound.
  void start();

  /// Stops accepting, drains every connection, joins all threads, and
  /// removes the socket file. Idempotent; called by the destructor.
  void stop();

  /// Verifies and atomically publishes a new epoch (SIGHUP / RELOAD).
  /// Throws on failure — the old epoch keeps serving.
  std::uint64_t reload() { return registry_.reload(); }

  ServerStats stats() const;

  /// "key=value\n" rendering of stats() (the STATS_OK payload).
  std::string stats_text() const;

  const ServiceOptions& options() const noexcept { return options_; }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

 private:
  struct Connection;
  struct Task {
    std::shared_ptr<Connection> conn;
    std::uint64_t ticket = 0;
    std::uint64_t seq = 0;
    std::vector<seq::Read> reads;
    std::shared_ptr<const core::Corrector> corrector;
    std::shared_ptr<const Epoch> epoch;  // pins the mapping for the batch
  };

  void acceptor_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  /// Handles one decoded frame on a connection's reader thread.
  /// Returns false when the connection should wind down.
  bool handle_frame(const std::shared_ptr<Connection>& conn, Frame&& frame);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      std::uint64_t ticket, Frame&& frame);
  void reap_finished_connections();

  ServiceOptions options_;
  IndexRegistry registry_;
  std::unique_ptr<util::BoundedQueue<Task>> queue_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
  std::atomic<std::uint64_t> batches_corrected_{0};
  std::atomic<std::uint64_t> batches_failed_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> reads_corrected_{0};
  std::atomic<std::uint64_t> reads_changed_{0};
  std::atomic<std::uint64_t> bases_changed_{0};
};

}  // namespace ngs::service
