#include "service/framing.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "fault/fault.hpp"
#include "fault/sites.hpp"

namespace ngs::service {

namespace {

/// Reads exactly `n` bytes. Returns bytes actually read (< n only on
/// EOF); throws ngs::Error(kIo) on a read error.
std::size_t read_full(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceRead,
                       std::string("service: socket read failed: ") +
                           std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_full(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as
    // EPIPE on this connection, not SIGPIPE for the whole process.
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceWrite,
                       std::string("service: socket write failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool FrameChannel::read_frame(Frame& out) {
  fault::maybe_fail(fault::sites::kServiceRead, ngs::ErrorKind::kIo,
                    "service: reading frame");
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t got = read_full(fd_, header, sizeof(header));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(header)) {
    throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceRead,
                     "service: connection closed mid-frame (" +
                         std::to_string(got) + " of " +
                         std::to_string(sizeof(header)) + " header bytes)");
  }
  if (get_u32(header) != kFrameMagic) {
    throw ProtocolError("frame header magic mismatch (got 0x" +
                        [&] {
                          char buf[16];
                          std::snprintf(buf, sizeof(buf), "%08x",
                                        get_u32(header));
                          return std::string(buf);
                        }() +
                        ", want 0x4353474e) — not a service stream");
  }
  const std::uint8_t type = header[4];
  if (!frame_type_known(type)) {
    throw ProtocolError("unknown frame type " + std::to_string(type));
  }
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    throw ProtocolError("nonzero reserved bytes in frame header");
  }
  const std::uint64_t payload_len = get_u64(header + 8);
  if (payload_len > max_frame_bytes_) {
    throw ProtocolError("frame payload length " +
                        std::to_string(payload_len) + " exceeds the " +
                        std::to_string(max_frame_bytes_) + "-byte cap");
  }
  out.type = static_cast<FrameType>(type);
  out.payload.resize(static_cast<std::size_t>(payload_len));
  if (payload_len > 0) {
    const std::size_t body =
        read_full(fd_, out.payload.data(), out.payload.size());
    if (body < out.payload.size()) {
      throw ngs::Error(ngs::ErrorKind::kIo, fault::sites::kServiceRead,
                       "service: connection closed mid-frame (" +
                           std::to_string(body) + " of " +
                           std::to_string(out.payload.size()) +
                           " payload bytes)");
    }
  }
  return true;
}

void FrameChannel::write_frame(FrameType type,
                               const std::vector<std::uint8_t>& payload) {
  fault::maybe_fail(fault::sites::kServiceWrite, ngs::ErrorKind::kIo,
                    "service: writing frame");
  if (payload.size() > max_frame_bytes_) {
    throw ProtocolError("refusing to write a frame larger than the " +
                        std::to_string(max_frame_bytes_) + "-byte cap");
  }
  std::uint8_t header[kFrameHeaderBytes] = {};
  put_u32(header, kFrameMagic);
  header[4] = static_cast<std::uint8_t>(type);
  put_u64(header + 8, payload.size());
  write_full(fd_, header, sizeof(header));
  if (!payload.empty()) write_full(fd_, payload.data(), payload.size());
}

}  // namespace ngs::service
