#include "service/index_registry.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastq_stream.hpp"

namespace ngs::service {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::unique_ptr<core::Corrector> Epoch::make_built(
    const std::string& method, const core::CorrectorConfig& config) const {
  std::unique_ptr<core::Corrector> corrector;
  try {
    corrector = core::make_corrector(method, config);
  } catch (const std::invalid_argument& e) {
    throw ngs::Error(ngs::ErrorKind::kConfig, "", e.what());
  }
  const int k = corrector->spectrum_k();
  if (k > 0) {
    const auto it = indexes_.find(k);
    if (it == indexes_.end()) {
      std::string have;
      for (const auto& [loaded_k, idx] : indexes_) {
        if (!have.empty()) have += ", ";
        have += std::to_string(loaded_k);
      }
      throw ngs::Error(ngs::ErrorKind::kConfig, "",
                       "method '" + method + "' needs a k=" +
                           std::to_string(k) +
                           " spectrum index, but this server holds k in {" +
                           have + "}");
    }
    if (it->second.both_strands != corrector->spectrum_both_strands()) {
      throw ngs::Error(ngs::ErrorKind::kConfig, "",
                       it->second.path + ": index was built " +
                           (it->second.both_strands ? "with" : "without") +
                           " reverse-complement strands but method '" +
                           method + "' expects the opposite");
    }
    // Copying the KSpectrum view is cheap (spans + shared keepalive)
    // and pins the mapping to the corrector's lifetime.
    corrector->build_from_spectrum(it->second.spectrum, it->second.input);
  } else {
    if (!reads_) {
      throw ngs::Error(
          ngs::ErrorKind::kConfig, "",
          "method '" + method +
              "' needs the whole read set for phase 1, but this server was "
              "started without --reads");
    }
    corrector->build(*reads_);
  }
  return corrector;
}

std::shared_ptr<const core::Corrector> Epoch::corrector_for(
    const std::string& method, const core::CorrectorConfig& config) const {
  const CorrectorKey key{method, config.k, config.genome_length,
                         double_bits(config.error_rate)};
  // Build under the cache lock: two HELLOs racing on the same cold key
  // would otherwise both pay an expensive buffered-method build.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  std::shared_ptr<const core::Corrector> built = make_built(method, config);
  cache_.emplace(key, built);
  return built;
}

int Epoch::resolve_k(const std::string& method,
                     const core::CorrectorConfig& config) const {
  // Cheap validation for HELLO: instantiating the corrector is
  // inexpensive, only building it is not.
  std::unique_ptr<core::Corrector> corrector;
  try {
    corrector = core::make_corrector(method, config);
  } catch (const std::invalid_argument& e) {
    throw ngs::Error(ngs::ErrorKind::kConfig, "", e.what());
  }
  const int k = corrector->spectrum_k();
  if (k > 0) {
    if (indexes_.find(k) == indexes_.end()) {
      std::string have;
      for (const auto& [loaded_k, idx] : indexes_) {
        if (!have.empty()) have += ", ";
        have += std::to_string(loaded_k);
      }
      throw ngs::Error(ngs::ErrorKind::kConfig, "",
                       "method '" + method + "' needs a k=" +
                           std::to_string(k) +
                           " spectrum index, but this server holds k in {" +
                           have + "}");
    }
  } else if (!reads_) {
    throw ngs::Error(
        ngs::ErrorKind::kConfig, "",
        "method '" + method +
            "' needs the whole read set for phase 1, but this server was "
            "started without --reads");
  }
  return k;
}

std::shared_ptr<const Epoch> IndexRegistry::build_epoch(
    std::uint64_t id) const {
  fault::maybe_fail(fault::sites::kServiceReload, ngs::ErrorKind::kIndex,
                    "service: verifying replacement indexes");
  std::map<int, LoadedIndex> indexes;
  for (const auto& path : config_.index_paths) {
    // Verify checksums up front: the whole point of the epoch scheme is
    // that a corrupt replacement never reaches serving state. (The
    // payload pages are touched once here; they stay resident for the
    // epoch's life anyway.)
    index::LoadOptions options;
    options.verify_checksums = true;
    auto loaded = index::SpectrumIndex::load(path, options);
    const auto& info = loaded.info();
    LoadedIndex entry;
    entry.path = path;
    entry.k = info.build.k;
    entry.both_strands = info.build.both_strands;
    entry.checksum = info.checksum;
    entry.distinct = info.distinct;
    entry.input.reads = info.build.input_reads;
    entry.input.bases = info.build.input_bases;
    entry.input.max_read_length = info.build.max_read_length;
    entry.spectrum = loaded.share_spectrum();
    const auto [it, inserted] = indexes.emplace(entry.k, std::move(entry));
    if (!inserted) {
      throw ngs::Error(ngs::ErrorKind::kConfig, "",
                       path + ": duplicate index for k=" +
                           std::to_string(info.build.k) + " (already " +
                           it->second.path + ")");
    }
  }
  std::optional<seq::ReadSet> reads;
  if (!config_.reads_path.empty()) {
    // Mirror the pipeline's buffered pass exactly (same reader, same
    // policy) so buffered-method builds match offline runs.
    seq::ReadSet all;
    io::FastqStreamReader reader(config_.reads_path);
    while (reader.read_batch(all.reads, 4096) > 0) {
    }
    reads = std::move(all);
  }
  return std::make_shared<Epoch>(id, std::move(indexes), std::move(reads));
}

void IndexRegistry::load_initial() {
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  auto fresh = build_epoch(1);
  std::lock_guard<std::mutex> lock(mutex_);
  next_epoch_id_ = 2;
  epoch_ = std::move(fresh);
}

std::uint64_t IndexRegistry::reload() {
  // Build (and fully verify) the replacement outside the snapshot lock:
  // requests keep resolving against the old epoch for the whole load,
  // and any throw leaves it serving untouched.
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_epoch_id_;
  }
  auto fresh = build_epoch(id);
  std::lock_guard<std::mutex> lock(mutex_);
  ++next_epoch_id_;
  ++reloads_;
  epoch_ = std::move(fresh);
  return epoch_->id();
}

std::shared_ptr<const Epoch> IndexRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t IndexRegistry::reloads() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return reloads_;
}

}  // namespace ngs::service
