#pragma once
// ngs::service wire protocol — the byte contract between `ngs-correctd`
// and its clients. The transport is a local stream socket carrying
// length-prefixed binary frames (see framing.hpp); this header defines
// what goes inside them.
//
// Conversation shape (one connection):
//
//   client                         server
//   ------                        -------
//   HELLO  {method,k,config}  ->
//                             <-  HELLO_OK {k,epoch,limits}   (or ERROR)
//   REQ    {seq=0, reads}     ->
//   REQ    {seq=1, reads}     ->                  (window <= max_inflight)
//                             <-  RESP {seq=0, corrected}     (in order)
//                             <-  BUSY {seq=1}                (shed load)
//   REQ    {seq=2, same reads}->                  (client retries)
//                             <-  RESP {seq=2, corrected}
//   STATS  {}                 ->
//                             <-  STATS_OK {key=value lines}
//   RELOAD {}                 ->
//                             <-  RELOAD_OK {epoch}           (or ERROR)
//
// Invariants:
//   - Request sequence numbers are assigned by the client and must be
//     exactly 0,1,2,... per connection; every REQ gets exactly one
//     reply (RESP, BUSY, or ERROR-with-seq), and replies are delivered
//     in sequence order — a shed or failed batch never reorders the
//     stream.
//   - All integers are little-endian, like the on-disk index format.
//   - Every payload decoder is bounds-checked: a malformed frame raises
//     a typed ProtocolError (ngs::Error, kind kParse) and never reads
//     past the frame.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "util/error.hpp"

namespace ngs::service {

/// Protocol revision negotiated in HELLO. Bumped on any wire change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types (the `type` byte of the frame header).
enum class FrameType : std::uint8_t {
  kHello = 1,     // client -> server: negotiate method/k/config
  kHelloOk = 2,   // server -> client: accepted, limits follow
  kRequest = 3,   // client -> server: one batch of reads
  kResponse = 4,  // server -> client: the corrected batch, in order
  kStats = 5,     // client -> server: counters snapshot request
  kStatsOk = 6,   // server -> client: "key=value\n" lines
  kReload = 7,    // client -> server: verify + swap indexes now
  kReloadOk = 8,  // server -> client: reload done, new epoch id
  kError = 9,     // server -> client: typed failure (seq=0: connection)
  kBusy = 10,     // server -> client: batch shed by admission control
};

/// True when `t` is a frame type this protocol revision defines.
bool frame_type_known(std::uint8_t t) noexcept;

/// Malformed payload (or frame): truncated field, trailing garbage,
/// out-of-range value. kind kParse -> tools exit 3 through the shared
/// taxonomy.
class ProtocolError : public ngs::Error {
 public:
  explicit ProtocolError(const std::string& what)
      : ngs::Error(ngs::ErrorKind::kParse, "service.protocol", what) {}
};

/// ngs::ErrorKind <-> on-wire error code (ERROR frame). Codes are
/// stable wire contract; keep in sync with error_kind_name.
std::uint16_t wire_error_code(ngs::ErrorKind kind) noexcept;
ngs::ErrorKind error_kind_from_wire(std::uint16_t code) noexcept;

// --- payload structs ---------------------------------------------------

/// HELLO: what the client wants corrected and how the corrector must be
/// configured. The fields mirror ngs-correct's corrector flags so a
/// served run can be byte-identical to an offline run.
struct HelloRequest {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string method;               // registry name ("sap", "reptile", ...)
  std::int32_t k = 0;               // 0 = derive from genome_length
  std::uint64_t genome_length = 1'000'000;
  double error_rate = 0.01;
};

/// HELLO_OK: the server's resolved parameters and per-connection limits.
struct HelloOk {
  std::uint32_t protocol_version = kProtocolVersion;
  std::int32_t resolved_k = 0;      // spectrum k serving this method (0 = buffered)
  std::uint64_t epoch_id = 0;       // index epoch the HELLO resolved against
  std::uint32_t max_inflight = 0;   // per-connection REQ window
  std::uint32_t max_batch_reads = 0;
  std::uint64_t max_frame_bytes = 0;
};

/// REQ / RESP: a batch of reads with a client-assigned sequence number.
struct ReadBatch {
  std::uint64_t seq = 0;
  std::vector<seq::Read> reads;
};

/// RESP carries the corrected reads plus the batch's own tallies.
struct ResponseBatch {
  std::uint64_t seq = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t bases_changed = 0;
  std::vector<seq::Read> reads;
};

/// ERROR: typed failure. seq != kConnectionSeq scopes it to one REQ
/// (the connection survives); kConnectionSeq means the connection is
/// being torn down.
struct ErrorReply {
  static constexpr std::uint64_t kConnectionSeq =
      ~static_cast<std::uint64_t>(0);
  std::uint64_t seq = kConnectionSeq;
  std::uint16_t code = 0;  // wire_error_code(kind)
  std::string message;

  ngs::ErrorKind kind() const noexcept { return error_kind_from_wire(code); }
};

/// BUSY: the REQ with this seq was shed by admission control; retry
/// later (the payload of the batch was discarded server-side).
struct BusyReply {
  std::uint64_t seq = 0;
};

/// RELOAD_OK: the epoch now serving new requests.
struct ReloadOk {
  std::uint64_t epoch_id = 0;
};

// --- encode / decode ---------------------------------------------------
// Encoders append to `out` (frame payload bytes only — the frame header
// is the transport's job). Decoders parse exactly the given payload and
// throw ProtocolError on truncation, trailing bytes, or invalid values.

void encode_hello(const HelloRequest& hello, std::vector<std::uint8_t>& out);
HelloRequest decode_hello(const std::uint8_t* data, std::size_t size);

void encode_hello_ok(const HelloOk& ok, std::vector<std::uint8_t>& out);
HelloOk decode_hello_ok(const std::uint8_t* data, std::size_t size);

void encode_request(const ReadBatch& batch, std::vector<std::uint8_t>& out);
ReadBatch decode_request(const std::uint8_t* data, std::size_t size);

void encode_response(const ResponseBatch& batch,
                     std::vector<std::uint8_t>& out);
ResponseBatch decode_response(const std::uint8_t* data, std::size_t size);

void encode_error(const ErrorReply& error, std::vector<std::uint8_t>& out);
ErrorReply decode_error(const std::uint8_t* data, std::size_t size);

void encode_busy(const BusyReply& busy, std::vector<std::uint8_t>& out);
BusyReply decode_busy(const std::uint8_t* data, std::size_t size);

void encode_reload_ok(const ReloadOk& ok, std::vector<std::uint8_t>& out);
ReloadOk decode_reload_ok(const std::uint8_t* data, std::size_t size);

}  // namespace ngs::service
