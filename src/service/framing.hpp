#pragma once
// Length-prefixed frame transport for the correction service. One frame
// on the wire is:
//
//   offset  bytes  field
//   0       4      magic 0x4353474E ("NGSC" as little-endian bytes)
//   4       1      type (service::FrameType)
//   5       3      reserved, must be zero
//   8       8      payload length in bytes (little-endian)
//   16      n      payload (protocol.hpp encoding for the type)
//
// The reader is defensive by construction: the magic is checked before
// anything else, the length is checked against the negotiated cap
// before any allocation, unknown types and nonzero reserved bytes are
// rejected, and exactly `length` payload bytes are consumed — a
// malformed or truncated frame raises a typed ProtocolError and never
// desynchronizes past the frame boundary. Stream-level failures (EOF
// mid-frame, read()/write() errors, the service.read/service.write
// fault sites) raise ngs::Error(kIo).

#include <cstdint>
#include <vector>

#include "service/protocol.hpp"

namespace ngs::service {

/// Default (and maximum negotiable) payload size. Large enough for a
/// 4096-read batch of long reads, small enough that a garbage length
/// prefix cannot drive an allocation bomb.
inline constexpr std::uint64_t kDefaultMaxFrameBytes = 64ull << 20;

/// Frame header magic: the bytes "NGSC" on the wire.
inline constexpr std::uint32_t kFrameMagic = 0x4353474E;

inline constexpr std::size_t kFrameHeaderBytes = 16;

/// One decoded frame: type plus owned payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Blocking frame I/O over a stream-socket file descriptor. Not
/// thread-safe; the server serializes writers per connection and gives
/// each connection a single reader.
class FrameChannel {
 public:
  /// Does not own `fd`; the connection owner closes it.
  explicit FrameChannel(int fd,
                        std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  int fd() const noexcept { return fd_; }
  std::uint64_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

  /// Reads the next frame. Returns false on clean EOF at a frame
  /// boundary. Throws ProtocolError (kParse) on a malformed frame and
  /// ngs::Error(kIo) on stream failure or EOF mid-frame.
  bool read_frame(Frame& out);

  /// Writes one frame (header + payload), handling partial writes.
  /// Throws ngs::Error(kIo) on failure.
  void write_frame(FrameType type, const std::vector<std::uint8_t>& payload);

 private:
  int fd_;
  std::uint64_t max_frame_bytes_;
};

}  // namespace ngs::service
