#pragma once
// The daemon's shared correction state, with hot reload.
//
// An *epoch* is one immutable, fully verified generation of serving
// state: every spectrum index mmap-loaded read-only (checksums
// verified up front — a serving process must not discover bit rot at
// request time), the optional buffered-method read set, and a lazy
// cache of built correctors keyed by the HELLO configuration. Requests
// pin the current epoch with a shared_ptr for the duration of one
// batch, so a reload can atomically publish a new epoch while every
// in-flight batch finishes on the mapping it started with — the
// refcount retires the old epoch when the last batch drains. A
// replacement index that fails verification rejects the whole reload
// and leaves the old epoch serving (typed error, no partial swap).
//
// Corrector construction mirrors core::CorrectionPipeline exactly:
// streaming methods get build_from_spectrum with the InputSummary from
// the index header (the --load-index path), buffered methods get
// build() over the read set parsed from --reads (the buffered path) —
// which is what makes served output byte-identical to offline
// ngs-correct.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/corrector.hpp"
#include "core/registry.hpp"
#include "seq/read.hpp"

namespace ngs::service {

/// One mmap-loaded spectrum index of an epoch.
struct LoadedIndex {
  std::string path;
  int k = 0;
  bool both_strands = true;
  std::uint64_t checksum = 0;
  std::uint64_t distinct = 0;
  core::InputSummary input;      // from the index header
  kspec::KSpectrum spectrum;     // zero-copy view, keepalive-backed
};

/// Corrector cache key: every HELLO field that can change the built
/// corrector (and therefore the output bytes).
struct CorrectorKey {
  std::string method;
  int k = 0;
  std::uint64_t genome_length = 0;
  std::uint64_t error_rate_bits = 0;

  bool operator<(const CorrectorKey& other) const {
    if (method != other.method) return method < other.method;
    if (k != other.k) return k < other.k;
    if (genome_length != other.genome_length) {
      return genome_length < other.genome_length;
    }
    return error_rate_bits < other.error_rate_bits;
  }
};

class Epoch {
 public:
  Epoch(std::uint64_t id, std::map<int, LoadedIndex> indexes,
        std::optional<seq::ReadSet> reads)
      : id_(id), indexes_(std::move(indexes)), reads_(std::move(reads)) {}

  std::uint64_t id() const noexcept { return id_; }
  const std::map<int, LoadedIndex>& indexes() const noexcept {
    return indexes_;
  }
  bool has_reads() const noexcept { return reads_.has_value(); }
  std::size_t read_count() const noexcept {
    return reads_ ? reads_->size() : 0;
  }

  /// The built, ready corrector for one HELLO configuration (cached;
  /// built on first use under a per-epoch mutex). The returned
  /// corrector is immutable serving state: correct_batch is
  /// thread-safe, and the shared_ptr keeps it (and the underlying
  /// mapping) alive across a reload. Throws ngs::Error(kConfig) when
  /// the method is unknown, needs an index k this epoch does not hold,
  /// or needs the read substrate and the daemon was started without
  /// --reads.
  std::shared_ptr<const core::Corrector> corrector_for(
      const std::string& method, const core::CorrectorConfig& config) const;

  /// The spectrum k the method would serve from (0 = buffered method).
  /// Same validation as corrector_for, without forcing the build.
  int resolve_k(const std::string& method,
                const core::CorrectorConfig& config) const;

 private:
  std::unique_ptr<core::Corrector> make_built(
      const std::string& method, const core::CorrectorConfig& config) const;

  std::uint64_t id_;
  std::map<int, LoadedIndex> indexes_;
  std::optional<seq::ReadSet> reads_;
  mutable std::mutex cache_mutex_;
  mutable std::map<CorrectorKey, std::shared_ptr<const core::Corrector>>
      cache_;
};

/// What an epoch is (re)built from: the daemon's --index/--reads flags.
struct IndexRegistryConfig {
  /// Spectrum index files to serve (any mix of v1 monolithic and v2
  /// sharded). Each file's k must be unique within one epoch.
  std::vector<std::string> index_paths;
  /// Optional FASTQ whose reads are the phase-1 substrate for buffered
  /// methods (reptile, shrec, ...). Empty = streaming methods only.
  std::string reads_path;
  /// Per-method tile-decision cache budget, mirroring ngs-correct's
  /// --tile-cache-mb default so served output matches offline runs.
  std::size_t tile_cache_mb = 32;
};

class IndexRegistry {
 public:
  explicit IndexRegistry(IndexRegistryConfig config)
      : config_(std::move(config)) {}

  /// Builds and publishes the first epoch. Throws on any load/verify
  /// failure (the daemon refuses to start with bad indexes).
  void load_initial();

  /// Re-verifies every configured file and atomically publishes a new
  /// epoch (SIGHUP / RELOAD). On failure the old epoch keeps serving
  /// and the error propagates to the caller. Serialized internally;
  /// returns the new epoch id. Injection site service.reload covers
  /// the verification step.
  std::uint64_t reload();

  /// The current epoch (never null after load_initial). Pin one per
  /// request batch.
  std::shared_ptr<const Epoch> snapshot() const;

  std::uint64_t reloads() const noexcept;

  const IndexRegistryConfig& config() const noexcept { return config_; }

 private:
  std::shared_ptr<const Epoch> build_epoch(std::uint64_t id) const;

  IndexRegistryConfig config_;
  /// Serializes epoch construction (reload against reload): held for the
  /// whole verify+build, which may take a while — so it must never be
  /// the lock snapshot() takes.
  std::mutex reload_mutex_;
  /// Guards only the epoch_ pointer swap and counters; snapshot() holds
  /// it for a shared_ptr copy, nothing more.
  mutable std::mutex mutex_;
  std::shared_ptr<const Epoch> epoch_;
  std::uint64_t next_epoch_id_ = 1;
  std::uint64_t reloads_ = 0;
};

}  // namespace ngs::service
