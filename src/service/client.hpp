#pragma once
// Client side of the correction service: a blocking connection plus the
// windowed streaming pump used by `ngs-correct-client` and the service
// bench.
//
// The low-level Client exposes the protocol verbs one frame at a time
// (connect / hello / send_request / read_reply / stats / reload) for
// tests that need to poke the wire directly. correct_stream() layers
// the production flow on top:
//
//   - keeps up to `window` REQ batches in flight (clamped to the
//     server's negotiated max_inflight),
//   - resends a BUSY-shed batch under a fresh sequence number after a
//     growing backoff (server-side seqs must stay contiguous),
//   - reorders replies by the batch's position in the input, so
//     corrected reads are delivered to the sink in exactly input order
//     even though shed batches complete late.
//
// No deadlock by construction: the client never has more than the
// negotiated window outstanding, and the server's per-connection reader
// consumes up to that window independently of its writer, so a
// send_request can always complete before the client turns around to
// read replies.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"

namespace ngs::service {

/// Blocking protocol connection over an AF_UNIX stream socket.
class Client {
 public:
  explicit Client(std::string socket_path,
                  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Movable: the connection handle transfers, the source disconnects.
  Client(Client&& other) noexcept
      : socket_path_(std::move(other.socket_path_)),
        max_frame_bytes_(other.max_frame_bytes_),
        fd_(other.fd_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      socket_path_ = std::move(other.socket_path_);
      max_frame_bytes_ = other.max_frame_bytes_;
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to the daemon. Throws ngs::Error(kIo) when the socket is
  /// missing or refuses (daemon not running).
  void connect();

  /// Negotiates the session. Throws the server's typed error on
  /// rejection (unknown method, missing index k, version mismatch).
  HelloOk hello(const HelloRequest& request);

  /// Low-level verbs for tests and the streaming pump.
  void send_request(const ReadBatch& batch);
  void send_frame(FrameType type, const std::vector<std::uint8_t>& payload);
  /// Next reply frame. Throws ngs::Error(kIo) on EOF (server gone).
  Frame read_reply();

  /// STATS round trip: the server's "key=value\n" counter dump.
  std::string stats();

  /// RELOAD round trip: returns the new epoch id, throws the server's
  /// typed error when verification of the replacement indexes failed.
  std::uint64_t reload();

  void close();
  bool connected() const noexcept { return fd_ >= 0; }

 private:
  std::string socket_path_;
  std::uint64_t max_frame_bytes_;
  int fd_ = -1;
};

/// Raises the payload of an ERROR frame as the typed ngs::Error it was
/// on the server (kind round-trips through the wire code).
[[noreturn]] void throw_error_reply(const ErrorReply& error);

struct StreamOptions {
  /// Reads per REQ batch.
  std::size_t batch_size = 1024;
  /// REQ batches kept in flight (clamped to the server's max_inflight).
  std::size_t window = 4;
  /// BUSY resends tolerated per batch before giving up (kTask).
  std::size_t busy_retry_limit = 64;
  /// First BUSY backoff in milliseconds; doubles per consecutive retry
  /// of the same batch, capped at 100ms.
  std::size_t busy_backoff_ms = 2;
};

struct StreamResult {
  std::uint64_t reads = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t bases_changed = 0;
  std::uint64_t batches = 0;
  std::uint64_t busy_retries = 0;
};

/// Pumps batches through a connected, HELLO'd client. `next_batch`
/// fills its argument with the next input batch (empty vector = end of
/// input); `on_corrected` receives corrected batches in input order.
/// Throws the server's typed error if any batch fails.
StreamResult correct_stream(
    Client& client, const HelloOk& limits, const StreamOptions& options,
    const std::function<bool(std::vector<seq::Read>&)>& next_batch,
    const std::function<void(std::vector<seq::Read>&&)>& on_corrected);

}  // namespace ngs::service
