#include "service/protocol.hpp"

#include <cstring>
#include <limits>

namespace ngs::service {

namespace {

// Hard per-field sanity bounds, below the transport's frame-size cap:
// a decoder must reject absurd counts before reserving memory for them.
constexpr std::size_t kMaxMethodLen = 256;
constexpr std::size_t kMaxBatchReads = 1 << 22;      // 4M reads per frame
constexpr std::size_t kMaxReadLen = 1 << 28;         // 256 MiB per field
constexpr std::size_t kMaxMessageLen = 1 << 16;

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str(std::size_t n, const char* field) {
    need(n, field);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void raw(void* out, std::size_t n, const char* field) {
    need(n, field);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  /// Every decoder ends with this: payload bytes past the last field
  /// are a framing bug, not padding.
  void finish() {
    if (pos_ != size_) {
      throw ProtocolError(std::string(what_) + ": " +
                          std::to_string(size_ - pos_) +
                          " trailing bytes after the last field");
    }
  }

 private:
  template <typename T>
  T take() {
    need(sizeof(T), "integer field");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n, const char* field) {
    if (size_ - pos_ < n) {
      throw ProtocolError(std::string(what_) + ": truncated payload (need " +
                          std::to_string(n) + " more bytes for " + field +
                          ", have " + std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

void encode_read(ByteWriter& w, const seq::Read& read) {
  if (read.id.size() > kMaxReadLen || read.bases.size() > kMaxReadLen) {
    throw ProtocolError("read record exceeds the per-field wire limit");
  }
  w.u32(static_cast<std::uint32_t>(read.id.size()));
  w.u32(static_cast<std::uint32_t>(read.bases.size()));
  w.u8(read.quality.empty() ? 0 : 1);
  w.bytes(read.id.data(), read.id.size());
  w.bytes(read.bases.data(), read.bases.size());
  if (!read.quality.empty()) {
    if (read.quality.size() != read.bases.size()) {
      throw ProtocolError("read quality length differs from bases length");
    }
    w.bytes(read.quality.data(), read.quality.size());
  }
}

seq::Read decode_read(ByteReader& r) {
  const std::uint32_t id_len = r.u32();
  const std::uint32_t bases_len = r.u32();
  const std::uint8_t has_qual = r.u8();
  if (id_len > kMaxReadLen || bases_len > kMaxReadLen) {
    throw ProtocolError("read record field length " +
                        std::to_string(std::max(id_len, bases_len)) +
                        " exceeds the wire limit");
  }
  if (has_qual > 1) {
    throw ProtocolError("read record has_quality flag must be 0 or 1, got " +
                        std::to_string(has_qual));
  }
  seq::Read read;
  read.id = r.str(id_len, "read id");
  read.bases = r.str(bases_len, "read bases");
  if (has_qual != 0) {
    read.quality.resize(bases_len);
    r.raw(read.quality.data(), bases_len, "read quality");
  }
  return read;
}

void encode_batch_common(ByteWriter& w, std::uint64_t seq,
                         const std::vector<seq::Read>& reads) {
  if (reads.size() > kMaxBatchReads) {
    throw ProtocolError("batch of " + std::to_string(reads.size()) +
                        " reads exceeds the wire limit");
  }
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(reads.size()));
  for (const auto& read : reads) encode_read(w, read);
}

std::vector<seq::Read> decode_reads(ByteReader& r, std::uint32_t count) {
  if (count > kMaxBatchReads) {
    throw ProtocolError("batch read count " + std::to_string(count) +
                        " exceeds the wire limit");
  }
  std::vector<seq::Read> reads;
  reads.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) reads.push_back(decode_read(r));
  return reads;
}

}  // namespace

bool frame_type_known(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kBusy);
}

std::uint16_t wire_error_code(ngs::ErrorKind kind) noexcept {
  switch (kind) {
    case ngs::ErrorKind::kConfig: return 1;
    case ngs::ErrorKind::kIo: return 2;
    case ngs::ErrorKind::kParse: return 3;
    case ngs::ErrorKind::kIndex: return 4;
    case ngs::ErrorKind::kTask: return 5;
    case ngs::ErrorKind::kInternal: return 6;
  }
  return 6;
}

ngs::ErrorKind error_kind_from_wire(std::uint16_t code) noexcept {
  switch (code) {
    case 1: return ngs::ErrorKind::kConfig;
    case 2: return ngs::ErrorKind::kIo;
    case 3: return ngs::ErrorKind::kParse;
    case 4: return ngs::ErrorKind::kIndex;
    case 5: return ngs::ErrorKind::kTask;
    default: return ngs::ErrorKind::kInternal;
  }
}

void encode_hello(const HelloRequest& hello, std::vector<std::uint8_t>& out) {
  if (hello.method.size() > kMaxMethodLen) {
    throw ProtocolError("method name exceeds the wire limit");
  }
  ByteWriter w(out);
  w.u32(hello.protocol_version);
  w.u16(static_cast<std::uint16_t>(hello.method.size()));
  w.bytes(hello.method.data(), hello.method.size());
  w.u32(static_cast<std::uint32_t>(hello.k));
  w.u64(hello.genome_length);
  w.f64(hello.error_rate);
}

HelloRequest decode_hello(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "HELLO");
  HelloRequest hello;
  hello.protocol_version = r.u32();
  const std::uint16_t method_len = r.u16();
  if (method_len > kMaxMethodLen) {
    throw ProtocolError("HELLO: method name length " +
                        std::to_string(method_len) +
                        " exceeds the wire limit");
  }
  hello.method = r.str(method_len, "method name");
  hello.k = static_cast<std::int32_t>(r.u32());
  hello.genome_length = r.u64();
  hello.error_rate = r.f64();
  r.finish();
  return hello;
}

void encode_hello_ok(const HelloOk& ok, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u32(ok.protocol_version);
  w.u32(static_cast<std::uint32_t>(ok.resolved_k));
  w.u64(ok.epoch_id);
  w.u32(ok.max_inflight);
  w.u32(ok.max_batch_reads);
  w.u64(ok.max_frame_bytes);
}

HelloOk decode_hello_ok(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "HELLO_OK");
  HelloOk ok;
  ok.protocol_version = r.u32();
  ok.resolved_k = static_cast<std::int32_t>(r.u32());
  ok.epoch_id = r.u64();
  ok.max_inflight = r.u32();
  ok.max_batch_reads = r.u32();
  ok.max_frame_bytes = r.u64();
  r.finish();
  return ok;
}

void encode_request(const ReadBatch& batch, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  encode_batch_common(w, batch.seq, batch.reads);
}

ReadBatch decode_request(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "REQ");
  ReadBatch batch;
  batch.seq = r.u64();
  batch.reads = decode_reads(r, r.u32());
  r.finish();
  return batch;
}

void encode_response(const ResponseBatch& batch,
                     std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u64(batch.reads_changed);
  w.u64(batch.bases_changed);
  encode_batch_common(w, batch.seq, batch.reads);
}

ResponseBatch decode_response(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "RESP");
  ResponseBatch batch;
  batch.reads_changed = r.u64();
  batch.bases_changed = r.u64();
  batch.seq = r.u64();
  batch.reads = decode_reads(r, r.u32());
  r.finish();
  return batch;
}

void encode_error(const ErrorReply& error, std::vector<std::uint8_t>& out) {
  if (error.message.size() > kMaxMessageLen) {
    ErrorReply clipped = error;
    clipped.message.resize(kMaxMessageLen);
    encode_error(clipped, out);
    return;
  }
  ByteWriter w(out);
  w.u64(error.seq);
  w.u16(error.code);
  w.u16(static_cast<std::uint16_t>(error.message.size()));
  w.bytes(error.message.data(), error.message.size());
}

ErrorReply decode_error(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "ERROR");
  ErrorReply error;
  error.seq = r.u64();
  error.code = r.u16();
  const std::uint16_t len = r.u16();
  error.message = r.str(len, "error message");
  r.finish();
  return error;
}

void encode_busy(const BusyReply& busy, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u64(busy.seq);
}

BusyReply decode_busy(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "BUSY");
  BusyReply busy;
  busy.seq = r.u64();
  r.finish();
  return busy;
}

void encode_reload_ok(const ReloadOk& ok, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u64(ok.epoch_id);
}

ReloadOk decode_reload_ok(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "RELOAD_OK");
  ReloadOk ok;
  ok.epoch_id = r.u64();
  r.finish();
  return ok;
}

}  // namespace ngs::service
