#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

namespace ngs::service {

Client::Client(std::string socket_path, std::uint64_t max_frame_bytes)
    : socket_path_(std::move(socket_path)),
      max_frame_bytes_(max_frame_bytes) {}

Client::~Client() { close(); }

void Client::connect() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw ngs::Error(ngs::ErrorKind::kConfig, "",
                     "socket path '" + socket_path_ +
                         "' exceeds the AF_UNIX limit of " +
                         std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ngs::Error(ngs::ErrorKind::kIo, "",
                     std::string("client: socket() failed: ") +
                         std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw ngs::Error(ngs::ErrorKind::kIo, "",
                     "client: cannot connect to '" + socket_path_ +
                         "': " + std::strerror(saved) +
                         " (is ngs-correctd running?)");
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_frame(FrameType type,
                        const std::vector<std::uint8_t>& payload) {
  FrameChannel channel(fd_, max_frame_bytes_);
  channel.write_frame(type, payload);
}

void Client::send_request(const ReadBatch& batch) {
  std::vector<std::uint8_t> payload;
  encode_request(batch, payload);
  send_frame(FrameType::kRequest, payload);
}

Frame Client::read_reply() {
  FrameChannel channel(fd_, max_frame_bytes_);
  Frame frame;
  if (!channel.read_frame(frame)) {
    throw ngs::Error(ngs::ErrorKind::kIo, "",
                     "client: server closed the connection");
  }
  return frame;
}

[[noreturn]] void throw_error_reply(const ErrorReply& error) {
  throw ngs::Error(error.kind(), "service.client", error.message);
}

HelloOk Client::hello(const HelloRequest& request) {
  std::vector<std::uint8_t> payload;
  encode_hello(request, payload);
  send_frame(FrameType::kHello, payload);
  Frame reply = read_reply();
  if (reply.type == FrameType::kError) {
    throw_error_reply(decode_error(reply.payload.data(),
                                   reply.payload.size()));
  }
  if (reply.type != FrameType::kHelloOk) {
    throw ProtocolError("expected HELLO_OK, got frame type " +
                        std::to_string(static_cast<unsigned>(reply.type)));
  }
  return decode_hello_ok(reply.payload.data(), reply.payload.size());
}

std::string Client::stats() {
  send_frame(FrameType::kStats, {});
  Frame reply = read_reply();
  if (reply.type == FrameType::kError) {
    throw_error_reply(decode_error(reply.payload.data(),
                                   reply.payload.size()));
  }
  if (reply.type != FrameType::kStatsOk) {
    throw ProtocolError("expected STATS_OK, got frame type " +
                        std::to_string(static_cast<unsigned>(reply.type)));
  }
  return std::string(reply.payload.begin(), reply.payload.end());
}

std::uint64_t Client::reload() {
  send_frame(FrameType::kReload, {});
  Frame reply = read_reply();
  if (reply.type == FrameType::kError) {
    throw_error_reply(decode_error(reply.payload.data(),
                                   reply.payload.size()));
  }
  if (reply.type != FrameType::kReloadOk) {
    throw ProtocolError("expected RELOAD_OK, got frame type " +
                        std::to_string(static_cast<unsigned>(reply.type)));
  }
  return decode_reload_ok(reply.payload.data(), reply.payload.size()).epoch_id;
}

StreamResult correct_stream(
    Client& client, const HelloOk& limits, const StreamOptions& options,
    const std::function<bool(std::vector<seq::Read>&)>& next_batch,
    const std::function<void(std::vector<seq::Read>&&)>& on_corrected) {
  std::size_t window = options.window == 0 ? 1 : options.window;
  if (limits.max_inflight > 0 && window > limits.max_inflight) {
    window = limits.max_inflight;
  }

  /// One outstanding batch: its position in the input stream, the
  /// original reads (kept for a BUSY resend — the server discarded its
  /// copy), and how often it has been shed already.
  struct InFlight {
    std::uint64_t batch_index = 0;
    std::vector<seq::Read> reads;
    std::size_t busy_count = 0;
  };

  StreamResult result;
  std::map<std::uint64_t, InFlight> inflight;           // by wire seq
  std::map<std::uint64_t, std::vector<seq::Read>> done;  // by batch_index
  std::uint64_t next_seq = 0;        // wire seqs: contiguous, never reused
  std::uint64_t next_batch_index = 0;
  std::uint64_t next_emit = 0;       // batch_index the sink gets next
  bool input_done = false;

  const auto send_one = [&](InFlight entry) {
    ReadBatch batch;
    batch.seq = next_seq;
    batch.reads = std::move(entry.reads);
    client.send_request(batch);
    entry.reads = std::move(batch.reads);  // keep for a possible resend
    inflight.emplace(next_seq, std::move(entry));
    ++next_seq;
  };

  while (!input_done || !inflight.empty()) {
    // Fill the window.
    while (!input_done && inflight.size() < window) {
      std::vector<seq::Read> reads;
      if (!next_batch(reads) || reads.empty()) {
        input_done = true;
        break;
      }
      result.reads += reads.size();
      ++result.batches;
      InFlight entry;
      entry.batch_index = next_batch_index++;
      entry.reads = std::move(reads);
      send_one(std::move(entry));
    }
    if (inflight.empty()) break;

    Frame reply = client.read_reply();
    switch (reply.type) {
      case FrameType::kResponse: {
        ResponseBatch resp =
            decode_response(reply.payload.data(), reply.payload.size());
        const auto it = inflight.find(resp.seq);
        if (it == inflight.end()) {
          throw ProtocolError("RESP for unknown seq " +
                              std::to_string(resp.seq));
        }
        result.reads_changed += resp.reads_changed;
        result.bases_changed += resp.bases_changed;
        done.emplace(it->second.batch_index, std::move(resp.reads));
        inflight.erase(it);
        // Deliver everything now contiguous from the front.
        for (auto ready = done.find(next_emit); ready != done.end();
             ready = done.find(next_emit)) {
          on_corrected(std::move(ready->second));
          done.erase(ready);
          ++next_emit;
        }
        break;
      }
      case FrameType::kBusy: {
        const BusyReply busy =
            decode_busy(reply.payload.data(), reply.payload.size());
        auto it = inflight.find(busy.seq);
        if (it == inflight.end()) {
          throw ProtocolError("BUSY for unknown seq " +
                              std::to_string(busy.seq));
        }
        InFlight entry = std::move(it->second);
        inflight.erase(it);
        ++entry.busy_count;
        ++result.busy_retries;
        if (entry.busy_count > options.busy_retry_limit) {
          throw ngs::Error(ngs::ErrorKind::kTask, "service.client",
                           "batch " + std::to_string(entry.batch_index) +
                               " shed " + std::to_string(entry.busy_count) +
                               " times by admission control; giving up");
        }
        std::size_t backoff = options.busy_backoff_ms;
        for (std::size_t i = 1; i < entry.busy_count && backoff < 100; ++i) {
          backoff *= 2;
        }
        if (backoff > 100) backoff = 100;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        // Resend under a fresh seq: server-side sequence numbers stay
        // contiguous, and input order is preserved via batch_index.
        send_one(std::move(entry));
        break;
      }
      case FrameType::kError: {
        throw_error_reply(
            decode_error(reply.payload.data(), reply.payload.size()));
      }
      default:
        throw ProtocolError("unexpected frame type " +
                            std::to_string(static_cast<unsigned>(reply.type)) +
                            " while streaming");
    }
  }
  return result;
}

}  // namespace ngs::service
