#pragma once
// Minimal command-line flag parsing for the tools/ executables:
// --name value and --flag forms, with typed accessors, defaults, and
// usage generation. No external dependencies.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ngs::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers an option (for usage output). `takes_value` false makes it
  /// a boolean switch.
  void add_option(const std::string& name, const std::string& help,
                  bool takes_value = true,
                  const std::string& default_value = "");

  /// Parses argv. Returns false (and fills error()) on unknown options or
  /// missing values. "--help" sets help_requested().
  bool parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_; }
  const std::string& error() const noexcept { return error_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  /// Every occurrence of a repeatable option, in command-line order
  /// (get() keeps returning the last one). Empty if never passed.
  std::vector<std::string> get_all(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    bool takes_value = true;
    std::string default_value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;  // ordered for usage output
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> all_values_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_ = false;
};

}  // namespace ngs::util
