#pragma once
// Runtime CPU-dispatch shim for the pass-2 packed-kmer kernels. The
// neighborhood candidate scan is, at its core, XOR + popcount over 2-bit
// packed words; this header exposes exactly those kernels behind a
// dispatch table resolved once at startup:
//
//   scalar — portable baseline, always available, and the only path
//            compiled when the build sets -DNGS_SIMD=OFF;
//   AVX2   — x86-64, 4 codes per iteration (vpshufb nibble popcount),
//            compiled with a per-function target attribute so the rest
//            of the binary stays baseline-ISA;
//   NEON   — aarch64 (vcnt), baseline on that architecture.
//
// Selection order: the NGS_SIMD environment variable ("scalar", "avx2",
// "neon", "auto"/unset; unsupported requests fall back to scalar), then
// the best level the CPU supports. Every level returns bit-identical
// results — the dispatch tests assert it on random neighborhoods — so
// forcing NGS_SIMD=scalar is purely a testing/portability lever.

#include <cstddef>
#include <cstdint>

namespace ngs::util::simd {

enum class Level : int { kScalar = 0, kAVX2 = 1, kNEON = 2 };

/// Human-readable level name ("scalar", "avx2", "neon").
const char* level_name(Level level) noexcept;

/// True when `level` is compiled in and the running CPU supports it.
bool supported(Level level) noexcept;

/// The dispatch level in effect (resolved once on first use).
Level active() noexcept;

/// Testing/bench hook: re-point the dispatch table at `level` (falls
/// back to scalar when unsupported). Callers must not race this against
/// in-flight kernel calls; intended for startup, tests, and benches.
void force_level(Level level) noexcept;

/// Hamming distance between two equal-length (<= 32) 2-bit packed kmer
/// codes — the scalar reference kernel, also used for tails.
constexpr int hamming2(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a ^ b;
  x = (x | (x >> 1)) & 0x5555555555555555ULL;
  return __builtin_popcountll(x);
}

/// hd[i] = hamming2(codes[i], query) for i in [0, n).
void hamming_batch(const std::uint64_t* codes, std::size_t n,
                   std::uint64_t query, std::uint8_t* hd) noexcept;

/// Scans the permutation run order[0..limit) while
/// (codes[order[i]] & keep) == key, appending to `out` every order[i]
/// whose code lies within Hamming distance [1, d] of `query`. Returns
/// the number of entries consumed (the run length, capped at `limit`);
/// *out_n receives the hit count. `out` must have room for `limit`
/// entries. This is the masked-sort collision-run filter of the
/// neighborhood index, fused so the code gather feeds both the run
/// continuation test and the XOR/popcount distance filter.
std::size_t masked_run_filter(const std::uint64_t* codes,
                              const std::uint32_t* order, std::size_t limit,
                              std::uint64_t keep, std::uint64_t key,
                              std::uint64_t query, int d, std::uint32_t* out,
                              std::size_t* out_n) noexcept;

}  // namespace ngs::util::simd
