#pragma once
// Atomic file replacement shared by every writer that must never leave
// a torn or partial target behind: the corrected-FASTQ output of the
// pipeline, the spectrum-index writers, and the spill bins of the
// out-of-core spectrum build. The protocol is the classic
// tmp + (optional fsync) + rename: bytes go to a uniquely named sibling
// temp file, and only commit() renames it over the target, so readers
// observe either the old complete file or the new complete one. If the
// AtomicFile is destroyed before commit() — an exception unwound the
// writer — the temp file is unlinked and the target is untouched.
//
// Lives in ngs::util (below ngs::fault in the layering), so it performs
// no fault injection itself; callers fire their own sites before
// delegating the write (see index/spectrum_index.cpp, kspec/radix.cpp).

#include <cstdint>
#include <cstdio>
#include <string>

namespace ngs::util {

struct AtomicFileOptions {
  /// fsync the temp file before the rename (durability of the content).
  bool fsync_file = false;
  /// fsync the parent directory after the rename (durability of the
  /// directory entry); best-effort, never fails the commit.
  bool fsync_dir = false;
  /// ngs::Error::site() attached to any failure this file raises.
  const char* error_site = "util.atomic_file";
};

class AtomicFile {
 public:
  /// Derives a unique sibling temp path for `target`; nothing touches
  /// the filesystem until the first write() (or an external writer
  /// creates temp_path() itself).
  explicit AtomicFile(std::string target, AtomicFileOptions options = {});
  ~AtomicFile();  // unlinks the temp file unless commit() succeeded
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  const std::string& target_path() const noexcept { return target_; }

  /// The temp file all writes land in until commit(). External writers
  /// (e.g. an std::ofstream) may write this path directly and then call
  /// commit(); cleanup-on-destruction still applies.
  const std::string& temp_path() const noexcept { return tmp_; }

  bool committed() const noexcept { return committed_; }

  /// Appends `n` bytes at the current sequential position, opening
  /// (creating/truncating) the temp file on first use. Throws
  /// ngs::Error(kIo, error_site) on failure.
  void write(const void* data, std::size_t n);

  /// Overwrites `n` bytes at an absolute offset already covered by
  /// sequential writes (e.g. a header finalized after the payloads).
  /// Does not move the sequential position.
  void write_at(std::uint64_t offset, const void* data, std::size_t n);

  /// Bytes written sequentially so far (the logical file size).
  std::uint64_t offset() const noexcept { return offset_; }

  /// Flushes stdio buffers to the OS (no fsync). Throws on failure.
  void flush();

  /// Finalizes: flush (+ fsync per options), close, rename over the
  /// target (+ directory fsync per options). Throws ngs::Error(kIo) on
  /// failure, leaving the target untouched and the temp file removed.
  void commit();

  /// Closes and unlinks the temp file without touching the target.
  /// Idempotent; safe after commit() (no-op).
  void abort() noexcept;

 private:
  void ensure_open();

  std::string target_;
  std::string tmp_;
  AtomicFileOptions options_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  bool committed_ = false;
};

/// Best-effort fsync of the directory containing `path` (directory-entry
/// durability after a rename); a no-op where unsupported.
void fsync_parent_dir(const std::string& path) noexcept;

}  // namespace ngs::util
