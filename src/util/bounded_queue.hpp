#pragma once
// A bounded MPMC blocking queue — the backpressure primitive of the
// streaming executor (util::PipelineExecutor) and the pass-1 read-ahead
// path in core::CorrectionPipeline.
//
// Semantics:
//   - push() blocks while the queue is full (backpressure on the
//     producer) and returns false once the queue is closed or aborted —
//     a producer can never wedge on a consumer that went away.
//   - pop() blocks while the queue is empty and returns false only when
//     the queue is closed AND drained (graceful end of stream) or
//     aborted (failure teardown, remaining items dropped).
//   - close() seals the producer side; consumers drain what is left.
//   - abort() is the failure path: every blocked or future push/pop
//     returns false immediately. The owner of the queue propagates the
//     actual error; the queue only guarantees nobody hangs.
//
// Telemetry (for the pipeline's stall accounting): cumulative seconds
// producers spent blocked on a full queue, cumulative seconds consumers
// spent blocked on an empty one, and the occupancy high-water mark.
// All counters are maintained under the queue mutex, so reading them
// while threads are still active is safe but momentary.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/timer.hpp"

namespace ngs::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns true when the item was enqueued, false
  /// when the queue is closed or aborted (the item is dropped; the
  /// caller still owns nothing — it was moved-from only on success).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_ && !closed_ && !aborted_) {
      Timer wait;
      not_full_.wait(lock, [this] {
        return items_.size() < capacity_ || closed_ || aborted_;
      });
      push_wait_seconds_ += wait.seconds();
    }
    if (closed_ || aborted_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > peak_size_) peak_size_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push — the admission-control primitive: returns false
  /// immediately (item dropped, no wait) when the queue is full, closed,
  /// or aborted, so a caller can shed load instead of queueing
  /// unboundedly. Same success semantics as push().
  bool try_push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_ || closed_ || aborted_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > peak_size_) peak_size_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns true with an item, false when closed
  /// and drained or aborted.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_ && !aborted_) {
      Timer wait;
      not_empty_.wait(lock,
                      [this] { return !items_.empty() || closed_ || aborted_; });
      pop_wait_seconds_ += wait.seconds();
    }
    if (aborted_ || items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Seals the producer side: pushes fail from now on, pops drain the
  /// remaining items and then report end of stream.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Failure teardown: wakes every blocked thread, fails every future
  /// push/pop, and drops whatever was queued.
  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Occupancy high-water mark since construction.
  std::size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_size_;
  }

  /// Cumulative seconds producers spent blocked on a full queue.
  double push_wait_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return push_wait_seconds_;
  }

  /// Cumulative seconds consumers spent blocked on an empty queue.
  double pop_wait_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_wait_seconds_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  bool aborted_ = false;
  std::size_t peak_size_ = 0;
  double push_wait_seconds_ = 0.0;
  double pop_wait_seconds_ = 0.0;
};

}  // namespace ngs::util
