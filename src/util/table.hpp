#pragma once
// Plain-text table printer used by every bench binary to emit the paper's
// table rows with aligned columns.

#include <iosfwd>
#include <string>
#include <vector>

namespace ngs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  // Cell formatting helpers.
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int precision);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ngs::util
