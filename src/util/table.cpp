#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ngs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(std::uint64_t v) {
  // Group digits with commas for readability, matching the paper's style.
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::fixed(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::percent(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

}  // namespace ngs::util
