#pragma once
// The typed failure model shared by every layer (io, index, core,
// mapreduce, tools). A bare std::runtime_error tells a caller nothing:
// the service and the tools need to distinguish "your input is
// malformed" (exit 3) from "the index file is corrupt" (exit 4) from
// "an invariant broke" (exit 1), and the retry machinery needs to know
// which failures are transient. ngs::Error carries:
//
//   kind      — the coarse taxonomy bucket (drives exit codes and
//               retry/skip policy);
//   site      — the stable failure-site name, matching the fault
//               injection catalog in src/fault/sites.hpp where the
//               failure is injectable (e.g. "io.fastq.read");
//   transient — whether a bounded retry is worth attempting
//               (fault::with_retry only retries transient errors).
//
// Subsystems with a finer-grained taxonomy keep it: index::IndexError
// derives from Error with kind kIndex and adds its own corruption-mode
// enum, so existing catch sites keep working while tools map every
// failure to the right exit code through one catch (const ngs::Error&).

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ngs {

enum class ErrorKind : std::uint8_t {
  kConfig,    // bad usage, flags, or spec strings        -> exit 2
  kIo,        // open/read/write/rename failure on input  -> exit 3
  kParse,     // malformed input record                   -> exit 3
  kIndex,     // spectrum-index load/integrity failure    -> exit 4
  kTask,      // a parallel task exhausted its retries    -> exit 1
  kInternal,  // broken invariant / unexpected state      -> exit 1
};

inline const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kIo: return "io";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kIndex: return "index";
    case ErrorKind::kTask: return "task";
    case ErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string site, const std::string& what,
        bool transient = false)
      : std::runtime_error(what),
        site_(std::move(site)),
        kind_(kind),
        transient_(transient) {}

  ErrorKind kind() const noexcept { return kind_; }

  /// Stable failure-site name (see fault::sites), "" when not sited.
  const std::string& site() const noexcept { return site_; }

  /// True when a bounded retry may succeed (e.g. injected transient
  /// I/O); fault::with_retry keys off this.
  bool transient() const noexcept { return transient_; }

 private:
  std::string site_;
  ErrorKind kind_;
  bool transient_;
};

/// The tools' shared exit-code contract (asserted by tools_smoke.sh):
/// usage/config = 2, input or parse error = 3, index error = 4,
/// everything else (task/internal) = 1.
inline int tool_exit_code(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kConfig: return 2;
    case ErrorKind::kIo:
    case ErrorKind::kParse: return 3;
    case ErrorKind::kIndex: return 4;
    case ErrorKind::kTask:
    case ErrorKind::kInternal: return 1;
  }
  return 1;
}

inline int tool_exit_code(const Error& e) noexcept {
  return tool_exit_code(e.kind());
}

}  // namespace ngs
