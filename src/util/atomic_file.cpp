#include "util/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NGS_ATOMIC_FILE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ngs::util {

namespace {

/// Per-process counter so two AtomicFiles targeting the same path (or a
/// crashed predecessor's leftovers) never collide on the temp name.
std::atomic<std::uint64_t> g_tmp_seq{0};

std::string make_tmp_path(const std::string& target) {
  std::string tmp = target;
  tmp += ".tmp.";
#if NGS_ATOMIC_FILE_POSIX
  tmp += std::to_string(static_cast<long>(::getpid()));
  tmp += '.';
#endif
  tmp += std::to_string(g_tmp_seq.fetch_add(1, std::memory_order_relaxed));
  return tmp;
}

}  // namespace

void fsync_parent_dir(const std::string& path) noexcept {
#if NGS_ATOMIC_FILE_POSIX
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

AtomicFile::AtomicFile(std::string target, AtomicFileOptions options)
    : target_(std::move(target)),
      tmp_(make_tmp_path(target_)),
      options_(options) {}

AtomicFile::~AtomicFile() {
  if (!committed_) abort();
}

void AtomicFile::ensure_open() {
  if (file_ != nullptr) return;
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) {
    throw Error(ErrorKind::kIo, options_.error_site,
                tmp_ + ": open failed: " + std::strerror(errno));
  }
}

void AtomicFile::write(const void* data, std::size_t n) {
  if (n == 0) return;
  ensure_open();
  if (std::fwrite(data, 1, n, file_) != n) {
    throw Error(ErrorKind::kIo, options_.error_site,
                tmp_ + ": write failed: " + std::strerror(errno));
  }
  offset_ += n;
}

void AtomicFile::write_at(std::uint64_t offset, const void* data,
                          std::size_t n) {
  if (n == 0) return;
  ensure_open();
  if (offset + n > offset_) {
    throw Error(ErrorKind::kIo, options_.error_site,
                tmp_ + ": write_at past the sequentially written extent");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(data, 1, n, file_) != n ||
      std::fseek(file_, static_cast<long>(offset_), SEEK_SET) != 0) {
    throw Error(ErrorKind::kIo, options_.error_site,
                tmp_ + ": positioned write failed: " + std::strerror(errno));
  }
}

void AtomicFile::flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    throw Error(ErrorKind::kIo, options_.error_site,
                tmp_ + ": flush failed: " + std::strerror(errno));
  }
}

void AtomicFile::commit() {
  if (committed_) return;
  if (file_ != nullptr) {
    flush();
#if NGS_ATOMIC_FILE_POSIX
    if (options_.fsync_file && ::fsync(::fileno(file_)) != 0) {
      throw Error(ErrorKind::kIo, options_.error_site,
                  tmp_ + ": fsync failed: " + std::strerror(errno));
    }
#endif
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      throw Error(ErrorKind::kIo, options_.error_site,
                  tmp_ + ": close failed: " + std::strerror(errno));
    }
  }
#if !NGS_ATOMIC_FILE_POSIX
  // Non-POSIX rename does not replace an existing target.
  std::remove(target_.c_str());
#endif
  if (std::rename(tmp_.c_str(), target_.c_str()) != 0) {
    const std::string msg = std::strerror(errno);
    std::remove(tmp_.c_str());
    throw Error(ErrorKind::kIo, options_.error_site,
                "cannot rename " + tmp_ + " to " + target_ + ": " + msg);
  }
  committed_ = true;
  if (options_.fsync_dir) fsync_parent_dir(target_);
}

void AtomicFile::abort() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) std::remove(tmp_.c_str());
}

}  // namespace ngs::util
