#include "util/rng.hpp"

#include <cmath>

namespace ngs::util {

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // coverage-scale lambdas used in simulation (lambda >= 30).
  const double x = normal(lambda, std::sqrt(lambda));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ngs::util
