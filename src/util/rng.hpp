#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (genome simulation, read
// sampling, error injection, mixture-model initialization) draw from
// ngs::util::Rng so that every experiment is reproducible from a single
// 64-bit seed. The generator is xoshiro256**, seeded via SplitMix64,
// which is both faster and statistically stronger than std::mt19937_64.

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ngs::util {

/// SplitMix64 step; used for seeding and as a standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with given log-space mean/stddev.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Gamma(shape, scale) via Marsaglia–Tsang.
  double gamma(double shape, double scale) noexcept {
    if (shape < 1.0) {
      const double u = uniform();
      return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, v;
      do {
        x = normal();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v * scale;
      }
    }
  }

  /// Poisson(lambda); inversion for small lambda, PTRS-style fallback.
  std::uint64_t poisson(double lambda) noexcept;

  /// Sample an index from non-negative weights (linear scan).
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator (for per-thread streams).
  Rng split() noexcept {
    return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace ngs::util
