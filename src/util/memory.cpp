#include "util/memory.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace ngs::util {
namespace {

std::uint64_t read_status_field(const char* field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      std::istringstream ss(line.substr(std::string(field).size()));
      std::uint64_t kb = 0;
      ss >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return read_status_field("VmHWM:"); }

std::uint64_t current_rss_bytes() { return read_status_field("VmRSS:"); }

double to_gib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace ngs::util
