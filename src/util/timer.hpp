#pragma once
// Wall-clock timing helpers for the bench harness (Tables 2.3, 3.4, 4.3).

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

namespace ngs::util {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage timings in insertion order — the shape of the
/// per-stage run-time rows in Table 4.3.
class StageTimes {
 public:
  void add(const std::string& stage, double seconds) {
    auto it = index_.find(stage);
    if (it == index_.end()) {
      index_.emplace(stage, entries_.size());
      entries_.emplace_back(stage, seconds);
    } else {
      entries_[it->second].second += seconds;
    }
  }

  double get(const std::string& stage) const {
    auto it = index_.find(stage);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
  }

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

  double total() const {
    double t = 0.0;
    for (const auto& [_, s] : entries_) t += s;
    return t;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// RAII timer that adds its elapsed time to a StageTimes on destruction.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimes& times, std::string stage)
      : times_(times), stage_(std::move(stage)) {}
  ~ScopedStageTimer() { times_.add(stage_, timer_.seconds()); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimes& times_;
  std::string stage_;
  Timer timer_;
};

}  // namespace ngs::util
