#pragma once
// Interleaved, software-prefetched binary search: the building block of
// the batched spectrum/tile-table probe APIs. A single lower_bound over
// a multi-million-entry sorted array is a chain of dependent,
// cache-missing loads — each level must complete before the next can
// start. Pass 2 issues dozens of independent probes per tile, so instead
// of running them back to back we advance a group of descents in
// lockstep: every iteration performs one comparison per still-active
// probe and prefetches that probe's next midpoint, letting the memory
// system overlap up to kProbeGroup misses instead of serializing them.
//
// The descent is the classical half-open invariant ([lo, lo+len) always
// contains the lower bound), so the result is bit-for-bit the index
// std::lower_bound would return; batching is purely a scheduling change.

#include <cstddef>
#include <cstdint>

namespace ngs::util {

/// Number of binary-search descents advanced in lockstep. Sized to the
/// memory-level parallelism a single core can sustain (~10-16
/// outstanding misses) — larger groups spill registers without adding
/// overlap.
inline constexpr std::size_t kProbeGroup = 16;

/// Advances `n_probes` lower_bound descents over `haystack` in lockstep.
/// On entry, (lo[j], len[j]) is probe j's half-open search range
/// [lo[j], lo[j]+len[j]); on return lo[j] is the lower_bound index of
/// keys[j] within that range (len[j] becomes 0). Probes with len == 0 on
/// entry are untouched.
inline void interleaved_lower_bound(const std::uint64_t* haystack,
                                    const std::uint64_t* keys,
                                    std::size_t* lo, std::size_t* len,
                                    std::size_t n_probes) noexcept {
  for (std::size_t j = 0; j < n_probes; ++j) {
    if (len[j] != 0) __builtin_prefetch(&haystack[lo[j] + (len[j] >> 1)]);
  }
  bool active = true;
  while (active) {
    active = false;
    for (std::size_t j = 0; j < n_probes; ++j) {
      if (len[j] == 0) continue;
      const std::size_t half = len[j] >> 1;
      if (haystack[lo[j] + half] < keys[j]) {
        lo[j] += half + 1;
        len[j] -= half + 1;
      } else {
        len[j] = half;
      }
      if (len[j] != 0) {
        __builtin_prefetch(&haystack[lo[j] + (len[j] >> 1)]);
        active = true;
      }
    }
  }
}

}  // namespace ngs::util
