#pragma once
// Peak-RSS reporting for the memory columns of Tables 2.3 and 3.4.

#include <cstdint>

namespace ngs::util {

/// Peak resident set size of this process in bytes (from
/// /proc/self/status VmHWM); returns 0 if unavailable.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS); returns 0 if unavailable.
std::uint64_t current_rss_bytes();

/// Convenience: bytes -> fractional gigabytes.
double to_gib(std::uint64_t bytes);

}  // namespace ngs::util
