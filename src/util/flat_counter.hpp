#pragma once
// FlatCounter: open-addressing (linear probing) hash map from uint64 keys
// to uint32 counts, tuned for the q-gram counting inner loops of SHREC
// and CLOSET where std::unordered_map's node allocations dominate.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ngs::util {

class FlatCounter {
 public:
  /// Reserves capacity for ~expected_keys at load factor <= 0.5.
  explicit FlatCounter(std::size_t expected_keys = 1024) {
    std::size_t cap = 16;
    while (cap < expected_keys * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  void add(std::uint64_t key, std::uint32_t delta = 1) {
    if (key == kEmpty) {
      sentinel_count_ += delta;
      sentinel_used_ = true;
      return;
    }
    Slot* s = &find_slot(key);
    if (s->key == kEmpty) {
      // Only a genuine insert can push the load factor over 1/2 —
      // updates to existing keys never rehash.
      if ((size_ + 1) * 2 > slots_.size()) {
        grow();
        s = &find_slot(key);
      }
      s->key = key;
      ++size_;
    }
    s->count += delta;
  }

  std::uint32_t count(std::uint64_t key) const {
    if (key == kEmpty) return sentinel_used_ ? sentinel_count_ : 0;
    const Slot& s = find_slot(key);
    return s.key == kEmpty ? 0 : s.count;
  }

  std::size_t distinct() const noexcept {
    return size_ + (sentinel_used_ ? 1 : 0);
  }

  /// Current slot-array size (for load-factor telemetry and tests).
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Visits every (key, count) pair in unspecified order.
  void for_each(const std::function<void(std::uint64_t, std::uint32_t)>& fn)
      const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.count);
    }
    if (sentinel_used_) fn(kEmpty, sentinel_count_);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint32_t count = 0;
  };

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  const Slot& find_slot(std::uint64_t key) const {
    std::size_t i = mix(key) & mask_;
    while (slots_[i].key != kEmpty && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    return slots_[i];
  }

  Slot& find_slot(std::uint64_t key) {
    return const_cast<Slot&>(std::as_const(*this).find_slot(key));
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      Slot& dst = find_slot(s.key);
      dst.key = s.key;
      dst.count = s.count;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t sentinel_count_ = 0;
  bool sentinel_used_ = false;
};

}  // namespace ngs::util
