#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace ngs::util {

void CliParser::add_option(const std::string& name, const std::string& help,
                           bool takes_value,
                           const std::string& default_value) {
  options_[name] = Option{help, takes_value, default_value};
  if (takes_value && !default_value.empty()) {
    values_[name] = default_value;
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    const auto it = options_.find(name);
    if (it == options_.end()) {
      error_ = "unknown option: " + arg;
      return false;
    }
    if (!it->second.takes_value) {
      values_[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "option " + arg + " requires a value";
      return false;
    }
    values_[name] = argv[++i];
    all_values_[name].push_back(values_[name]);
  }
  return true;
}

std::vector<std::string> CliParser::get_all(const std::string& name) const {
  const auto it = all_values_.find(name);
  return it == all_values_.end() ? std::vector<std::string>{} : it->second;
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name << (opt.takes_value ? " <value>" : "") << "\n      "
       << opt.help;
    if (!opt.default_value.empty()) {
      os << " (default: " << opt.default_value << ")";
    }
    os << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace ngs::util
