#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ngs::util {

void Histogram::add(std::int64_t value, std::uint64_t count) {
  bins_[value] += count;
  total_ += count;
}

std::int64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (const auto& [value, count] : bins_) {
    cum += count;
    if (cum >= target) return value;
  }
  return bins_.rbegin()->first;
}

double Histogram::fraction_below(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [v, count] : bins_) {
    if (v >= value) break;
    below += count;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [v, count] : bins_) {
    sum += static_cast<double>(v) * static_cast<double>(count);
  }
  return sum / static_cast<double>(total_);
}

double digamma(double x) {
  // Recurrence to push x above 6, then asymptotic expansion.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double log_gamma(double x) { return std::lgamma(x); }

double log_sum_exp(const std::vector<double>& log_values) {
  if (log_values.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(log_values.begin(), log_values.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double v : log_values) sum += std::exp(v - m);
  return m + std::log(sum);
}

double binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace ngs::util
