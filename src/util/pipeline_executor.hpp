#pragma once
// util::PipelineExecutor — a bounded-queue, order-restoring streaming
// executor: the overlap substrate of core::CorrectionPipeline and the
// piece the planned ngs-correctd service will sit on.
//
// Stage shape (one run() call):
//
//   reader thread ──► BoundedQueue ──► worker threads ──► reorder ──► writer
//   (producer fn)     (queue_depth)    (work fn × N)      buffer      (calling
//                                                         (by seq)     thread)
//
//   - A dedicated reader thread calls `producer` serially, stamping each
//     item with an ascending sequence number and pushing it into the
//     bounded input queue: the reader runs ahead of compute by at most
//     queue_depth items (double-buffering with backpressure).
//   - N worker threads claim items from the MPMC queue — dynamic load
//     balancing with no static partition, so a straggler item delays
//     only itself, never a barrier.
//   - Finished items enter a sequence-keyed reorder buffer; the calling
//     thread (the writer) consumes them in exactly production order, so
//     downstream output is byte-identical to a serial run at every
//     worker count and queue depth.
//
// Bounded memory: besides the input queue's own capacity, a total
// in-flight gate caps items produced but not yet consumed at
// queue_depth + 2*workers + 1. The gate is what bounds the *reorder*
// buffer — without it, fast workers racing past one straggler item
// would grow the out-of-order backlog without limit. Applying the cap
// at the producer (rather than blocking workers on a full reorder
// buffer) keeps the design deadlock-free: workers never block on the
// output side, so the item the writer needs next always makes progress.
//
// Failure model: the first exception (from any stage) wins. It aborts
// the input queue, the reorder buffer, and the in-flight gate, which
// unblocks every other stage (their pushes/pops/acquires fail and they
// exit their loops), run() joins all threads, and the exception is
// rethrown on the calling thread — a failing stage can never hang the
// pipeline.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/timer.hpp"

namespace ngs::util {

struct PipelineExecutorOptions {
  /// Worker threads claiming items between reader and writer (>= 1).
  std::size_t workers = 1;
  /// Capacity of the bounded reader → workers queue (>= 1): how far the
  /// reader may run ahead of compute.
  std::size_t queue_depth = 4;
};

/// Per-stage telemetry of one run: where the time went (stalls) and how
/// full the buffers got (occupancy high-water marks).
struct PipelineExecutorStats {
  /// Items that flowed through the pipeline.
  std::size_t items = 0;
  /// Input-queue occupancy high-water mark (<= queue_depth).
  std::size_t queue_peak = 0;
  /// Reorder-buffer high-water mark (< queue_depth + 2*workers + 1).
  std::size_t reorder_peak = 0;
  /// Reader thread: seconds inside `producer` vs blocked on backpressure
  /// (full input queue or the total in-flight cap).
  double reader_busy_seconds = 0.0;
  double reader_stall_seconds = 0.0;
  /// Workers: cumulative seconds blocked on an empty input queue.
  double worker_stall_seconds = 0.0;
  /// Writer: seconds inside `consumer` vs waiting for the next sequence
  /// number to finish.
  double writer_busy_seconds = 0.0;
  double writer_stall_seconds = 0.0;
  /// Wall time of the whole run.
  double elapsed_seconds = 0.0;

  /// Fraction of worker-thread wall time spent working (1 = never
  /// starved); 0 when nothing ran.
  double worker_utilization(std::size_t workers) const {
    const double denom =
        elapsed_seconds * static_cast<double>(workers == 0 ? 1 : workers);
    if (denom <= 0.0) return 0.0;
    const double util = 1.0 - worker_stall_seconds / denom;
    return util < 0.0 ? 0.0 : util;
  }
};

template <typename T>
class PipelineExecutor {
 public:
  /// Fills `item` with the next unit of work; returns false at end of
  /// input. Called serially from the dedicated reader thread.
  using Producer = std::function<bool(T& item)>;
  /// Processes one item in place. Called concurrently from `workers`
  /// threads; `worker` is a stable id in [0, workers).
  using Work = std::function<void(T& item, std::size_t worker)>;
  /// Consumes finished items in exact production order. Called serially
  /// from the thread that called run().
  using Consumer = std::function<void(T&& item)>;

  explicit PipelineExecutor(PipelineExecutorOptions options)
      : options_(options) {
    if (options_.workers == 0) options_.workers = 1;
    if (options_.queue_depth == 0) options_.queue_depth = 1;
  }

  PipelineExecutorStats run(const Producer& producer, const Work& work,
                            const Consumer& consumer) {
    Timer elapsed;
    PipelineExecutorStats stats;
    BoundedQueue<Sequenced> queue(options_.queue_depth);
    Reorder reorder;
    Gate gate(options_.queue_depth + 2 * options_.workers + 1);

    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto capture_error = [&] {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      queue.abort();
      reorder.abort();
      gate.abort();
    };

    double reader_busy = 0.0;
    double reader_gate_stall = 0.0;
    std::thread reader([&] {
      try {
        std::size_t seq = 0;
        for (;;) {
          if (!gate.acquire(reader_gate_stall)) break;
          T item{};
          Timer busy;
          const bool more = producer(item);
          reader_busy += busy.seconds();
          if (!more) break;
          if (!queue.push(Sequenced{seq, std::move(item)})) break;
          reorder.note_produced(++seq);
        }
        queue.close();
        reorder.close();
      } catch (...) {
        capture_error();
      }
    });

    std::vector<std::thread> workers;
    workers.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w) {
      workers.emplace_back([&, w] {
        try {
          Sequenced item;
          while (queue.pop(item)) {
            work(item.value, w);
            if (!reorder.put(item.seq, std::move(item.value))) break;
          }
        } catch (...) {
          capture_error();
        }
      });
    }

    // The calling thread is the writer: drain the reorder buffer in
    // sequence order.
    try {
      T item{};
      while (reorder.next(item, stats.writer_stall_seconds)) {
        Timer busy;
        consumer(std::move(item));
        stats.writer_busy_seconds += busy.seconds();
        ++stats.items;
        gate.release();
      }
    } catch (...) {
      capture_error();
    }

    reader.join();
    for (auto& w : workers) w.join();

    stats.queue_peak = queue.peak_size();
    stats.reorder_peak = reorder.peak_size();
    stats.reader_busy_seconds = reader_busy;
    stats.reader_stall_seconds = queue.push_wait_seconds() + reader_gate_stall;
    stats.worker_stall_seconds = queue.pop_wait_seconds();
    stats.elapsed_seconds = elapsed.seconds();
    if (first_error) std::rethrow_exception(first_error);
    return stats;
  }

 private:
  struct Sequenced {
    std::size_t seq = 0;
    T value{};
  };

  /// Total in-flight cap (produced minus consumed). Applied on the
  /// producer side only — see the bounded-memory note in the header
  /// comment for why that placement is what keeps the pipeline
  /// deadlock-free.
  class Gate {
   public:
    explicit Gate(std::size_t cap) : cap_(cap) {}

    /// Blocks until an in-flight slot is free; false after abort.
    bool acquire(double& stall_seconds) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (in_flight_ >= cap_ && !aborted_) {
        Timer wait;
        freed_.wait(lock, [this] { return in_flight_ < cap_ || aborted_; });
        stall_seconds += wait.seconds();
      }
      if (aborted_) return false;
      ++in_flight_;
      return true;
    }

    void release() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (in_flight_ > 0) --in_flight_;
      }
      freed_.notify_one();
    }

    void abort() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        aborted_ = true;
      }
      freed_.notify_all();
    }

   private:
    const std::size_t cap_;
    std::mutex mutex_;
    std::condition_variable freed_;
    std::size_t in_flight_ = 0;
    bool aborted_ = false;
  };

  /// Sequence-keyed buffer restoring production order between the
  /// unordered workers and the serial writer.
  class Reorder {
   public:
    /// Called by a worker with a finished item. Returns false after
    /// abort (the item is dropped; the worker exits its loop).
    bool put(std::size_t seq, T&& value) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (aborted_) return false;
      done_.emplace(seq, std::move(value));
      if (done_.size() > peak_) peak_ = done_.size();
      ready_.notify_all();
      return true;
    }

    /// Writer side: blocks until item number `next_` is finished (true)
    /// or the stream is complete/aborted (false). Accumulates the wait
    /// into `stall_seconds`.
    bool next(T& out, double& stall_seconds) {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto ready = [this] {
        return aborted_ || done_.count(next_) != 0 ||
               (closed_ && next_ >= produced_);
      };
      if (!ready()) {
        Timer wait;
        ready_.wait(lock, ready);
        stall_seconds += wait.seconds();
      }
      if (aborted_) return false;
      auto it = done_.find(next_);
      if (it == done_.end()) return false;  // closed and fully drained
      out = std::move(it->second);
      done_.erase(it);
      ++next_;
      return true;
    }

    /// Reader side: records that items [0, produced) exist, so the
    /// writer knows when a closed stream is fully drained.
    void note_produced(std::size_t produced) {
      std::lock_guard<std::mutex> lock(mutex_);
      produced_ = produced;
    }

    void close() {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      ready_.notify_all();
    }

    void abort() {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
      done_.clear();
      ready_.notify_all();
    }

    std::size_t peak_size() const {
      std::lock_guard<std::mutex> lock(mutex_);
      return peak_;
    }

   private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::size_t, T> done_;
    std::size_t next_ = 0;
    std::size_t produced_ = 0;
    std::size_t peak_ = 0;
    bool closed_ = false;
    bool aborted_ = false;
  };

  PipelineExecutorOptions options_;
};

}  // namespace ngs::util
