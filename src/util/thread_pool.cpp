#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

namespace ngs::util {

namespace {
thread_local bool t_on_worker_thread = false;
thread_local std::size_t t_worker_index = SIZE_MAX;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

std::size_t ThreadPool::worker_index() noexcept { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_on_worker_thread = true;
  t_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_blocked(begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_blocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t num_blocks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, size() * 3));
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // Drain every future before rethrowing: tasks capture `fn` (often a
  // temporary in the caller) by reference, so propagating the first
  // exception while later tasks are still queued would leave them
  // running against destroyed caller state (use-after-free caught by
  // the TSan smoke target). First exception in block order wins.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (size() * 8));
  const std::size_t num_tasks =
      std::min(size(), (n + grain - 1) / grain);
  if (num_tasks <= 1) {
    fn(begin, end);
    return;
  }
  // Shared ticket: each task claims the next `grain` indices until the
  // range runs dry. shared_ptr keeps the counter alive for tasks that
  // are still queued when an earlier task throws (see the drain note in
  // parallel_for_blocked).
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  std::vector<std::future<void>> futures;
  futures.reserve(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    futures.push_back(submit([&fn, next, end, grain] {
      for (;;) {
        const std::size_t lo = next->fetch_add(grain);
        if (lo >= end) return;
        fn(lo, std::min(end, lo + grain));
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ngs::util
