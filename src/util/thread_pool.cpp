#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace ngs::util {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_blocked(begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_blocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t num_blocks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, size() * 3));
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // Drain every future before rethrowing: tasks capture `fn` (often a
  // temporary in the caller) by reference, so propagating the first
  // exception while later tasks are still queued would leave them
  // running against destroyed caller state (use-after-free caught by
  // the TSan smoke target). First exception in block order wins.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ngs::util
