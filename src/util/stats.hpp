#pragma once
// Numeric helpers: histograms, running moments, special functions
// (digamma, log-gamma wrappers), log-sum-exp, quantiles.
//
// REDEEM's mixture-model threshold inference (Sec. 3.7) needs digamma for
// the Gamma-component shape update; Reptile's data-driven parameter
// selection needs quantiles of quality-score and tile-count histograms.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace ngs::util {

/// Integer-binned histogram with quantile queries.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1);

  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Smallest value v such that at least `q` fraction of mass is <= v.
  std::int64_t quantile(double q) const;

  /// Fraction of mass strictly below `value`.
  double fraction_below(std::int64_t value) const;

  double mean() const;

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Streaming mean/variance (Welford).
class RunningMoments {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Digamma function psi(x) = d/dx ln Gamma(x), for x > 0.
double digamma(double x);

/// ln Gamma(x); thin wrapper over std::lgamma for a stable call site.
double log_gamma(double x);

/// log(sum(exp(v))) computed stably.
double log_sum_exp(const std::vector<double>& log_values);

/// Binomial coefficient as double (small n only).
double binomial(std::uint64_t n, std::uint64_t k);

}  // namespace ngs::util
