#pragma once
// ShardedCache: a concurrent, bounded-capacity memo cache from uint64
// keys to uint64 values, built for decision memoization on hot paths
// (Reptile's pass-2 tile decisions; any pure uint64 -> uint64 function).
//
// Design:
//  - N lock-striped shards (power of two), each an open-addressed slot
//    array with a bounded linear-probe window. A lookup or store takes
//    exactly one shard mutex; distinct keys hash to distinct shards with
//    high probability, so workers proceed contention-free in practice.
//  - Bounded capacity: the slot arrays are sized once from a byte budget
//    and never grow. When a probe window is full the incoming entry
//    *deterministically* replaces the entry at the key's home slot, so
//    the resident set is a pure function of the store sequence.
//  - Generation-based reset: reset() bumps a per-shard generation tag in
//    O(#shards); slots whose tag differs from the shard's are logically
//    empty. No slot array is touched until keys are re-inserted.
//  - Counters: per-shard hit/miss/insert/evict tallies, aggregated by
//    stats() — observability for cache sizing (see --tile-cache-mb).
//
// Because callers memoize pure functions, an evicted or lost entry only
// costs a recomputation — results are identical for any thread count and
// any interleaving, which is what lets the correction pipeline share one
// cache across every worker while guaranteeing byte-identical output.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ngs::util {

class ShardedCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// `capacity_bytes` bounds the slot storage (rounded down to a power
  /// of two per shard, minimum one probe window each). `shards` must be
  /// a power of two; 0 picks one based on hardware concurrency.
  explicit ShardedCache(std::size_t capacity_bytes,
                        std::size_t shards = 0) {
    std::size_t n = shards;
    if (n == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      n = 1;
      while (n < hw * 2 && n < 64) n <<= 1;
    }
    if ((n & (n - 1)) != 0 || n == 0) {
      std::size_t p = 1;
      while (p < n) p <<= 1;
      n = p;
    }
    const std::size_t total_slots = capacity_bytes / sizeof(Slot);
    std::size_t per_shard = kProbeWindow;
    while (per_shard * 2 * n <= total_slots) per_shard <<= 1;
    shard_bits_ = 0;
    while ((std::size_t{1} << shard_bits_) < n) ++shard_bits_;
    shards_ = std::make_unique<Shard[]>(n);
    num_shards_ = n;
    slots_per_shard_ = per_shard;
    for (std::size_t s = 0; s < n; ++s) {
      shards_[s].slots.assign(per_shard, Slot{});
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// True (and sets `value`) when `key` is resident. Counts one hit or
  /// one miss.
  bool lookup(std::uint64_t key, std::uint64_t& value) noexcept {
    const std::uint64_t h = mix(key);
    Shard& shard = shards_[h & (num_shards_ - 1)];
    const std::size_t home =
        (h >> shard_bits_) & (slots_per_shard_ - 1);
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      const Slot& slot =
          shard.slots[(home + p) & (slots_per_shard_ - 1)];
      if (slot.gen != shard.gen) break;  // first empty ends the chain
      if (slot.key == key) {
        value = slot.value;
        ++shard.stats.hits;
        return true;
      }
    }
    ++shard.stats.misses;
    return false;
  }

  /// Inserts or overwrites `key`. When the probe window is full the
  /// entry at the key's home slot is evicted (deterministic in the
  /// store sequence).
  void store(std::uint64_t key, std::uint64_t value) noexcept {
    const std::uint64_t h = mix(key);
    Shard& shard = shards_[h & (num_shards_ - 1)];
    const std::size_t home =
        (h >> shard_bits_) & (slots_per_shard_ - 1);
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(home + p) & (slots_per_shard_ - 1)];
      if (slot.gen != shard.gen) {
        slot = {key, value, shard.gen};
        ++shard.used;
        ++shard.stats.insertions;
        return;
      }
      if (slot.key == key) {
        slot.value = value;
        return;
      }
    }
    shard.slots[home] = {key, value, shard.gen};
    ++shard.stats.evictions;
  }

  /// Logically empties the cache in O(#shards). Counters are preserved
  /// (they describe the cache's whole lifetime).
  void reset() noexcept {
    for (std::size_t s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (++shard.gen == 0) {
        // Tag wrapped: physically clear so stale gen-0 slots cannot
        // alias, then restart at generation 1.
        shard.slots.assign(slots_per_shard_, Slot{});
        shard.gen = 1;
      }
      shard.used = 0;
    }
  }

  Stats stats() const {
    Stats total;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.insertions += shard.stats.insertions;
      total.evictions += shard.stats.evictions;
    }
    return total;
  }

  /// Entries resident in the current generation.
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.used;
    }
    return n;
  }

  std::size_t num_shards() const noexcept { return num_shards_; }
  std::size_t capacity() const noexcept {
    return num_shards_ * slots_per_shard_;
  }
  std::size_t capacity_bytes() const noexcept {
    return capacity() * sizeof(Slot);
  }

 private:
  static constexpr std::size_t kProbeWindow = 16;

  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint32_t gen = 0;  // empty while != owning shard's gen (>= 1)
  };

  /// Shards are cache-line separated so one worker's lock traffic does
  /// not false-share a neighbor's.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;
    std::uint32_t gen = 1;
    std::size_t used = 0;
    Stats stats;
  };

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  std::unique_ptr<Shard[]> shards_;
  std::size_t num_shards_ = 0;
  std::size_t slots_per_shard_ = 0;
  unsigned shard_bits_ = 0;
};

}  // namespace ngs::util
