#pragma once
// A small fixed-size thread pool with a blocking work queue plus
// parallel_for / parallel_for_blocked helpers.
//
// The MapReduce engine (src/mapreduce) and the spectrum builders use this
// for explicit task parallelism in the OpenMP fork/join style: the caller
// submits a batch of tasks and waits on all of them. All parallelism in
// this library is explicit, per the HPC guides — no hidden global state.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ngs::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [begin, end), partitioned into ~3x#workers blocks.
  /// Blocks until all iterations complete. Exceptions from tasks are
  /// rethrown (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(block_begin, block_end) over contiguous blocks. Useful when
  /// the body wants per-block scratch state.
  ///
  /// Safe to call from inside a pool task: nested invocations run the
  /// range inline on the calling worker instead of re-submitting (a
  /// nested submit-and-wait could deadlock once every worker blocks on
  /// futures only other workers could run).
  void parallel_for_blocked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Dynamic-chunk variant for uneven per-index costs: one task per
  /// worker claims chunks of `grain` indices off a shared atomic ticket
  /// until the range is exhausted, so a straggler chunk delays only the
  /// worker that claimed it instead of serializing a static partition's
  /// barrier. `grain` 0 picks ~8 chunks per worker. Chunks are
  /// contiguous but their assignment to workers is nondeterministic —
  /// callers that rely on a deterministic block ↔ worker mapping keep
  /// using parallel_for_blocked. Same nesting and exception semantics
  /// as parallel_for_blocked (inline when nested; first error after all
  /// tasks drain).
  void parallel_for_dynamic(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool on_worker_thread() noexcept;

  /// Index of the calling thread within its owning pool, or SIZE_MAX on
  /// a non-worker thread. A scheduling hint (two pools number their
  /// workers independently), used e.g. to spread scratch-slot probes.
  static std::size_t worker_index() noexcept;

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace ngs::util
