#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(NGS_SIMD_DISABLED)
#define NGS_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(NGS_SIMD_DISABLED)
#define NGS_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace ngs::util::simd {
namespace {

// ---------------------------------------------------------------- scalar

void hamming_batch_scalar(const std::uint64_t* codes, std::size_t n,
                          std::uint64_t query, std::uint8_t* hd) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    hd[i] = static_cast<std::uint8_t>(hamming2(codes[i], query));
  }
}

std::size_t masked_run_filter_scalar(const std::uint64_t* codes,
                                     const std::uint32_t* order,
                                     std::size_t limit, std::uint64_t keep,
                                     std::uint64_t key, std::uint64_t query,
                                     int d, std::uint32_t* out,
                                     std::size_t* out_n) noexcept {
  std::size_t i = 0;
  std::size_t hits = 0;
  for (; i < limit; ++i) {
    const std::uint64_t code = codes[order[i]];
    if ((code & keep) != key) break;
    const int hd = hamming2(code, query);
    if (hd >= 1 && hd <= d) out[hits++] = order[i];
  }
  *out_n = hits;
  return i;
}

// ------------------------------------------------------------------ AVX2

#ifdef NGS_SIMD_HAVE_AVX2

/// Per-64-bit-lane popcount of (x ^ q reduced to one bit per 2-bit
/// symbol): nibble-LUT pshufb counts summed with psadbw.
__attribute__((target("avx2"))) inline __m256i hamming2_lanes(
    __m256i values, __m256i query) {
  const __m256i m55 = _mm256_set1_epi64x(0x5555555555555555LL);
  const __m256i low4 = _mm256_set1_epi8(0x0f);
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  __m256i x = _mm256_xor_si256(values, query);
  x = _mm256_and_si256(_mm256_or_si256(x, _mm256_srli_epi64(x, 1)), m55);
  const __m256i lo = _mm256_and_si256(x, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), low4);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void hamming_batch_avx2(
    const std::uint64_t* codes, std::size_t n, std::uint64_t query,
    std::uint8_t* hd) noexcept {
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(query));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i values =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    alignas(32) std::uint64_t sums[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(sums),
                       hamming2_lanes(values, q));
    hd[i + 0] = static_cast<std::uint8_t>(sums[0]);
    hd[i + 1] = static_cast<std::uint8_t>(sums[1]);
    hd[i + 2] = static_cast<std::uint8_t>(sums[2]);
    hd[i + 3] = static_cast<std::uint8_t>(sums[3]);
  }
  hamming_batch_scalar(codes + i, n - i, query, hd + i);
}

__attribute__((target("avx2"))) std::size_t masked_run_filter_avx2(
    const std::uint64_t* codes, const std::uint32_t* order, std::size_t limit,
    std::uint64_t keep, std::uint64_t key, std::uint64_t query, int d,
    std::uint32_t* out, std::size_t* out_n) noexcept {
  const __m256i keepv = _mm256_set1_epi64x(static_cast<long long>(keep));
  const __m256i keyv = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(query));
  std::size_t i = 0;
  std::size_t hits = 0;
  // Full 4-wide blocks while the whole block continues the run; every
  // gathered index is a valid spectrum position regardless of where the
  // run actually ends, so over-reading a partial block is safe — it just
  // drops us to the scalar tail.
  for (; i + 4 <= limit; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(order + i));
    const __m256i values = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(codes), idx, 8);
    const __m256i eq =
        _mm256_cmpeq_epi64(_mm256_and_si256(values, keepv), keyv);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0xf) break;
    alignas(32) std::uint64_t sums[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(sums),
                       hamming2_lanes(values, q));
    for (int lane = 0; lane < 4; ++lane) {
      const auto hd = static_cast<int>(sums[lane]);
      if (hd >= 1 && hd <= d) out[hits++] = order[i + static_cast<std::size_t>(lane)];
    }
  }
  std::size_t tail_hits = 0;
  const std::size_t consumed = masked_run_filter_scalar(
      codes, order + i, limit - i, keep, key, query, d, out + hits,
      &tail_hits);
  *out_n = hits + tail_hits;
  return i + consumed;
}

#endif  // NGS_SIMD_HAVE_AVX2

// ------------------------------------------------------------------ NEON

#ifdef NGS_SIMD_HAVE_NEON

inline int hamming2_neon_pair(uint64x2_t values, uint64x2_t query,
                              int* hd1) noexcept {
  const uint64x2_t m55 = vdupq_n_u64(0x5555555555555555ULL);
  uint64x2_t x = veorq_u64(values, query);
  x = vandq_u64(vorrq_u64(x, vshrq_n_u64(x, 1)), m55);
  const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(x));
  const std::uint64_t lo =
      vaddlv_u8(vget_low_u8(counts));
  const std::uint64_t hi = vaddlv_u8(vget_high_u8(counts));
  *hd1 = static_cast<int>(hi);
  return static_cast<int>(lo);
}

void hamming_batch_neon(const std::uint64_t* codes, std::size_t n,
                        std::uint64_t query, std::uint8_t* hd) noexcept {
  const uint64x2_t q = vdupq_n_u64(query);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int hd1 = 0;
    const int hd0 = hamming2_neon_pair(vld1q_u64(codes + i), q, &hd1);
    hd[i] = static_cast<std::uint8_t>(hd0);
    hd[i + 1] = static_cast<std::uint8_t>(hd1);
  }
  hamming_batch_scalar(codes + i, n - i, query, hd + i);
}

std::size_t masked_run_filter_neon(const std::uint64_t* codes,
                                   const std::uint32_t* order,
                                   std::size_t limit, std::uint64_t keep,
                                   std::uint64_t key, std::uint64_t query,
                                   int d, std::uint32_t* out,
                                   std::size_t* out_n) noexcept {
  const uint64x2_t keepv = vdupq_n_u64(keep);
  const uint64x2_t keyv = vdupq_n_u64(key);
  const uint64x2_t q = vdupq_n_u64(query);
  std::size_t i = 0;
  std::size_t hits = 0;
  for (; i + 2 <= limit; i += 2) {
    std::uint64_t pair[2] = {codes[order[i]], codes[order[i + 1]]};
    const uint64x2_t values = vld1q_u64(pair);
    const uint64x2_t eq = vceqq_u64(vandq_u64(values, keepv), keyv);
    if (vgetq_lane_u64(eq, 0) != ~std::uint64_t{0} ||
        vgetq_lane_u64(eq, 1) != ~std::uint64_t{0}) {
      break;
    }
    int hd1 = 0;
    const int hd0 = hamming2_neon_pair(values, q, &hd1);
    if (hd0 >= 1 && hd0 <= d) out[hits++] = order[i];
    if (hd1 >= 1 && hd1 <= d) out[hits++] = order[i + 1];
  }
  std::size_t tail_hits = 0;
  const std::size_t consumed = masked_run_filter_scalar(
      codes, order + i, limit - i, keep, key, query, d, out + hits,
      &tail_hits);
  *out_n = hits + tail_hits;
  return i + consumed;
}

#endif  // NGS_SIMD_HAVE_NEON

// -------------------------------------------------------------- dispatch

using HammingBatchFn = void (*)(const std::uint64_t*, std::size_t,
                                std::uint64_t, std::uint8_t*) noexcept;
using MaskedRunFn = std::size_t (*)(const std::uint64_t*, const std::uint32_t*,
                                    std::size_t, std::uint64_t, std::uint64_t,
                                    std::uint64_t, int, std::uint32_t*,
                                    std::size_t*) noexcept;

struct Kernels {
  Level level;
  HammingBatchFn hamming_batch;
  MaskedRunFn masked_run_filter;
};

constexpr Kernels kScalarKernels{Level::kScalar, hamming_batch_scalar,
                                 masked_run_filter_scalar};
#ifdef NGS_SIMD_HAVE_AVX2
constexpr Kernels kAvx2Kernels{Level::kAVX2, hamming_batch_avx2,
                               masked_run_filter_avx2};
#endif
#ifdef NGS_SIMD_HAVE_NEON
constexpr Kernels kNeonKernels{Level::kNEON, hamming_batch_neon,
                               masked_run_filter_neon};
#endif

const Kernels* kernels_for(Level level) noexcept {
  switch (level) {
#ifdef NGS_SIMD_HAVE_AVX2
    case Level::kAVX2:
      if (supported(Level::kAVX2)) return &kAvx2Kernels;
      break;
#endif
#ifdef NGS_SIMD_HAVE_NEON
    case Level::kNEON:
      if (supported(Level::kNEON)) return &kNeonKernels;
      break;
#endif
    default:
      break;
  }
  return &kScalarKernels;
}

Level parse_env_level(const char* value) noexcept {
  if (value == nullptr || std::strcmp(value, "auto") == 0) {
    // Best supported level.
    if (supported(Level::kAVX2)) return Level::kAVX2;
    if (supported(Level::kNEON)) return Level::kNEON;
    return Level::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) return Level::kAVX2;
  if (std::strcmp(value, "neon") == 0) return Level::kNEON;
  // "scalar", "off", and anything unrecognized pin the portable path.
  return Level::kScalar;
}

std::atomic<const Kernels*> g_kernels{nullptr};

const Kernels* resolve() noexcept {
  const Kernels* existing = g_kernels.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  const Kernels* chosen = kernels_for(parse_env_level(std::getenv("NGS_SIMD")));
  // A concurrent first call may have stored already; either store wins —
  // both derive from the same environment, so the result is identical.
  g_kernels.store(chosen, std::memory_order_release);
  return chosen;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAVX2:
      return "avx2";
    case Level::kNEON:
      return "neon";
    default:
      return "scalar";
  }
}

bool supported(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAVX2:
#ifdef NGS_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNEON:
#ifdef NGS_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level active() noexcept { return resolve()->level; }

void force_level(Level level) noexcept {
  g_kernels.store(kernels_for(level), std::memory_order_release);
}

void hamming_batch(const std::uint64_t* codes, std::size_t n,
                   std::uint64_t query, std::uint8_t* hd) noexcept {
  resolve()->hamming_batch(codes, n, query, hd);
}

std::size_t masked_run_filter(const std::uint64_t* codes,
                              const std::uint32_t* order, std::size_t limit,
                              std::uint64_t keep, std::uint64_t key,
                              std::uint64_t query, int d, std::uint32_t* out,
                              std::size_t* out_n) noexcept {
  return resolve()->masked_run_filter(codes, order, limit, keep, key, query, d,
                                      out, out_n);
}

}  // namespace ngs::util::simd
