#include "redeem/corrector.hpp"

#include <algorithm>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/thread_pool.hpp"

#include <mutex>

namespace ngs::redeem {

RedeemCorrector::RedeemCorrector(const RedeemModel& model,
                                 RedeemCorrectorParams params)
    : model_(&model), params_(params), flag_threshold_(params.flag_threshold) {
  if (flag_threshold_ <= 0.0) {
    // Auto: half the mean estimated attempts — liberal enough to catch
    // every read plausibly containing an error without inspecting all.
    const auto& t = model.estimates();
    double sum = 0.0;
    for (const double v : t) sum += v;
    flag_threshold_ =
        t.empty() ? 1.0 : 0.5 * sum / static_cast<double>(t.size());
  }
}

seq::Read RedeemCorrector::correct(const seq::Read& read,
                                   RedeemCorrectionStats& stats) const {
  const int k = model_->spectrum().k();
  seq::Read out = read;
  if (read.bases.size() < static_cast<std::size_t>(k)) return out;

  std::vector<std::pair<seq::KmerCode, std::uint32_t>> kmers;
  seq::extract_kmers(read.bases, k, kmers);
  if (kmers.empty()) return out;

  // Flag pass: any covering kmer with low estimated attempts?
  bool flagged = false;
  std::vector<std::int64_t> indices(kmers.size());
  for (std::size_t i = 0; i < kmers.size(); ++i) {
    indices[i] = model_->spectrum().index_of(kmers[i].first);
    if (indices[i] >= 0 &&
        model_->estimates()[static_cast<std::size_t>(indices[i])] <
            flag_threshold_) {
      flagged = true;
    }
  }
  if (!flagged) return out;
  ++stats.reads_flagged;

  // Aggregate per-position posteriors from all covering kmers.
  std::vector<std::array<double, 4>> acc(read.bases.size(),
                                         std::array<double, 4>{});
  for (std::size_t i = 0; i < kmers.size(); ++i) {
    if (indices[i] < 0) continue;
    model_->accumulate_posteriors(static_cast<std::size_t>(indices[i]), acc,
                                  kmers[i].second);
  }

  for (std::size_t p = 0; p < out.bases.size(); ++p) {
    const std::uint8_t current = seq::base_to_code(out.bases[p]);
    if (current == seq::kInvalidBase) continue;
    const auto& pi = acc[p];
    int best = 0;
    for (int b = 1; b < 4; ++b) {
      if (pi[static_cast<std::size_t>(b)] >
          pi[static_cast<std::size_t>(best)]) {
        best = b;
      }
    }
    if (best != current &&
        pi[static_cast<std::size_t>(best)] >
            params_.posterior_margin * pi[current]) {
      out.bases[p] = seq::code_to_base(static_cast<std::uint8_t>(best));
      ++stats.bases_changed;
    }
  }
  return out;
}

std::vector<seq::Read> RedeemCorrector::correct_all(
    const seq::ReadSet& reads, RedeemCorrectionStats& stats) const {
  std::vector<seq::Read> out(reads.reads.size());
  std::mutex stats_mutex;
  util::default_pool().parallel_for_blocked(
      0, reads.reads.size(), [&](std::size_t lo, std::size_t hi) {
        RedeemCorrectionStats local;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = correct(reads.reads[i], local);
        }
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.reads_flagged += local.reads_flagged;
        stats.bases_changed += local.bases_changed;
      });
  return out;
}

}  // namespace ngs::redeem
