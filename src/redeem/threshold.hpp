#pragma once
// Model-based threshold inference (Sec. 3.7): the estimated attempts T_l
// follow a mixture of
//   - a Gamma(alpha, beta) component for erroneous kmers (alpha_l = 0),
//   - G Normal components approximating Negative Binomials for genomic
//     occurrence counts alpha_l = 1..G, with means g*mu*p/(1-p) and
//     variances g*mu*p/(1-p)^2 (one coverage parameter pair (mu, p)
//     shared across g),
//   - a Uniform component over [0, max T] absorbing high-copy repeats.
// Parameters are fit by EM; the number of normal components G is chosen
// by BIC. The detection threshold is the largest T still classified
// (posterior argmax) into the Gamma (error) component.
//
// Deviation from the paper: the (mu, p) M-step uses weighted moment
// matching across the normal components instead of the paper's implicit
// root equations — same stationary targets, simpler numerics.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ngs::redeem {

struct MixtureFit {
  int num_normals = 0;         // chosen G
  double pi_gamma = 0.0;       // weight of the error component
  double alpha = 0.0;          // Gamma shape
  double beta = 0.0;           // Gamma rate
  double mu = 0.0;             // NB mean parameter
  double p = 0.0;              // NB success parameter
  std::vector<double> weights; // all component weights (G + 2)
  double log_likelihood = 0.0;
  double bic = 0.0;
  double threshold = 0.0;      // classification boundary
  int iterations = 0;
};

struct MixtureParams {
  int g_min = 1;
  int g_max = 4;
  int max_iterations = 80;
  double tolerance = 1e-7;
  /// Fit on at most this many values (uniform subsample) for speed;
  /// 0 = use all.
  std::size_t max_values = 500000;
};

/// Fits the mixture for each G in [g_min, g_max], returns the BIC-best
/// fit. `values` are the estimated T_l (must be non-negative; zeros are
/// nudged to a small epsilon for the Gamma density).
MixtureFit fit_threshold_mixture(const std::vector<double>& values,
                                 const MixtureParams& params,
                                 util::Rng& rng);

}  // namespace ngs::redeem
