#include "redeem/hybrid.hpp"

#include "kspec/kspectrum.hpp"

namespace ngs::redeem {

HybridCorrector::HybridCorrector(const std::vector<sim::MisreadMatrix>& q,
                                 HybridParams params)
    : q_(q), params_(std::move(params)) {}

std::vector<seq::Read> HybridCorrector::correct_all(
    const seq::ReadSet& reads, HybridStats& stats) const {
  // Stage 1: REDEEM posterior correction.
  const auto spectrum = kspec::KSpectrum::build(reads, params_.redeem_k,
                                                /*both_strands=*/false);
  const RedeemModel model(spectrum, q_, params_.em);
  const RedeemCorrector redeem_corrector(model, params_.redeem_corrector);
  auto intermediate_reads = redeem_corrector.correct_all(reads, stats.redeem);

  // Stage 2: Reptile over the cleaned reads. Quality scores are carried
  // through unchanged (REDEEM does not alter them).
  seq::ReadSet intermediate;
  intermediate.reads = std::move(intermediate_reads);
  const reptile::ReptileCorrector reptile_corrector(intermediate,
                                                    params_.reptile);
  return reptile_corrector.correct_all(intermediate, stats.reptile);
}

}  // namespace ngs::redeem
