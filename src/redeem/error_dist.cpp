#include "redeem/error_dist.hpp"

namespace ngs::redeem {

std::vector<sim::MisreadMatrix> kmer_error_matrices(
    ErrorDistKind kind, int k, const sim::ErrorModel& true_model,
    double wrong_rate) {
  const std::size_t L = true_model.read_length();
  switch (kind) {
    case ErrorDistKind::kTrueIllumina:
      return true_model.kmer_position_matrices(k);
    case ErrorDistKind::kWrongIllumina:
      return sim::ErrorModel::illumina_alternate(
                 L, true_model.average_error_rate())
          .kmer_position_matrices(k);
    case ErrorDistKind::kTrueUniform:
      return sim::ErrorModel::uniform(L, true_model.average_error_rate())
          .kmer_position_matrices(k);
    case ErrorDistKind::kWrongUniform:
      return sim::ErrorModel::uniform(L, wrong_rate)
          .kmer_position_matrices(k);
  }
  return {};
}

}  // namespace ngs::redeem
