#pragma once
// The combination Sec. 3.5 proposes as future work: "combine the
// features of a conventional error correction method such as Reptile
// with the explicit modeling of repeats as done in REDEEM to produce an
// error-correction method that is superior both when sampling low repeat
// and highly-repetitive genomes."
//
// Stage 1 — REDEEM: EM over the misread graph fixes errors in repeat
// shadows, where Reptile's occurrence thresholds cannot distinguish a
// repeated misread from a low-copy genomic variant.
// Stage 2 — Reptile: rebuilt from the stage-1 output (the cleaned reads
// sharpen the tile table), its contextual tiling then corrects the
// unique-region errors REDEEM's posterior leaves behind.

#include <vector>

#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "reptile/corrector.hpp"
#include "seq/read.hpp"
#include "sim/error_model.hpp"

namespace ngs::redeem {

struct HybridParams {
  int redeem_k = 11;
  RedeemParams em;
  RedeemCorrectorParams redeem_corrector;
  reptile::ReptileParams reptile;
};

struct HybridStats {
  RedeemCorrectionStats redeem;
  reptile::CorrectionStats reptile;
};

class HybridCorrector {
 public:
  /// `q` are the kmer-position misread matrices for the REDEEM stage
  /// (see kmer_error_matrices).
  HybridCorrector(const std::vector<sim::MisreadMatrix>& q,
                  HybridParams params);

  /// Runs both stages over the read set.
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     HybridStats& stats) const;

 private:
  std::vector<sim::MisreadMatrix> q_;
  HybridParams params_;
};

}  // namespace ngs::redeem
