#include "redeem/threshold.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace ngs::redeem {
namespace {

constexpr double kEps = 1e-8;

double log_gamma_pdf(double x, double alpha, double beta) {
  return alpha * std::log(beta) + (alpha - 1.0) * std::log(x) - beta * x -
         util::log_gamma(alpha);
}

double log_normal_pdf(double x, double mean, double var) {
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
}

/// Solves ln(a) - digamma(a) = rhs for a > 0 (rhs > 0) by bisection.
/// The shape is capped: the error component must stay wide enough to
/// absorb the repeat-shadow tail (T in [1, ~coverage/5]); an unbounded
/// MLE collapses onto the near-1 spike that Y=1 misreads form and
/// abandons that tail to the genomic components.
double solve_gamma_shape(double rhs) {
  if (!(rhs > 0.0)) return 1.0;
  double lo = 1e-3, hi = 8.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = std::sqrt(lo * hi);
    const double v = std::log(mid) - util::digamma(mid);
    // f is decreasing in a.
    if (v > rhs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

struct FitResult {
  MixtureFit fit;
  bool valid = false;
};

FitResult fit_for_g(const std::vector<double>& values, int G,
                    const MixtureParams& params) {
  const std::size_t n = values.size();
  const int C = G + 2;  // gamma + G normals + uniform
  const double max_t = *std::max_element(values.begin(), values.end());

  // Initialization from quantiles. Erroneous kmers dominate the
  // *distinct*-kmer count (most distinct kmers are one-off misreads), so
  // the error peak sits at the lower quartile while the genomic
  // (alpha=1) peak is found in the top decile of values.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double low_med = sorted[n / 4];
  // Genomic-peak guess: the median of values clear of the error mass.
  const double cutoff = std::max(1.0, 3.0 * low_med);
  const auto first_clear =
      std::lower_bound(sorted.begin(), sorted.end(), cutoff);
  double genomic_peak = sorted[(3 * n) / 4];
  if (first_clear != sorted.end()) {
    const auto clear_count =
        static_cast<std::size_t>(sorted.end() - first_clear);
    genomic_peak = *(first_clear + static_cast<std::ptrdiff_t>(
                                       clear_count / 2));
  }
  genomic_peak = std::max(genomic_peak, 1.0);

  MixtureFit fit;
  fit.num_normals = G;
  fit.alpha = 1.2;
  fit.beta = fit.alpha / std::max(kEps, low_med);
  // mu p/(1-p) = first genomic peak; pick p = 0.5 initially.
  double theta = genomic_peak;  // theta = mu p / (1-p)
  fit.p = 0.5;
  fit.mu = theta * (1.0 - fit.p) / fit.p;
  fit.weights.assign(static_cast<std::size_t>(C), 1.0 / C);

  std::vector<double> log_comp(static_cast<std::size_t>(C));
  std::vector<std::vector<double>> resp(
      static_cast<std::size_t>(C), std::vector<double>(n));

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    fit.iterations = iter + 1;
    theta = fit.mu * fit.p / (1.0 - fit.p);
    const double var_scale = theta / (1.0 - fit.p);  // sigma_g^2 = g*var_scale

    // E-step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = std::max(values[i], kEps);
      log_comp[0] = std::log(std::max(fit.weights[0], kEps)) +
                    log_gamma_pdf(x, fit.alpha, fit.beta);
      for (int g = 1; g <= G; ++g) {
        log_comp[static_cast<std::size_t>(g)] =
            std::log(std::max(fit.weights[static_cast<std::size_t>(g)],
                              kEps)) +
            log_normal_pdf(x, g * theta, std::max(kEps, g * var_scale));
      }
      log_comp[static_cast<std::size_t>(C - 1)] =
          std::log(std::max(fit.weights[static_cast<std::size_t>(C - 1)],
                            kEps)) -
          std::log(std::max(max_t, kEps));
      const double lse = util::log_sum_exp(log_comp);
      ll += lse;
      for (int c = 0; c < C; ++c) {
        resp[static_cast<std::size_t>(c)][i] =
            std::exp(log_comp[static_cast<std::size_t>(c)] - lse);
      }
    }
    fit.log_likelihood = ll;

    // M-step: weights.
    std::vector<double> ng(static_cast<std::size_t>(C), 0.0);
    for (int c = 0; c < C; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        ng[static_cast<std::size_t>(c)] += resp[static_cast<std::size_t>(c)][i];
      }
      fit.weights[static_cast<std::size_t>(c)] =
          ng[static_cast<std::size_t>(c)] / static_cast<double>(n);
    }

    // Gamma component: weighted MLE via ln(a) - psi(a).
    if (ng[0] > kEps) {
      double sum_t = 0.0, sum_ln = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = std::max(values[i], kEps);
        sum_t += resp[0][i] * x;
        sum_ln += resp[0][i] * std::log(x);
      }
      const double mean = sum_t / ng[0];
      const double mean_ln = sum_ln / ng[0];
      const double rhs = std::log(mean) - mean_ln;
      fit.alpha = solve_gamma_shape(rhs);
      fit.beta = fit.alpha / std::max(kEps, mean);
    }

    // Normal components: weighted moment matching for (theta, 1-p).
    double num_theta = 0.0, den_theta = 0.0;
    for (int g = 1; g <= G; ++g) {
      for (std::size_t i = 0; i < n; ++i) {
        num_theta += resp[static_cast<std::size_t>(g)][i] * values[i];
      }
      den_theta += g * ng[static_cast<std::size_t>(g)];
    }
    if (den_theta > kEps) {
      const double new_theta = std::max(kEps, num_theta / den_theta);
      // Pooled variance estimate: sum_g E[(T - g theta)^2 | Zg] / g
      // targets var_scale = theta / (1-p).
      double pooled = 0.0, pooled_n = 0.0;
      for (int g = 1; g <= G; ++g) {
        for (std::size_t i = 0; i < n; ++i) {
          const double d = values[i] - g * new_theta;
          pooled += resp[static_cast<std::size_t>(g)][i] * d * d / g;
        }
        pooled_n += ng[static_cast<std::size_t>(g)];
      }
      if (pooled_n > kEps) {
        const double var_s = std::max(new_theta * 0.25, pooled / pooled_n);
        // var_scale = theta/(1-p) => p = 1 - theta/var_scale.
        double p_new = 1.0 - new_theta / var_s;
        p_new = std::clamp(p_new, 0.05, 0.95);
        fit.p = p_new;
        fit.mu = new_theta * (1.0 - p_new) / p_new;
      }
    }

    if (iter > 0 && std::abs(ll - prev_ll) <=
                        params.tolerance * (std::abs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;
  }

  // BIC: free parameters = (C-1) weights + 2 gamma + 2 NB.
  const double k_params = static_cast<double>(C - 1 + 4);
  fit.bic = -2.0 * fit.log_likelihood +
            k_params * std::log(static_cast<double>(n));

  // Threshold: largest x whose argmax-posterior component is the Gamma.
  // Scan a fine grid between 0 and the first normal mean.
  const double theta_final = fit.mu * fit.p / (1.0 - fit.p);
  const double var_scale = theta_final / (1.0 - fit.p);
  double boundary = 0.0;
  const double hi = std::max(theta_final, 1.0);
  for (int s = 0; s <= 400; ++s) {
    const double x = std::max(kEps, hi * s / 400.0);
    const double lg = std::log(std::max(fit.weights[0], kEps)) +
                      log_gamma_pdf(x, fit.alpha, fit.beta);
    double best_other = -std::numeric_limits<double>::infinity();
    for (int g = 1; g <= G; ++g) {
      best_other = std::max(
          best_other,
          std::log(std::max(fit.weights[static_cast<std::size_t>(g)], kEps)) +
              log_normal_pdf(x, g * theta_final,
                             std::max(kEps, g * var_scale)));
    }
    best_other = std::max(
        best_other,
        std::log(std::max(fit.weights[static_cast<std::size_t>(C - 1)],
                          kEps)) -
            std::log(std::max(max_t, kEps)));
    if (lg > best_other) boundary = x;
  }
  fit.threshold = boundary;
  fit.pi_gamma = fit.weights[0];

  FitResult result;
  result.fit = fit;
  result.valid = std::isfinite(fit.log_likelihood);
  return result;
}

}  // namespace

MixtureFit fit_threshold_mixture(const std::vector<double>& values,
                                 const MixtureParams& params,
                                 util::Rng& rng) {
  if (values.empty()) {
    throw std::invalid_argument("fit_threshold_mixture: empty input");
  }
  // Optional subsample for speed.
  std::vector<double> sample;
  if (params.max_values > 0 && values.size() > params.max_values) {
    sample.reserve(params.max_values);
    for (std::size_t i = 0; i < params.max_values; ++i) {
      sample.push_back(values[rng.below(values.size())]);
    }
  } else {
    sample = values;
  }

  MixtureFit best;
  bool have = false;
  for (int g = params.g_min; g <= params.g_max; ++g) {
    const auto result = fit_for_g(sample, g, params);
    if (!result.valid) continue;
    if (!have || result.fit.bic < best.bic) {
      best = result.fit;
      have = true;
    }
  }
  if (!have) {
    throw std::runtime_error("fit_threshold_mixture: no valid fit");
  }
  return best;
}

}  // namespace ngs::redeem
