#pragma once
// REDEEM's EM estimator (Sec. 3.2): given the observed kmer counts Y over
// the spectrum and misread probabilities pe(x_m, x_l) restricted to the
// dmax-neighborhood of observed kmers, estimate the expected number of
// read attempts T_l per kmer by maximum likelihood.
//
//   E-step: E[Y_lm | Y, T] = Y_m * T_l pe(x_l, x_m) / sum_{l'} T_l' pe(x_l', x_m)
//   M-step: T_l <- sum_m E[Y_lm]
//
// initialized at T = Y and iterated to log-likelihood convergence. The
// misread matrix rows are normalized over the observed neighborhood (the
// paper's sparse-Pe normalization).

#include <array>
#include <cstdint>
#include <vector>

#include "kspec/hamming_graph.hpp"
#include "kspec/kspectrum.hpp"
#include "sim/error_model.hpp"

namespace ngs::redeem {

struct RedeemParams {
  int dmax = 1;
  int max_iterations = 100;
  double tolerance = 1e-6;  // relative log-likelihood change
};

class RedeemModel {
 public:
  /// `q` must hold k matrices (see kmer_error_matrices). Builds the
  /// misread graph and runs EM to convergence.
  RedeemModel(const kspec::KSpectrum& spectrum,
              const std::vector<sim::MisreadMatrix>& q, RedeemParams params);

  /// Estimated expected read attempts per spectrum kmer (same order as
  /// the spectrum).
  const std::vector<double>& estimates() const noexcept { return t_; }

  /// Observed counts Y as doubles (for baseline thresholding).
  std::vector<double> observed() const;

  int iterations_run() const noexcept { return iterations_; }
  double log_likelihood() const noexcept { return loglik_; }

  const kspec::KSpectrum& spectrum() const noexcept { return *spectrum_; }

  /// Posterior probability distribution over the true base at offset t of
  /// kmer l: pi_t(b) proportional to sum_{m in N(l) u {l}, x_m[t]=b}
  /// T_m pe(x_m, x_l). Used by the corrector. Returns 4 probabilities.
  std::array<double, 4> base_posterior(std::size_t l, int t) const;

  /// As base_posterior but accumulates the weighted votes for all k
  /// offsets at once into acc[t][b] (scaled by the caller's weight).
  void accumulate_posteriors(std::size_t l,
                             std::vector<std::array<double, 4>>& acc,
                             std::size_t offset) const;

 private:
  void run_em();

  const kspec::KSpectrum* spectrum_;
  int k_;
  RedeemParams params_;
  kspec::HammingGraph graph_;
  std::vector<double> self_;    // normalized pe(x_l, x_l)
  std::vector<double> w_in_;    // per CSR entry (l, e->m): pe(x_m, x_l)
  std::vector<double> w_out_;   // per CSR entry (l, e->m): pe(x_l, x_m)
  std::vector<std::uint64_t> offsets_;  // CSR offsets copy for weights
  std::vector<double> t_;
  double loglik_ = 0.0;
  int iterations_ = 0;
};

}  // namespace ngs::redeem
