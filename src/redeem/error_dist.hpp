#pragma once
// The four error-distribution hypotheses tested in Sec. 3.4.2:
//   tIED — the "true" Illumina error distribution (matches the simulator),
//   wIED — a wrong Illumina distribution (a different lab/organism),
//   tUED — uniform errors at the true average rate,
//   wUED — uniform errors at a wrong (inflated) rate.
// Each yields per-kmer-position misread matrices q_i(a,b) for REDEEM.

#include <string>
#include <vector>

#include "sim/error_model.hpp"

namespace ngs::redeem {

enum class ErrorDistKind { kTrueIllumina, kWrongIllumina, kTrueUniform,
                           kWrongUniform };

inline const char* to_string(ErrorDistKind kind) {
  switch (kind) {
    case ErrorDistKind::kTrueIllumina: return "tIED";
    case ErrorDistKind::kWrongIllumina: return "wIED";
    case ErrorDistKind::kTrueUniform: return "tUED";
    case ErrorDistKind::kWrongUniform: return "wUED";
  }
  return "?";
}

/// Builds q_i(a,b) (i in [0,k)) for the given hypothesis.
/// `true_model` is the model the reads were actually generated with (used
/// verbatim for tIED; its average rate parameterizes tUED).
/// `wrong_rate` parameterizes wUED (the paper uses pe = 0.02 against a
/// true 0.006).
std::vector<sim::MisreadMatrix> kmer_error_matrices(
    ErrorDistKind kind, int k, const sim::ErrorModel& true_model,
    double wrong_rate = 0.02);

}  // namespace ngs::redeem
