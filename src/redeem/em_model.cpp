#include "redeem/em_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "seq/kmer.hpp"

namespace ngs::redeem {

RedeemModel::RedeemModel(const kspec::KSpectrum& spectrum,
                         const std::vector<sim::MisreadMatrix>& q,
                         RedeemParams params)
    : spectrum_(&spectrum),
      k_(spectrum.k()),
      params_(params),
      graph_(spectrum, params.dmax) {
  if (q.size() != static_cast<std::size_t>(k_)) {
    throw std::invalid_argument("RedeemModel: q must have k matrices");
  }
  const std::size_t n = spectrum.size();

  // CSR offsets mirroring the graph, with per-edge misread weights in
  // both directions, then row normalization over {self} u N(l).
  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + graph_.neighbors(i).size();
  }
  w_in_.resize(offsets_[n]);
  w_out_.resize(offsets_[n]);
  self_.resize(n);

  for (std::size_t l = 0; l < n; ++l) {
    const seq::KmerCode xl = spectrum.code_at(l);
    self_[l] = sim::kmer_misread_prob(q, xl, xl, k_);
    const auto nbrs = graph_.neighbors(l);
    double row = self_[l];
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const seq::KmerCode xm = spectrum.code_at(nbrs[e]);
      w_in_[offsets_[l] + e] = sim::kmer_misread_prob(q, xm, xl, k_);
      w_out_[offsets_[l] + e] = sim::kmer_misread_prob(q, xl, xm, k_);
      row += w_out_[offsets_[l] + e];
    }
    // Normalize the *outgoing* row of l (where can reads of x_l land).
    if (row > 0.0) {
      self_[l] /= row;
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        w_out_[offsets_[l] + e] /= row;
      }
    }
  }
  // w_in must be consistent with the normalized w_out of the neighbor:
  // pe(x_m -> x_l) normalized by m's row. Recompute w_in from the
  // neighbor's normalized outgoing weights.
  for (std::size_t l = 0; l < n; ++l) {
    const auto nbrs = graph_.neighbors(l);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const std::size_t m = nbrs[e];
      // Find l in m's adjacency to fetch its normalized out-weight.
      const auto mn = graph_.neighbors(m);
      double w = 0.0;
      for (std::size_t f = 0; f < mn.size(); ++f) {
        if (mn[f] == l) {
          w = w_out_[offsets_[m] + f];
          break;
        }
      }
      w_in_[offsets_[l] + e] = w;
    }
  }

  run_em();
}

std::vector<double> RedeemModel::observed() const {
  std::vector<double> y(spectrum_->size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<double>(spectrum_->count_at(i));
  }
  return y;
}

void RedeemModel::run_em() {
  const std::size_t n = spectrum_->size();
  t_ = observed();
  std::vector<double> denom(n, 0.0);
  std::vector<double> t_next(n, 0.0);

  double prev_loglik = -std::numeric_limits<double>::infinity();
  for (iterations_ = 0; iterations_ < params_.max_iterations; ++iterations_) {
    // Denominators D_m = T_m self_m + sum_{l in N(m)} T_l pe(x_l -> x_m).
    loglik_ = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      double d = t_[m] * self_[m];
      const auto nbrs = graph_.neighbors(m);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        d += t_[nbrs[e]] * w_in_[offsets_[m] + e];
      }
      denom[m] = d;
      if (d > 0.0) {
        loglik_ += static_cast<double>(spectrum_->count_at(m)) * std::log(d);
      }
    }

    // Combined E+M: T_l <- sum over destinations m of
    //   Y_m * T_l pe(x_l -> x_m) / D_m.
    for (std::size_t l = 0; l < n; ++l) {
      double acc = 0.0;
      if (denom[l] > 0.0) {
        acc += static_cast<double>(spectrum_->count_at(l)) * self_[l] /
               denom[l];
      }
      const auto nbrs = graph_.neighbors(l);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const std::size_t m = nbrs[e];
        if (denom[m] > 0.0) {
          acc += static_cast<double>(spectrum_->count_at(m)) *
                 w_out_[offsets_[l] + e] / denom[m];
        }
      }
      t_next[l] = t_[l] * acc;
    }
    t_.swap(t_next);

    if (iterations_ > 0 &&
        std::abs(loglik_ - prev_loglik) <=
            params_.tolerance * (std::abs(prev_loglik) + 1.0)) {
      ++iterations_;
      break;
    }
    prev_loglik = loglik_;
  }
}

std::array<double, 4> RedeemModel::base_posterior(std::size_t l,
                                                  int t) const {
  std::array<double, 4> pi{};
  const seq::KmerCode xl = spectrum_->code_at(l);
  pi[seq::kmer_base(xl, k_, t)] += t_[l] * self_[l];
  const auto nbrs = graph_.neighbors(l);
  for (std::size_t e = 0; e < nbrs.size(); ++e) {
    const std::size_t m = nbrs[e];
    const seq::KmerCode xm = spectrum_->code_at(m);
    pi[seq::kmer_base(xm, k_, t)] += t_[m] * w_in_[offsets_[l] + e];
  }
  double total = pi[0] + pi[1] + pi[2] + pi[3];
  if (total > 0.0) {
    for (auto& v : pi) v /= total;
  }
  return pi;
}

void RedeemModel::accumulate_posteriors(
    std::size_t l, std::vector<std::array<double, 4>>& acc,
    std::size_t offset) const {
  const seq::KmerCode xl = spectrum_->code_at(l);
  const auto nbrs = graph_.neighbors(l);
  // Total weight for normalization.
  double total = t_[l] * self_[l];
  for (std::size_t e = 0; e < nbrs.size(); ++e) {
    total += t_[nbrs[e]] * w_in_[offsets_[l] + e];
  }
  if (total <= 0.0) return;
  const double w_self = t_[l] * self_[l] / total;
  for (int t = 0; t < k_; ++t) {
    acc[offset + static_cast<std::size_t>(t)]
       [seq::kmer_base(xl, k_, t)] += w_self;
  }
  for (std::size_t e = 0; e < nbrs.size(); ++e) {
    const std::size_t m = nbrs[e];
    const double w = t_[m] * w_in_[offsets_[l] + e] / total;
    if (w <= 0.0) continue;
    const seq::KmerCode xm = spectrum_->code_at(m);
    for (int t = 0; t < k_; ++t) {
      acc[offset + static_cast<std::size_t>(t)]
         [seq::kmer_base(xm, k_, t)] += w;
    }
  }
}

}  // namespace ngs::redeem
