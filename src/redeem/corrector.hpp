#pragma once
// REDEEM error correction (Sec. 3.3): for reads likely to contain an
// erroneous kmer (flagged with a liberal threshold on the estimated
// attempts T), every position aggregates the posterior true-base
// distribution pi(b) across the kmers covering it; a position whose
// argmax differs from the read base is corrected.

#include <cstdint>
#include <vector>

#include "redeem/em_model.hpp"
#include "seq/read.hpp"

namespace ngs::redeem {

struct RedeemCorrectorParams {
  /// A read is inspected iff it contains a kmer with T below this.
  double flag_threshold = 0.0;  // 0 = auto: half the mean T of valid-looking kmers
  /// Minimum posterior margin: correct only if pi(best) >= margin * pi(current).
  double posterior_margin = 1.2;
};

struct RedeemCorrectionStats {
  std::uint64_t reads_flagged = 0;
  std::uint64_t bases_changed = 0;
};

class RedeemCorrector {
 public:
  RedeemCorrector(const RedeemModel& model, RedeemCorrectorParams params);

  seq::Read correct(const seq::Read& read, RedeemCorrectionStats& stats) const;

  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     RedeemCorrectionStats& stats) const;

  double flag_threshold() const noexcept { return flag_threshold_; }

 private:
  const RedeemModel* model_;
  RedeemCorrectorParams params_;
  double flag_threshold_;
};

}  // namespace ngs::redeem
