#pragma once
// Two-pass streaming batched correction, the production data path the
// ROADMAP's "fast as the hardware allows / huge inputs" goal asks for
// (cf. BFC and RECKONER, which stream reads in bounded memory instead of
// materializing whole FASTQ files):
//
//   pass 1 — batches from an io::FastqStreamReader feed a
//            kspec::ChunkedSpectrumBuilder (spectrum-based methods:
//            SAP, HiTEC, REDEEM — peak read buffering stays O(batch))
//            or are buffered into a ReadSet (methods needing the full
//            input: Reptile's tile table, SHREC, FreClu, hybrid);
//   pass 2 — batches are corrected in parallel and written to the
//            output FASTQ in input order.
//
// With io_overlap (the default) both passes run on an overlapped
// streaming plan instead of the stop-and-go read → compute → write
// loop: pass 1 parses on a dedicated reader thread while the main
// thread ingests into the spectrum builder, and pass 2 runs on a
// util::PipelineExecutor (reader thread → bounded queue → dynamic
// workers → order-restoring writer). Stage telemetry (stall seconds,
// queue/reorder occupancy peaks, worker utilization) lands in
// PipelineResult and the report extras. io_overlap=false reproduces the
// serial loops exactly.
//
// Output is byte-identical to the in-memory Corrector::correct_all path
// for every method, at every thread count and queue depth (reads are
// corrected independently within a batch, the executor restores input
// order before writing, and whole-set methods fall back to their native
// pass).

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/corrector.hpp"
#include "io/fastq_stream.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::core {

struct PipelineOptions {
  /// Reads per correction batch (and per streamed pass-1 parse batch).
  std::size_t batch_size = 4096;
  /// Worker threads for batch correction; 0 = the shared default pool.
  /// Whole-set methods parallelize internally on the default pool.
  std::size_t threads = 0;
  /// Worker threads for the pass-1 radix-partitioned spectrum build
  /// (batch sorts + run merges); 0 = share the correction pool.
  std::size_t spectrum_threads = 0;
  /// Kmer instances buffered per ChunkedSpectrumBuilder batch in pass 1.
  std::size_t spectrum_batch_instances = 1 << 20;
  /// Overlap file I/O with compute (ngs-correct --io-overlap): a
  /// dedicated reader thread double-buffers FASTQ batches ahead of the
  /// spectrum build in pass 1 and ahead of the correction workers in
  /// pass 2, and a dedicated in-order writer drains pass 2 — so parsing,
  /// correcting, and writing proceed concurrently instead of taking
  /// turns. Output is byte-identical either way; false reproduces the
  /// serial stop-and-go loops exactly (and zeroes the overlap
  /// telemetry).
  bool io_overlap = true;
  /// Bounded read-ahead of the overlapped paths (ngs-correct
  /// --queue-depth): how many parsed batches the reader may run ahead
  /// of compute. Total in-flight batches in pass 2 stay under
  /// queue_depth + 2*workers + 1 (the executor's documented cap), so
  /// memory remains O(batch_size x small constant).
  std::size_t queue_depth = 4;
  /// Path of a persisted spectrum index (ngs::index) to mmap instead of
  /// building pass 1 from the reads; empty = build fresh. Only valid
  /// for streaming methods (Corrector::spectrum_k() > 0) and only when
  /// the index's k / strand convention match the corrector; the input
  /// summary (reads/bases/max read length) comes from the index header,
  /// so output is byte-identical to a fresh run over the same reads.
  std::string load_index_path;
  /// When non-empty, persist the freshly built pass-1 spectrum (plus
  /// input provenance) to this path for future --load-index runs.
  /// Streaming methods only; ignored when load_index_path is set (there
  /// is nothing new to save). A budget-constrained build that spilled
  /// into multiple prefix bins is saved in the sharded version-2 format;
  /// otherwise the monolithic version-1 bytes are unchanged.
  std::string save_index_path;
  /// Bound (bytes) on the pass-1 spectrum build's own tracked memory
  /// (kspec::SpillOptions::memory_budget_bytes): when the k-spectrum
  /// exceeds it, instances spill to per-prefix disk bins and pass 2
  /// queries the spectrum shard-by-shard through a sharded index file
  /// instead of one in-memory array. 0 = unlimited (the default
  /// in-memory build). Streaming methods only. Corrected output is
  /// byte-identical to an unconstrained run.
  std::size_t memory_budget_bytes = 0;
  /// Directory for spill bins and the transient sharded index of a
  /// budget-constrained run; "" = the system temp directory.
  std::string spill_dir;
  /// Malformed-FASTQ policy (ngs-correct --on-bad-record). kFail aborts
  /// with a located parse error; kSkip counts and drops bad records
  /// (reported as reads_skipped) and keeps going — both passes apply
  /// the same policy, so the streamed spectrum and the corrected output
  /// see the same records.
  io::BadRecordPolicy on_bad_record = io::BadRecordPolicy::kFail;
  /// Bounded retry for transient input-open failures (see
  /// fault::with_retry): total attempts and initial backoff, doubling
  /// per retry. Retries performed are reported as io_retries.
  int io_retry_attempts = 3;
  int io_retry_backoff_ms = 5;
};

/// Stage telemetry of one overlapped pass (all zero when the pass ran
/// serially): where the wall time went and how full the buffers got.
/// "Stall" is time a stage spent blocked on its neighbors — reader
/// stalls mean compute is the bottleneck; worker/writer stalls mean
/// input I/O is.
struct OverlapStageStats {
  /// Batches that flowed through the stage pipeline.
  std::size_t items = 0;
  /// Input-queue occupancy high-water mark (<= queue_depth).
  std::size_t queue_peak = 0;
  /// Reorder-buffer high-water mark (pass 2 only).
  std::size_t reorder_peak = 0;
  /// Worker threads the pass ran with (1 for pass 1's single ingester).
  std::size_t workers = 0;
  double reader_busy_seconds = 0.0;
  double reader_stall_seconds = 0.0;
  double worker_stall_seconds = 0.0;
  double writer_busy_seconds = 0.0;
  double writer_stall_seconds = 0.0;
  /// Wall time of the whole overlapped pass.
  double elapsed_seconds = 0.0;
};

struct PipelineResult {
  CorrectionReport report;
  InputSummary input;
  /// Number of output batches written.
  std::size_t batches = 0;
  /// Largest number of reads resident in the pipeline's own buffers at
  /// any point: <= batch_size on the serial streamed path, <=
  /// batch_size * (queue_depth + 2*workers + 1) on the overlapped
  /// streamed path, the whole input on the buffered path.
  std::size_t peak_buffered_reads = 0;
  /// util::peak_rss_bytes() sampled at completion (process-wide telemetry).
  std::uint64_t peak_rss_bytes = 0;
  /// True when phase 1 ran from the streamed spectrum.
  bool streamed = false;
  /// True when the run used the overlapped executor (io_overlap on and
  /// the method supports batches).
  bool overlapped = false;
  /// True when phase 1 was skipped entirely in favor of a loaded
  /// spectrum index (report extras then carry index_path/index_checksum
  /// /pass1_skipped provenance).
  bool pass1_skipped = false;
  /// Per-stage telemetry of the overlapped passes (zero when serial;
  /// pass1_overlap only on the streamed-spectrum path).
  OverlapStageStats pass1_overlap;
  OverlapStageStats pass2_overlap;
  /// Wall time of phase 2. Serial paths: batch correction only
  /// (excludes reading and writing). Overlapped pass 2: the whole
  /// read+correct+write pipeline, since the stages run concurrently.
  /// report.extra("pass2_reads_per_sec") derives from it.
  double pass2_seconds = 0.0;
  /// Malformed records dropped across all passes under
  /// BadRecordPolicy::kSkip (also report extra "reads_skipped").
  std::uint64_t reads_skipped = 0;
  /// Reads whose correction threw and were passed through uncorrected
  /// by the per-read salvage path (also report extra "reads_failed").
  std::uint64_t reads_failed = 0;
  /// Transient input-open failures absorbed by the bounded retry (also
  /// report extra "io_retries").
  std::uint64_t io_retries = 0;
  /// True when the pass-1 build exceeded memory_budget_bytes and went
  /// through the spill path.
  bool spectrum_spilled = false;
  /// Shards in the sharded index pass 2 queried (0 when not spilled or
  /// when a single bin collapsed back to a monolithic spectrum).
  std::size_t spectrum_shards = 0;
  /// Bytes written to the spill bins during pass 1.
  std::uint64_t spectrum_spilled_bytes = 0;
  /// The spectrum builder's own peak memory accounting
  /// (ChunkedSpectrumBuilder::peak_tracked_bytes; 0 without a budget).
  std::uint64_t spectrum_peak_tracked_bytes = 0;
};

class CorrectionPipeline {
 public:
  /// Reopenable input source: called once per pass (twice on the
  /// streamed path), returning a fresh stream over the same bytes.
  using StreamFactory = std::function<std::unique_ptr<std::istream>()>;

  explicit CorrectionPipeline(std::unique_ptr<Corrector> corrector,
                              PipelineOptions options = {});
  ~CorrectionPipeline();

  const Corrector& corrector() const noexcept { return *corrector_; }
  const PipelineOptions& options() const noexcept { return options_; }

  /// Corrects in_fastq into out_fastq. The output is written to a
  /// sibling temp file and atomically renamed into place on success
  /// (mirroring the index writer), so an interrupted or failed run
  /// never leaves a truncated corrected FASTQ behind.
  PipelineResult run_file(const std::string& in_fastq,
                          const std::string& out_fastq);

  /// Stream-level entry point (tests, in-memory sources).
  PipelineResult run(const StreamFactory& open_input, std::ostream& out);

 private:
  void correct_batch_parallel(util::ThreadPool& pool,
                              std::span<const seq::Read> in,
                              std::vector<seq::Read>& out,
                              CorrectionReport& report);

  /// Corrects one contiguous span with the batch-then-salvage ladder
  /// (kPass2Batch / kPass2Read degradation): appends exactly in.size()
  /// reads to `out`, tallying into the caller-local report. Shared by
  /// the pool blocks of correct_batch_parallel and the executor workers
  /// of the overlapped pass 2.
  void correct_span(std::span<const seq::Read> in,
                    std::vector<seq::Read>& out, CorrectionReport& local,
                    BatchScratch* scratch);

  /// Per-worker scratch slots (created on demand via
  /// corrector_->make_scratch()). Lock-free in steady state: slot i is
  /// an atomic pointer a worker exchanges out on acquire and back in on
  /// release, with `hint` (the worker's index) making re-acquisition of
  /// the same warm scratch the common O(1) case. Replaces the old
  /// mutex-guarded pool — the overlapped executor checks scratch in and
  /// out per item, so the lock would sit on the hot path.
  std::unique_ptr<BatchScratch> acquire_scratch(std::size_t hint);
  void release_scratch(std::unique_ptr<BatchScratch> scratch,
                       std::size_t hint);
  /// Grows the slot array to at least `n` entries. Call only from the
  /// run() thread while no workers are active.
  void ensure_scratch_slots(std::size_t n);

  std::unique_ptr<Corrector> corrector_;
  PipelineOptions options_;
  std::unique_ptr<std::atomic<BatchScratch*>[]> scratch_slots_;
  std::size_t scratch_slot_count_ = 0;
};

}  // namespace ngs::core
