// Adapters binding the seven concrete correction methods to the unified
// core::Corrector interface, and their registration with the factory.
// Spectrum-based methods (SAP, HiTEC, REDEEM) advertise spectrum_k() so
// the CorrectionPipeline can build them from a ChunkedSpectrumBuilder
// stream in bounded memory; Reptile builds per-read but needs the
// buffered reads for its tile table and parameter selection; SHREC,
// FreClu, and the hybrid are whole-set algorithms.

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "baselines/freclu.hpp"
#include "baselines/hitec.hpp"
#include "baselines/sap.hpp"
#include "core/registry.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/hybrid.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"

namespace ngs::core {
namespace {

/// The misread model for REDEEM-based methods: the exact simulator model
/// when the caller has it, otherwise the default Illumina profile at the
/// configured average rate, sized to the longest read seen.
sim::ErrorModel misread_model(const CorrectorConfig& config,
                              std::size_t max_read_length, int k) {
  if (config.error_model) return *config.error_model;
  const std::size_t len = std::max(max_read_length, static_cast<std::size_t>(k));
  return sim::ErrorModel::illumina(len, config.error_rate);
}

InputSummary summarize(const seq::ReadSet& reads) {
  InputSummary summary;
  for (const auto& r : reads.reads) summary.add(r);
  return summary;
}

/// Per-worker scratch for the Reptile adapter: the corrector's option /
/// candidate / sweep buffers, reused across every batch a worker runs.
struct ReptileScratch final : BatchScratch {
  reptile::ReptileCorrector::Scratch scratch;
};

class ReptileAdapter final : public Corrector {
 public:
  explicit ReptileAdapter(const CorrectorConfig& config) : config_(config) {}

  std::string_view method() const noexcept override { return "reptile"; }

  void build(const seq::ReadSet& reads) override {
    auto params = reptile::select_parameters(reads, config_.genome_length);
    if (config_.k > 0) params.k = config_.k;
    corrector_.emplace(reads, params);
    // One concurrent tile-decision memo shared by every correction
    // worker: at coverage c each erroneous tile is decided once and
    // reused ~c times. Decisions are pure functions of the tile code, so
    // sharing across threads cannot change output.
    if (config_.tile_cache_mb > 0 && corrector_->cacheable()) {
      cache_ = std::make_unique<reptile::TileDecisionCache>(
          config_.tile_cache_mb << 20);
    }
    mark_ready();
  }

  std::unique_ptr<BatchScratch> make_scratch() const override {
    return std::make_unique<ReptileScratch>();
  }

  void correct_batch(std::span<const seq::Read> in,
                     std::vector<seq::Read>& out, CorrectionReport& report,
                     BatchScratch* scratch) const override {
    require_ready();
    ReptileScratch local_scratch;
    auto* rs = dynamic_cast<ReptileScratch*>(scratch);
    if (rs == nullptr) rs = &local_scratch;
    reptile::CorrectionStats stats;
    for (const auto& read : in) {
      auto corrected =
          corrector_->correct(read, stats, rs->scratch, cache_.get());
      tally_read(read, corrected, report);
      out.push_back(std::move(corrected));
    }
    report.bump("tiles_valid", stats.tiles_valid);
    report.bump("tiles_corrected", stats.tiles_corrected);
    report.bump("tiles_insufficient", stats.tiles_insufficient);
    report.bump("ambiguous_converted", stats.ambiguous_converted);
  }

  void annotate_report(CorrectionReport& report) const override {
    if (!cache_) return;
    const auto stats = cache_->stats();
    report.bump("tile_cache_hits", stats.hits);
    report.bump("tile_cache_misses", stats.misses);
    report.bump("tile_cache_evictions", stats.evictions);
  }

 private:
  CorrectorConfig config_;
  std::optional<reptile::ReptileCorrector> corrector_;
  /// Thread-safe (lock-striped); mutated during const correct_batch.
  std::unique_ptr<reptile::TileDecisionCache> cache_;
};

class SapAdapter final : public Corrector {
 public:
  explicit SapAdapter(const CorrectorConfig& config) {
    if (config.k > 0) params_.k = config.k;
  }

  std::string_view method() const noexcept override { return "sap"; }
  int spectrum_k() const noexcept override { return params_.k; }
  bool spectrum_both_strands() const noexcept override {
    return params_.both_strands;
  }

  void build(const seq::ReadSet& reads) override {
    corrector_.emplace(reads, params_);
    mark_ready();
  }

  void build_from_spectrum(kspec::KSpectrum spectrum,
                           const InputSummary& /*input*/) override {
    corrector_.emplace(std::move(spectrum), params_);
    mark_ready();
  }

  void correct_batch(std::span<const seq::Read> in,
                     std::vector<seq::Read>& out, CorrectionReport& report,
                     BatchScratch* /*scratch*/) const override {
    require_ready();
    baselines::SapStats stats;
    for (const auto& read : in) {
      auto corrected = corrector_->correct(read, stats);
      tally_read(read, corrected, report);
      out.push_back(std::move(corrected));
    }
    report.bump("reads_clean", stats.reads_clean);
    report.bump("reads_fixed", stats.reads_fixed);
    report.bump("reads_unfixable", stats.reads_unfixable);
  }

 private:
  baselines::SapParams params_;
  std::optional<baselines::SapCorrector> corrector_;
};

class HitecAdapter final : public Corrector {
 public:
  explicit HitecAdapter(const CorrectorConfig& config) {
    if (config.k > 0) params_.k = config.k;
  }

  std::string_view method() const noexcept override { return "hitec"; }
  int spectrum_k() const noexcept override { return params_.k + 1; }

  void build(const seq::ReadSet& reads) override {
    corrector_.emplace(reads, params_);
    mark_ready();
  }

  void build_from_spectrum(kspec::KSpectrum spectrum,
                           const InputSummary& /*input*/) override {
    corrector_.emplace(std::move(spectrum), params_);
    mark_ready();
  }

  void correct_batch(std::span<const seq::Read> in,
                     std::vector<seq::Read>& out, CorrectionReport& report,
                     BatchScratch* /*scratch*/) const override {
    require_ready();
    baselines::HitecStats stats;
    for (const auto& read : in) {
      auto corrected = corrector_->correct(read, stats);
      tally_read(read, corrected, report);
      out.push_back(std::move(corrected));
    }
    report.bump("corrections", stats.corrections);
    report.bump("ambiguous_sites", stats.ambiguous_sites);
  }

 private:
  baselines::HitecParams params_;
  std::optional<baselines::HitecCorrector> corrector_;
};

class RedeemAdapter final : public Corrector {
 public:
  explicit RedeemAdapter(const CorrectorConfig& config)
      : config_(config), k_(config.k > 0 ? config.k : 11) {}

  std::string_view method() const noexcept override { return "redeem"; }
  int spectrum_k() const noexcept override { return k_; }
  bool spectrum_both_strands() const noexcept override { return false; }

  void build(const seq::ReadSet& reads) override {
    init(kspec::KSpectrum::build(reads, k_, /*both_strands=*/false),
         summarize(reads));
  }

  void build_from_spectrum(kspec::KSpectrum spectrum,
                           const InputSummary& input) override {
    init(std::move(spectrum), input);
  }

  void correct_batch(std::span<const seq::Read> in,
                     std::vector<seq::Read>& out, CorrectionReport& report,
                     BatchScratch* /*scratch*/) const override {
    require_ready();
    redeem::RedeemCorrectionStats stats;
    for (const auto& read : in) {
      auto corrected = corrector_->correct(read, stats);
      tally_read(read, corrected, report);
      out.push_back(std::move(corrected));
    }
    report.bump("reads_flagged", stats.reads_flagged);
  }

 private:
  void init(kspec::KSpectrum spectrum, const InputSummary& input) {
    const auto model = misread_model(config_, input.max_read_length, k_);
    spectrum_ = std::move(spectrum);
    q_ = redeem::kmer_error_matrices(redeem::ErrorDistKind::kTrueIllumina, k_,
                                     model);
    model_.emplace(spectrum_, q_, redeem::RedeemParams{});
    corrector_.emplace(*model_, redeem::RedeemCorrectorParams{});
    mark_ready();
  }

  CorrectorConfig config_;
  int k_;
  kspec::KSpectrum spectrum_;  // owned here: RedeemModel keeps a pointer
  std::vector<sim::MisreadMatrix> q_;
  std::optional<redeem::RedeemModel> model_;
  std::optional<redeem::RedeemCorrector> corrector_;
};

class ShrecAdapter final : public Corrector {
 public:
  explicit ShrecAdapter(const CorrectorConfig& config) {
    params_.genome_length = config.genome_length;
  }

  std::string_view method() const noexcept override { return "shrec"; }
  bool supports_batches() const noexcept override { return false; }

  void build(const seq::ReadSet& /*reads*/) override {
    // SHREC rebuilds its level statistics from the working reads every
    // iteration; there is no separable index.
    mark_ready();
  }

  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     CorrectionReport& report) const override {
    require_ready();
    shrec::ShrecCorrector corrector(params_);
    shrec::ShrecStats stats;
    auto out = corrector.correct_all(reads, stats);
    for (std::size_t i = 0; i < out.size(); ++i) {
      tally_read(reads.reads[i], out[i], report);
    }
    report.bump("flagged_positions", stats.flagged_positions);
    report.bump("corrections_applied", stats.corrections_applied);
    report.bump("conflicting_votes", stats.conflicting_votes);
    return out;
  }

 private:
  shrec::ShrecParams params_;
};

class FrecluAdapter final : public Corrector {
 public:
  explicit FrecluAdapter(const CorrectorConfig& /*config*/) {}

  std::string_view method() const noexcept override { return "freclu"; }
  bool supports_batches() const noexcept override { return false; }

  void build(const seq::ReadSet& /*reads*/) override { mark_ready(); }

  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     CorrectionReport& report) const override {
    require_ready();
    baselines::FrecluCorrector corrector(params_);
    baselines::FrecluStats stats;
    auto out = corrector.correct_all(reads, stats);
    for (std::size_t i = 0; i < out.size(); ++i) {
      tally_read(reads.reads[i], out[i], report);
    }
    report.bump("distinct_sequences", stats.distinct_sequences);
    report.bump("trees", stats.trees);
    report.bump("reads_corrected", stats.reads_corrected);
    return out;
  }

 private:
  baselines::FrecluParams params_;
};

class HybridAdapter final : public Corrector {
 public:
  explicit HybridAdapter(const CorrectorConfig& config) : config_(config) {}

  std::string_view method() const noexcept override { return "hybrid"; }
  bool supports_batches() const noexcept override { return false; }

  void build(const seq::ReadSet& /*reads*/) override {
    // Both stages derive their tables from the reads handed to
    // correct_all (stage 2 rebuilds Reptile from stage-1 output).
    mark_ready();
  }

  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     CorrectionReport& report) const override {
    require_ready();
    redeem::HybridParams params;
    params.reptile =
        reptile::select_parameters(reads, config_.genome_length);
    if (config_.k > 0) params.reptile.k = config_.k;
    const auto model =
        misread_model(config_, summarize(reads).max_read_length,
                      params.redeem_k);
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, params.redeem_k, model);
    redeem::HybridCorrector corrector(q, params);
    redeem::HybridStats stats;
    auto out = corrector.correct_all(reads, stats);
    for (std::size_t i = 0; i < out.size(); ++i) {
      tally_read(reads.reads[i], out[i], report);
    }
    report.bump("reads_flagged", stats.redeem.reads_flagged);
    report.bump("redeem_bases_changed", stats.redeem.bases_changed);
    report.bump("reptile_bases_changed", stats.reptile.bases_changed);
    report.bump("tiles_corrected", stats.reptile.tiles_corrected);
    return out;
  }

 private:
  CorrectorConfig config_;
};

template <typename AdapterT>
void register_builtin(const char* name, const char* description,
                      bool streaming) {
  register_corrector(
      MethodInfo{name, description, streaming},
      [](const CorrectorConfig& config) -> std::unique_ptr<Corrector> {
        return std::make_unique<AdapterT>(config);
      });
}

}  // namespace

namespace detail {

void register_builtins() {
  register_builtin<ReptileAdapter>(
      "reptile", "Reptile tile-voting k-spectrum corrector (Ch. 2)", false);
  register_builtin<ShrecAdapter>(
      "shrec", "SHREC suffix-statistic corrector (whole-set)", false);
  register_builtin<SapAdapter>(
      "sap", "spectrum-alignment greedy solid-kmer corrector", true);
  register_builtin<HitecAdapter>(
      "hitec", "HiTEC witness-extension corrector", true);
  register_builtin<FrecluAdapter>(
      "freclu", "FreClu frequency-hierarchy whole-read corrector", false);
  register_builtin<RedeemAdapter>(
      "redeem", "REDEEM EM posterior corrector (Ch. 3)", true);
  register_builtin<HybridAdapter>(
      "hybrid", "REDEEM->Reptile two-stage hybrid (Sec. 3.5)", false);
}

}  // namespace detail
}  // namespace ngs::core
