#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>

#include <sstream>

#include "fault/fault.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastx.hpp"
#include "kspec/chunked_builder.hpp"
#include "util/atomic_file.hpp"
#include "util/bounded_queue.hpp"
#include "util/memory.hpp"
#include "util/pipeline_executor.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ngs::core {

namespace {

std::string checksum_hex(std::uint64_t checksum) {
  std::ostringstream os;
  os << "0x" << std::hex << checksum;
  return os.str();
}

/// Unique sibling name for the transient sharded index of a budget run
/// that is not also saving an index (removed when the run ends).
std::string transient_index_path(const std::string& dir) {
  static std::atomic<unsigned long> seq{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return dir + "/ngs_spectrum_" + std::to_string(pid) + "_" +
         std::to_string(seq.fetch_add(1)) + ".ngsx";
}

/// Removes a transient file when the run leaves scope (success or
/// unwind). Deferred to scope exit rather than unlinked eagerly so the
/// non-POSIX sharded view — which reopens the file per shard — keeps
/// working through pass 2.
struct FileRemover {
  std::string path;
  ~FileRemover() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

/// One unit of the overlapped pass 2: a batch of reads flowing
/// reader → workers → writer through the PipelineExecutor. `in` views
/// either `owned` (streamed path) or the buffered ReadSet; moving a
/// chunk moves the vectors, which keeps their heap buffers — and
/// therefore the span — valid.
struct Pass2Chunk {
  std::vector<seq::Read> owned;
  std::span<const seq::Read> in;
  std::vector<seq::Read> out;
};

}  // namespace

CorrectionPipeline::CorrectionPipeline(std::unique_ptr<Corrector> corrector,
                                       PipelineOptions options)
    : corrector_(std::move(corrector)), options_(options) {
  if (!corrector_) {
    throw std::invalid_argument("CorrectionPipeline: null corrector");
  }
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
}

CorrectionPipeline::~CorrectionPipeline() {
  for (std::size_t i = 0; i < scratch_slot_count_; ++i) {
    delete scratch_slots_[i].load(std::memory_order_relaxed);
  }
}

PipelineResult CorrectionPipeline::run_file(const std::string& in_fastq,
                                            const std::string& out_fastq) {
  // Atomic output via the shared util::AtomicFile protocol (the same
  // one the index writers use): correct into a uniquely named sibling
  // temp file and rename over the target only on success, so a failed
  // or interrupted run never leaves a truncated corrected FASTQ where
  // downstream tooling expects a complete one.
  util::AtomicFileOptions atomic_options;
  atomic_options.error_site = fault::sites::kOutputWrite;
  util::AtomicFile out_file(out_fastq, atomic_options);
  PipelineResult result;
  {
    std::ofstream os(out_file.temp_path());
    if (!os) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "cannot open for writing: " + out_file.temp_path());
    }
    result = run(
        [&in_fastq]() -> std::unique_ptr<std::istream> {
          return io::open_input_stream(in_fastq);
        },
        os);
    os.close();
    if (!os) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "error finalizing output: " + out_file.temp_path());
    }
  }
  out_file.commit();  // throws kIo and removes the temp on failure
  return result;
}

PipelineResult CorrectionPipeline::run(const StreamFactory& open_input,
                                       std::ostream& out) {
  PipelineResult result;
  std::optional<util::ThreadPool> own_pool;
  if (options_.threads > 0) own_pool.emplace(options_.threads);
  util::ThreadPool& pool = own_pool ? *own_pool : util::default_pool();
  const std::size_t batch_size = options_.batch_size;
  const bool overlap = options_.io_overlap;
  const std::size_t exec_workers = pool.size();
  // One slot per concurrent corrector plus one for inline callers.
  ensure_scratch_slots(exec_workers + 1);

  // Transient input-open failures are absorbed by a bounded
  // exponential-backoff retry; the count is surfaced as io_retries.
  const fault::RetryPolicy retry_policy{
      std::max(1, options_.io_retry_attempts),
      std::max(0, options_.io_retry_backoff_ms)};
  const auto open_with_retry = [&]() {
    return fault::with_retry(
        retry_policy,
        [&]() -> std::unique_ptr<std::istream> {
          // The transient site models an open that succeeds on retry
          // (NFS hiccup, fd-limit race) and is absorbed by the budget;
          // the hard open site models a missing/unreadable input.
          fault::maybe_fail(fault::sites::kOpenInputTransient,
                            ErrorKind::kIo, "cannot open input",
                            /*transient=*/true);
          fault::maybe_fail(fault::sites::kFastqOpen, ErrorKind::kIo,
                            "cannot open input");
          return open_input();
        },
        &result.io_retries);
  };
  // One batch-write primitive for every path below: injectable, and any
  // stream failure is a typed I/O error instead of a silent bad() bit.
  const auto write_batch = [&out](std::span<const seq::Read> reads) {
    fault::maybe_fail(fault::sites::kOutputWrite, ErrorKind::kIo,
                      "error writing corrected output");
    io::write_fastq(out, reads);
    if (!out) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "error writing corrected output batch");
    }
  };

  // Reads resident in the overlapped stages' own buffers (queued +
  // in-correction + awaiting the in-order writer), for the
  // peak_buffered_reads bound.
  std::atomic<std::size_t> in_flight_reads{0};
  std::atomic<std::size_t> in_flight_peak{0};
  const auto in_flight_add = [&](std::size_t n) {
    const std::size_t now =
        in_flight_reads.fetch_add(n, std::memory_order_relaxed) + n;
    std::size_t peak = in_flight_peak.load(std::memory_order_relaxed);
    while (now > peak && !in_flight_peak.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  };

  // Overlapped pass 2: reader thread → bounded queue → dynamic workers
  // → order-restoring writer (this thread), on util::PipelineExecutor.
  // `fill` produces the next chunk (serially, on the reader thread);
  // spent chunks are recycled so steady state allocates nothing.
  std::vector<Pass2Chunk> chunk_recycle;
  std::mutex recycle_mutex;
  const auto run_pass2_overlapped =
      [&](const std::function<bool(Pass2Chunk&)>& fill) {
        util::PipelineExecutorOptions exec_options;
        exec_options.workers = exec_workers;
        exec_options.queue_depth = options_.queue_depth;
        util::PipelineExecutor<Pass2Chunk> executor(exec_options);
        std::mutex report_mutex;
        const auto stats = executor.run(
            [&](Pass2Chunk& chunk) -> bool {
              fault::maybe_fail(fault::sites::kPipelineReader,
                                ErrorKind::kIo, "pass-2 read-ahead failed");
              {
                std::lock_guard<std::mutex> lock(recycle_mutex);
                if (!chunk_recycle.empty()) {
                  chunk = std::move(chunk_recycle.back());
                  chunk_recycle.pop_back();
                }
              }
              chunk.owned.clear();
              chunk.out.clear();
              chunk.in = {};
              if (!fill(chunk)) return false;
              in_flight_add(chunk.in.size());
              return true;
            },
            [&](Pass2Chunk& chunk, std::size_t worker) {
              CorrectionReport local;
              auto scratch = acquire_scratch(worker);
              chunk.out.reserve(chunk.in.size());
              correct_span(chunk.in, chunk.out, local, scratch.get());
              release_scratch(std::move(scratch), worker);
              std::lock_guard<std::mutex> lock(report_mutex);
              result.report.merge(local);
            },
            [&](Pass2Chunk&& chunk) {
              fault::maybe_fail(fault::sites::kPipelineWriter,
                                ErrorKind::kIo,
                                "pass-2 ordered write failed");
              write_batch(std::span<const seq::Read>(chunk.out));
              ++result.batches;
              in_flight_reads.fetch_sub(chunk.in.size(),
                                        std::memory_order_relaxed);
              chunk.owned.clear();
              chunk.out.clear();
              chunk.in = {};
              std::lock_guard<std::mutex> lock(recycle_mutex);
              chunk_recycle.push_back(std::move(chunk));
            });
        result.overlapped = true;
        auto& s2 = result.pass2_overlap;
        s2.items = stats.items;
        s2.queue_peak = stats.queue_peak;
        s2.reorder_peak = stats.reorder_peak;
        s2.workers = exec_workers;
        s2.reader_busy_seconds = stats.reader_busy_seconds;
        s2.reader_stall_seconds = stats.reader_stall_seconds;
        s2.worker_stall_seconds = stats.worker_stall_seconds;
        s2.writer_busy_seconds = stats.writer_busy_seconds;
        s2.writer_stall_seconds = stats.writer_stall_seconds;
        s2.elapsed_seconds = stats.elapsed_seconds;
        result.pass2_seconds += stats.elapsed_seconds;
      };

  std::vector<seq::Read> in_batch, out_batch;
  std::uint64_t index_checksum = 0;
  std::uint64_t pass1_skipped_records = 0;
  bool index_saved = false;
  // Outlives pass 2: the transient sharded index of a budget run must
  // stay on disk while the lazy view still serves shards from it.
  FileRemover temp_index;
  if (corrector_->spectrum_k() > 0) {
    result.streamed = true;
    if (!options_.load_index_path.empty()) {
      // Pass 1 replaced by the persisted index: mmap it, cross-check
      // the build parameters against the corrector, and hand over the
      // zero-copy spectrum view. The input summary comes from the index
      // header (it was recorded from the same reads at build time), so
      // downstream sizing — and therefore output — matches a fresh run.
      const auto index =
          ngs::index::SpectrumIndex::load(options_.load_index_path);
      const auto& info = index.info();
      if (info.build.k != corrector_->spectrum_k()) {
        std::ostringstream os;
        os << options_.load_index_path << ": index was built with k="
           << info.build.k << " but method '" << corrector_->method()
           << "' needs k=" << corrector_->spectrum_k();
        throw std::invalid_argument(os.str());
      }
      if (info.build.both_strands != corrector_->spectrum_both_strands()) {
        std::ostringstream os;
        os << options_.load_index_path << ": index was built "
           << (info.build.both_strands ? "with" : "without")
           << " reverse-complement strands but method '"
           << corrector_->method() << "' expects the opposite";
        throw std::invalid_argument(os.str());
      }
      result.input.reads = info.build.input_reads;
      result.input.bases = info.build.input_bases;
      result.input.max_read_length = info.build.max_read_length;
      result.pass1_skipped = true;
      index_checksum = info.checksum;
      corrector_->build_from_spectrum(index.share_spectrum(), result.input);
    } else {
      // Pass 1: stream batches into the bounded-memory spectrum builder.
      // Batch sorts and run merges run on their own pool when
      // spectrum_threads is set, otherwise on the correction pool.
      std::optional<util::ThreadPool> spectrum_pool;
      if (options_.spectrum_threads > 0) {
        spectrum_pool.emplace(options_.spectrum_threads);
      }
      kspec::SpillOptions spill;
      spill.memory_budget_bytes = options_.memory_budget_bytes;
      spill.spill_dir = options_.spill_dir;
      kspec::ChunkedSpectrumBuilder builder(
          corrector_->spectrum_k(), corrector_->spectrum_both_strands(),
          options_.spectrum_batch_instances,
          spectrum_pool ? &*spectrum_pool : &pool, spill);
      auto is = open_with_retry();
      io::FastqStreamReader reader(*is);
      reader.set_bad_record_policy(options_.on_bad_record);
      if (overlap) {
        // Overlapped ingest: a dedicated reader thread parses batches
        // ahead through a bounded queue while this thread streams them
        // into the builder — parsing and kmer extraction (including
        // batch sorts and spill writes) proceed concurrently instead of
        // taking turns. The builder itself is only ever touched from
        // this thread, so it needs no locking.
        const util::Timer pass1_timer;
        util::BoundedQueue<std::vector<seq::Read>> queue(
            options_.queue_depth);
        std::vector<std::vector<seq::Read>> batch_recycle;
        std::mutex batch_recycle_mutex;
        std::exception_ptr reader_error;
        std::thread reader_thread([&] {
          try {
            for (;;) {
              fault::maybe_fail(fault::sites::kPipelineReader,
                                ErrorKind::kIo, "pass-1 read-ahead failed");
              std::vector<seq::Read> batch;
              {
                std::lock_guard<std::mutex> lock(batch_recycle_mutex);
                if (!batch_recycle.empty()) {
                  batch = std::move(batch_recycle.back());
                  batch_recycle.pop_back();
                }
              }
              batch.clear();
              if (reader.read_batch(batch, batch_size) == 0) break;
              in_flight_add(batch.size());
              if (!queue.push(std::move(batch))) break;
            }
          } catch (...) {
            reader_error = std::current_exception();
          }
          queue.close();
        });
        std::size_t batches_ingested = 0;
        try {
          std::vector<seq::Read> batch;
          while (queue.pop(batch)) {
            builder.add_read_batch(batch);
            for (const auto& r : batch) result.input.add(r);
            in_flight_reads.fetch_sub(batch.size(),
                                      std::memory_order_relaxed);
            ++batches_ingested;
            batch.clear();
            std::lock_guard<std::mutex> lock(batch_recycle_mutex);
            batch_recycle.push_back(std::move(batch));
            batch = std::vector<seq::Read>();
          }
        } catch (...) {
          // Ingest (spill write, sort) failed: unblock a reader stuck
          // on a full queue, reap the thread, then surface the error.
          queue.abort();
          reader_thread.join();
          throw;
        }
        reader_thread.join();
        if (reader_error) std::rethrow_exception(reader_error);
        auto& s1 = result.pass1_overlap;
        s1.items = batches_ingested;
        s1.queue_peak = queue.peak_size();
        s1.workers = 1;
        s1.reader_busy_seconds = reader.parse_seconds();
        s1.reader_stall_seconds = queue.push_wait_seconds();
        s1.writer_busy_seconds = builder.ingest_seconds();
        s1.writer_stall_seconds = queue.pop_wait_seconds();
        s1.elapsed_seconds = pass1_timer.seconds();
      } else {
        while (reader.read_batch(in_batch, batch_size) > 0) {
          for (const auto& r : in_batch) {
            builder.add_read(r.bases);
            result.input.add(r);
          }
          result.peak_buffered_reads =
              std::max(result.peak_buffered_reads, in_batch.size());
          in_batch.clear();
        }
      }
      pass1_skipped_records = reader.records_skipped();
      ngs::index::IndexBuildInfo build;
      build.k = corrector_->spectrum_k();
      build.both_strands = corrector_->spectrum_both_strands();
      build.input_reads = result.input.reads;
      build.input_bases = result.input.bases;
      build.max_read_length =
          static_cast<std::uint32_t>(result.input.max_read_length);
      bool spectrum_built = false;
      if (builder.spilled()) {
        builder.flush_spill();
        result.spectrum_spilled = true;
        result.spectrum_spilled_bytes = builder.spill_bytes();
        const std::size_t bins = builder.spill_nonempty_bins();
        if (bins > 1) {
          // Out-of-core finalization: stream the sorted prefix bins
          // straight into a sharded index file — the full spectrum
          // never exists in this process — then serve pass 2 from the
          // file's lazily mapped shards. Saved when the caller asked
          // for an index; otherwise a transient file removed at scope
          // exit (see FileRemover).
          const bool keep = !options_.save_index_path.empty();
          const std::string index_path =
              keep ? options_.save_index_path
                   : transient_index_path(builder.spill_dir());
          if (!keep) temp_index.path = index_path;
          {
            ngs::index::ShardedIndexWriter writer(
                index_path, build, builder.spill_shard_bits(), bins);
            builder.finish_spilled(
                [&writer](kspec::ChunkedSpectrumBuilder::SortedRun&& run) {
                  writer.append_shard(run.prefix, std::move(run.codes),
                                      std::move(run.counts));
                });
            index_checksum = writer.finish();
          }
          index_saved = keep;
          const auto index = ngs::index::SpectrumIndex::load(index_path);
          result.spectrum_shards = index.info().shard_count;
          corrector_->build_from_spectrum(index.share_spectrum(),
                                          result.input);
          spectrum_built = true;
        }
        // A single non-empty bin falls through to finish(): the
        // concatenation path rebuilds the monolithic arrays, so the
        // save below still writes byte-identical version-1 output.
      }
      if (!spectrum_built) {
        kspec::KSpectrum spectrum = builder.finish();
        if (!options_.save_index_path.empty()) {
          index_checksum = ngs::index::write_spectrum_index(
              options_.save_index_path, spectrum, build);
          index_saved = true;
        }
        corrector_->build_from_spectrum(std::move(spectrum), result.input);
      }
      result.spectrum_peak_tracked_bytes = builder.peak_tracked_bytes();
    }
    // Pass 2: re-stream, correct batches in parallel, write in order —
    // on the overlapped executor by default, or the serial stop-and-go
    // loop with --io-overlap=off.
    auto is = open_with_retry();
    io::FastqStreamReader reader(*is);
    reader.set_bad_record_policy(options_.on_bad_record);
    if (overlap) {
      run_pass2_overlapped([&](Pass2Chunk& chunk) {
        if (reader.read_batch(chunk.owned, batch_size) == 0) return false;
        chunk.in = std::span<const seq::Read>(chunk.owned);
        return true;
      });
    } else {
      while (reader.read_batch(in_batch, batch_size) > 0) {
        result.peak_buffered_reads =
            std::max(result.peak_buffered_reads, in_batch.size());
        util::Timer pass2_timer;
        correct_batch_parallel(pool, in_batch, out_batch, result.report);
        result.pass2_seconds += pass2_timer.seconds();
        write_batch(std::span<const seq::Read>(out_batch));
        ++result.batches;
        in_batch.clear();
      }
    }
    // A genuinely malformed record is dropped by both passes, so take
    // the max rather than the sum (summing would double-count it;
    // taking only pass 2 would hide a record dropped by pass 1 alone).
    result.reads_skipped =
        std::max(pass1_skipped_records, reader.records_skipped());
  } else {
    if (!options_.load_index_path.empty() ||
        !options_.save_index_path.empty()) {
      throw std::invalid_argument(
          std::string(corrector_->method()) +
          ": phase 1 is not a pure k-spectrum, so a spectrum index cannot "
          "replace or capture it (--load-index/--save-index apply to "
          "streaming methods only)");
    }
    // Buffered path: one pass to load, then batch (or whole-set) correct.
    seq::ReadSet all;
    {
      auto is = open_with_retry();
      io::FastqStreamReader reader(*is);
      reader.set_bad_record_policy(options_.on_bad_record);
      while (reader.read_batch(all.reads, batch_size) > 0) {
      }
      result.reads_skipped = reader.records_skipped();
    }
    for (const auto& r : all.reads) result.input.add(r);
    result.peak_buffered_reads = all.reads.size();
    corrector_->build(all);
    if (corrector_->supports_batches()) {
      if (overlap) {
        // The input is already resident, but correction and output
        // writing still overlap: chunks view the buffered ReadSet, so
        // the executor adds no copies.
        std::size_t offset = 0;
        run_pass2_overlapped([&](Pass2Chunk& chunk) {
          if (offset >= all.reads.size()) return false;
          const std::size_t n =
              std::min(batch_size, all.reads.size() - offset);
          chunk.in = std::span<const seq::Read>(all.reads.data() + offset, n);
          offset += n;
          return true;
        });
      } else {
        for (std::size_t offset = 0; offset < all.reads.size();
             offset += batch_size) {
          const std::size_t n =
              std::min(batch_size, all.reads.size() - offset);
          util::Timer pass2_timer;
          correct_batch_parallel(pool, {all.reads.data() + offset, n},
                                 out_batch, result.report);
          result.pass2_seconds += pass2_timer.seconds();
          write_batch(std::span<const seq::Read>(out_batch));
          ++result.batches;
        }
      }
    } else {
      util::Timer pass2_timer;
      const auto corrected = corrector_->correct_all(all, result.report);
      result.pass2_seconds += pass2_timer.seconds();
      for (std::size_t offset = 0; offset < corrected.size();
           offset += batch_size) {
        const std::size_t n = std::min(batch_size, corrected.size() - offset);
        write_batch(
            std::span<const seq::Read>(corrected.data() + offset, n));
        ++result.batches;
      }
    }
  }
  result.peak_buffered_reads =
      std::max(result.peak_buffered_reads,
               in_flight_peak.load(std::memory_order_relaxed));
  out.flush();
  if (!out) {
    throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                "CorrectionPipeline: error writing output");
  }
  // Standardized observability extras: every tool and bench reports the
  // same perf keys regardless of method.
  corrector_->annotate_report(result.report);
  if (result.pass1_skipped) {
    result.report.bump("pass1_skipped", 1);
    result.report.note("index_path", options_.load_index_path);
    result.report.note("index_checksum", checksum_hex(index_checksum));
  } else if (index_saved) {
    result.report.bump("index_saved", 1);
    result.report.note("index_path", options_.save_index_path);
    result.report.note("index_checksum", checksum_hex(index_checksum));
  }
  if (result.pass2_seconds > 0.0) {
    result.report.bump(
        "pass2_reads_per_sec",
        static_cast<std::uint64_t>(static_cast<double>(result.report.reads) /
                                   result.pass2_seconds));
  }
  // Overlap telemetry: where the stages' time went and how full the
  // buffers got. Only on overlapped runs, so --io-overlap=off (and the
  // whole-set methods) keep reports byte-identical to previous releases.
  if (result.overlapped) {
    const auto ms = [](double seconds) {
      return static_cast<std::uint64_t>(seconds * 1000.0 + 0.5);
    };
    result.report.bump("io_overlap", 1);
    result.report.bump("queue_depth", options_.queue_depth);
    if (result.pass1_overlap.workers > 0) {
      const auto& s1 = result.pass1_overlap;
      result.report.bump("pass1_reader_stall_ms",
                         ms(s1.reader_stall_seconds));
      result.report.bump("pass1_ingest_stall_ms",
                         ms(s1.writer_stall_seconds));
      result.report.bump("pass1_queue_peak", s1.queue_peak);
    }
    if (result.pass2_overlap.workers > 0) {
      const auto& s2 = result.pass2_overlap;
      result.report.bump("pass2_reader_stall_ms",
                         ms(s2.reader_stall_seconds));
      result.report.bump("pass2_writer_stall_ms",
                         ms(s2.writer_stall_seconds));
      result.report.bump("pass2_worker_stall_ms",
                         ms(s2.worker_stall_seconds));
      result.report.bump("pass2_queue_peak", s2.queue_peak);
      result.report.bump("pass2_reorder_peak", s2.reorder_peak);
      double util = 0.0;
      if (s2.elapsed_seconds > 0.0 && s2.workers > 0) {
        util = 1.0 - s2.worker_stall_seconds /
                         (s2.elapsed_seconds *
                          static_cast<double>(s2.workers));
        if (util < 0.0) util = 0.0;
      }
      result.report.bump("pass2_worker_util_pct",
                         static_cast<std::uint64_t>(util * 100.0 + 0.5));
    }
  }
  // Degradation accounting: what was dropped, passed through, or
  // retried — zero-valued keys are omitted so fault-free reports are
  // byte-identical to pre-hardening ones.
  result.reads_failed = result.report.extra("reads_failed");
  if (result.reads_skipped > 0) {
    result.report.bump("reads_skipped", result.reads_skipped);
  }
  if (result.io_retries > 0) {
    result.report.bump("io_retries", result.io_retries);
  }
  // Out-of-core telemetry, omitted on non-spilled runs so their reports
  // stay byte-identical to pre-sharding ones.
  if (result.spectrum_spilled) {
    result.report.bump("spectrum_spilled", 1);
    result.report.bump("spectrum_spill_bytes", result.spectrum_spilled_bytes);
    if (result.spectrum_shards > 0) {
      result.report.bump("spectrum_shards", result.spectrum_shards);
    }
  }
  result.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

void CorrectionPipeline::ensure_scratch_slots(std::size_t n) {
  if (n <= scratch_slot_count_) return;
  auto grown = std::make_unique<std::atomic<BatchScratch*>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    grown[i].store(i < scratch_slot_count_
                       ? scratch_slots_[i].load(std::memory_order_relaxed)
                       : nullptr,
                   std::memory_order_relaxed);
  }
  scratch_slots_ = std::move(grown);
  scratch_slot_count_ = n;
}

std::unique_ptr<BatchScratch> CorrectionPipeline::acquire_scratch(
    std::size_t hint) {
  const std::size_t n = scratch_slot_count_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (hint + i) % n;
    BatchScratch* held =
        scratch_slots_[slot].exchange(nullptr, std::memory_order_acq_rel);
    if (held != nullptr) return std::unique_ptr<BatchScratch>(held);
  }
  return corrector_->make_scratch();
}

void CorrectionPipeline::release_scratch(std::unique_ptr<BatchScratch> scratch,
                                         std::size_t hint) {
  if (scratch == nullptr) return;
  BatchScratch* raw = scratch.release();
  const std::size_t n = scratch_slot_count_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (hint + i) % n;
    BatchScratch* expected = nullptr;
    if (scratch_slots_[slot].compare_exchange_strong(
            expected, raw, std::memory_order_acq_rel)) {
      return;
    }
  }
  delete raw;  // every slot occupied: more concurrent callers than slots
}

void CorrectionPipeline::correct_span(std::span<const seq::Read> in,
                                      std::vector<seq::Read>& out,
                                      CorrectionReport& local,
                                      BatchScratch* scratch) {
  // Precondition: `out` empty and `local` fresh — both are per-block,
  // so the salvage path below can discard partial tallies wholesale.
  bool block_ok = true;
  try {
    fault::maybe_fail(fault::sites::kPass2Batch, ErrorKind::kInternal,
                      "pass-2 batch correction failed");
    corrector_->correct_batch(in, out, local, scratch);
    if (out.size() != in.size()) {
      throw Error(ErrorKind::kInternal, fault::sites::kPass2Batch,
                  "correct_batch returned a different number of reads");
    }
  } catch (...) {
    block_ok = false;
  }
  if (block_ok) return;
  // Graceful degradation: re-correct the block one read at a time.
  // A read whose correction still throws passes through uncorrected
  // (counted as reads_failed) — one bad read degrades itself, not
  // the batch, not the run.
  local = CorrectionReport{};  // discard partial batch tallies
  out.clear();
  std::vector<seq::Read> one;
  for (std::size_t i = 0; i < in.size(); ++i) {
    one.clear();
    try {
      fault::maybe_fail(fault::sites::kPass2Read, ErrorKind::kInternal,
                        "pass-2 read correction failed");
      corrector_->correct_batch(in.subspan(i, 1), one, local, scratch);
      if (one.size() != 1) {
        throw Error(ErrorKind::kInternal, fault::sites::kPass2Read,
                    "correct_batch returned a different number of reads");
      }
      out.push_back(std::move(one[0]));
    } catch (...) {
      out.push_back(in[i]);
      ++local.reads;
      local.bump("reads_failed", 1);
    }
  }
  local.bump("batches_salvaged", 1);
}

void CorrectionPipeline::correct_batch_parallel(util::ThreadPool& pool,
                                                std::span<const seq::Read> in,
                                                std::vector<seq::Read>& out,
                                                CorrectionReport& report) {
  out.clear();
  out.resize(in.size());
  std::mutex report_mutex;
  // Dynamic claiming: workers grab blocks off a shared atomic ticket,
  // so a straggler block delays only itself instead of holding the
  // whole static-partition barrier hostage.
  pool.parallel_for_dynamic(
      0, in.size(), 0, [&](std::size_t lo, std::size_t hi) {
        CorrectionReport local;
        std::vector<seq::Read> block;
        block.reserve(hi - lo);
        const std::size_t hint = util::ThreadPool::worker_index();
        auto scratch = acquire_scratch(hint);
        correct_span(in.subspan(lo, hi - lo), block, local, scratch.get());
        release_scratch(std::move(scratch), hint);
        for (std::size_t i = 0; i < block.size(); ++i) {
          out[lo + i] = std::move(block[i]);
        }
        std::lock_guard<std::mutex> lock(report_mutex);
        report.merge(local);
      });
}

}  // namespace ngs::core
