#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>

#include <sstream>

#include "fault/fault.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastx.hpp"
#include "kspec/chunked_builder.hpp"
#include "util/atomic_file.hpp"
#include "util/memory.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ngs::core {

namespace {

std::string checksum_hex(std::uint64_t checksum) {
  std::ostringstream os;
  os << "0x" << std::hex << checksum;
  return os.str();
}

/// Unique sibling name for the transient sharded index of a budget run
/// that is not also saving an index (removed when the run ends).
std::string transient_index_path(const std::string& dir) {
  static std::atomic<unsigned long> seq{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return dir + "/ngs_spectrum_" + std::to_string(pid) + "_" +
         std::to_string(seq.fetch_add(1)) + ".ngsx";
}

/// Removes a transient file when the run leaves scope (success or
/// unwind). Deferred to scope exit rather than unlinked eagerly so the
/// non-POSIX sharded view — which reopens the file per shard — keeps
/// working through pass 2.
struct FileRemover {
  std::string path;
  ~FileRemover() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

}  // namespace

CorrectionPipeline::CorrectionPipeline(std::unique_ptr<Corrector> corrector,
                                       PipelineOptions options)
    : corrector_(std::move(corrector)), options_(options) {
  if (!corrector_) {
    throw std::invalid_argument("CorrectionPipeline: null corrector");
  }
  if (options_.batch_size == 0) options_.batch_size = 1;
}

CorrectionPipeline::~CorrectionPipeline() = default;

PipelineResult CorrectionPipeline::run_file(const std::string& in_fastq,
                                            const std::string& out_fastq) {
  // Atomic output via the shared util::AtomicFile protocol (the same
  // one the index writers use): correct into a uniquely named sibling
  // temp file and rename over the target only on success, so a failed
  // or interrupted run never leaves a truncated corrected FASTQ where
  // downstream tooling expects a complete one.
  util::AtomicFileOptions atomic_options;
  atomic_options.error_site = fault::sites::kOutputWrite;
  util::AtomicFile out_file(out_fastq, atomic_options);
  PipelineResult result;
  {
    std::ofstream os(out_file.temp_path());
    if (!os) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "cannot open for writing: " + out_file.temp_path());
    }
    result = run(
        [&in_fastq]() -> std::unique_ptr<std::istream> {
          return io::open_input_stream(in_fastq);
        },
        os);
    os.close();
    if (!os) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "error finalizing output: " + out_file.temp_path());
    }
  }
  out_file.commit();  // throws kIo and removes the temp on failure
  return result;
}

PipelineResult CorrectionPipeline::run(const StreamFactory& open_input,
                                       std::ostream& out) {
  PipelineResult result;
  std::optional<util::ThreadPool> own_pool;
  if (options_.threads > 0) own_pool.emplace(options_.threads);
  util::ThreadPool& pool = own_pool ? *own_pool : util::default_pool();
  const std::size_t batch_size = options_.batch_size;

  // Transient input-open failures are absorbed by a bounded
  // exponential-backoff retry; the count is surfaced as io_retries.
  const fault::RetryPolicy retry_policy{
      std::max(1, options_.io_retry_attempts),
      std::max(0, options_.io_retry_backoff_ms)};
  const auto open_with_retry = [&]() {
    return fault::with_retry(
        retry_policy,
        [&]() -> std::unique_ptr<std::istream> {
          // The transient site models an open that succeeds on retry
          // (NFS hiccup, fd-limit race) and is absorbed by the budget;
          // the hard open site models a missing/unreadable input.
          fault::maybe_fail(fault::sites::kOpenInputTransient,
                            ErrorKind::kIo, "cannot open input",
                            /*transient=*/true);
          fault::maybe_fail(fault::sites::kFastqOpen, ErrorKind::kIo,
                            "cannot open input");
          return open_input();
        },
        &result.io_retries);
  };
  // One batch-write primitive for every path below: injectable, and any
  // stream failure is a typed I/O error instead of a silent bad() bit.
  const auto write_batch = [&out](std::span<const seq::Read> reads) {
    fault::maybe_fail(fault::sites::kOutputWrite, ErrorKind::kIo,
                      "error writing corrected output");
    io::write_fastq(out, reads);
    if (!out) {
      throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                  "error writing corrected output batch");
    }
  };

  std::vector<seq::Read> in_batch, out_batch;
  std::uint64_t index_checksum = 0;
  std::uint64_t pass1_skipped_records = 0;
  bool index_saved = false;
  // Outlives pass 2: the transient sharded index of a budget run must
  // stay on disk while the lazy view still serves shards from it.
  FileRemover temp_index;
  if (corrector_->spectrum_k() > 0) {
    result.streamed = true;
    if (!options_.load_index_path.empty()) {
      // Pass 1 replaced by the persisted index: mmap it, cross-check
      // the build parameters against the corrector, and hand over the
      // zero-copy spectrum view. The input summary comes from the index
      // header (it was recorded from the same reads at build time), so
      // downstream sizing — and therefore output — matches a fresh run.
      const auto index =
          ngs::index::SpectrumIndex::load(options_.load_index_path);
      const auto& info = index.info();
      if (info.build.k != corrector_->spectrum_k()) {
        std::ostringstream os;
        os << options_.load_index_path << ": index was built with k="
           << info.build.k << " but method '" << corrector_->method()
           << "' needs k=" << corrector_->spectrum_k();
        throw std::invalid_argument(os.str());
      }
      if (info.build.both_strands != corrector_->spectrum_both_strands()) {
        std::ostringstream os;
        os << options_.load_index_path << ": index was built "
           << (info.build.both_strands ? "with" : "without")
           << " reverse-complement strands but method '"
           << corrector_->method() << "' expects the opposite";
        throw std::invalid_argument(os.str());
      }
      result.input.reads = info.build.input_reads;
      result.input.bases = info.build.input_bases;
      result.input.max_read_length = info.build.max_read_length;
      result.pass1_skipped = true;
      index_checksum = info.checksum;
      corrector_->build_from_spectrum(index.share_spectrum(), result.input);
    } else {
      // Pass 1: stream batches into the bounded-memory spectrum builder.
      // Batch sorts and run merges run on their own pool when
      // spectrum_threads is set, otherwise on the correction pool.
      std::optional<util::ThreadPool> spectrum_pool;
      if (options_.spectrum_threads > 0) {
        spectrum_pool.emplace(options_.spectrum_threads);
      }
      kspec::SpillOptions spill;
      spill.memory_budget_bytes = options_.memory_budget_bytes;
      spill.spill_dir = options_.spill_dir;
      kspec::ChunkedSpectrumBuilder builder(
          corrector_->spectrum_k(), corrector_->spectrum_both_strands(),
          options_.spectrum_batch_instances,
          spectrum_pool ? &*spectrum_pool : &pool, spill);
      auto is = open_with_retry();
      io::FastqStreamReader reader(*is);
      reader.set_bad_record_policy(options_.on_bad_record);
      while (reader.read_batch(in_batch, batch_size) > 0) {
        for (const auto& r : in_batch) {
          builder.add_read(r.bases);
          result.input.add(r);
        }
        result.peak_buffered_reads =
            std::max(result.peak_buffered_reads, in_batch.size());
        in_batch.clear();
      }
      pass1_skipped_records = reader.records_skipped();
      ngs::index::IndexBuildInfo build;
      build.k = corrector_->spectrum_k();
      build.both_strands = corrector_->spectrum_both_strands();
      build.input_reads = result.input.reads;
      build.input_bases = result.input.bases;
      build.max_read_length =
          static_cast<std::uint32_t>(result.input.max_read_length);
      bool spectrum_built = false;
      if (builder.spilled()) {
        builder.flush_spill();
        result.spectrum_spilled = true;
        result.spectrum_spilled_bytes = builder.spill_bytes();
        const std::size_t bins = builder.spill_nonempty_bins();
        if (bins > 1) {
          // Out-of-core finalization: stream the sorted prefix bins
          // straight into a sharded index file — the full spectrum
          // never exists in this process — then serve pass 2 from the
          // file's lazily mapped shards. Saved when the caller asked
          // for an index; otherwise a transient file removed at scope
          // exit (see FileRemover).
          const bool keep = !options_.save_index_path.empty();
          const std::string index_path =
              keep ? options_.save_index_path
                   : transient_index_path(builder.spill_dir());
          if (!keep) temp_index.path = index_path;
          {
            ngs::index::ShardedIndexWriter writer(
                index_path, build, builder.spill_shard_bits(), bins);
            builder.finish_spilled(
                [&writer](kspec::ChunkedSpectrumBuilder::SortedRun&& run) {
                  writer.append_shard(run.prefix, std::move(run.codes),
                                      std::move(run.counts));
                });
            index_checksum = writer.finish();
          }
          index_saved = keep;
          const auto index = ngs::index::SpectrumIndex::load(index_path);
          result.spectrum_shards = index.info().shard_count;
          corrector_->build_from_spectrum(index.share_spectrum(),
                                          result.input);
          spectrum_built = true;
        }
        // A single non-empty bin falls through to finish(): the
        // concatenation path rebuilds the monolithic arrays, so the
        // save below still writes byte-identical version-1 output.
      }
      if (!spectrum_built) {
        kspec::KSpectrum spectrum = builder.finish();
        if (!options_.save_index_path.empty()) {
          index_checksum = ngs::index::write_spectrum_index(
              options_.save_index_path, spectrum, build);
          index_saved = true;
        }
        corrector_->build_from_spectrum(std::move(spectrum), result.input);
      }
      result.spectrum_peak_tracked_bytes = builder.peak_tracked_bytes();
    }
    // Pass 2: re-stream, correct each batch in parallel, write in order.
    auto is = open_with_retry();
    io::FastqStreamReader reader(*is);
    reader.set_bad_record_policy(options_.on_bad_record);
    while (reader.read_batch(in_batch, batch_size) > 0) {
      result.peak_buffered_reads =
          std::max(result.peak_buffered_reads, in_batch.size());
      util::Timer pass2_timer;
      correct_batch_parallel(pool, in_batch, out_batch, result.report);
      result.pass2_seconds += pass2_timer.seconds();
      write_batch(std::span<const seq::Read>(out_batch));
      ++result.batches;
      in_batch.clear();
    }
    // A genuinely malformed record is dropped by both passes, so take
    // the max rather than the sum (summing would double-count it;
    // taking only pass 2 would hide a record dropped by pass 1 alone).
    result.reads_skipped =
        std::max(pass1_skipped_records, reader.records_skipped());
  } else {
    if (!options_.load_index_path.empty() ||
        !options_.save_index_path.empty()) {
      throw std::invalid_argument(
          std::string(corrector_->method()) +
          ": phase 1 is not a pure k-spectrum, so a spectrum index cannot "
          "replace or capture it (--load-index/--save-index apply to "
          "streaming methods only)");
    }
    // Buffered path: one pass to load, then batch (or whole-set) correct.
    seq::ReadSet all;
    {
      auto is = open_with_retry();
      io::FastqStreamReader reader(*is);
      reader.set_bad_record_policy(options_.on_bad_record);
      while (reader.read_batch(all.reads, batch_size) > 0) {
      }
      result.reads_skipped = reader.records_skipped();
    }
    for (const auto& r : all.reads) result.input.add(r);
    result.peak_buffered_reads = all.reads.size();
    corrector_->build(all);
    if (corrector_->supports_batches()) {
      for (std::size_t offset = 0; offset < all.reads.size();
           offset += batch_size) {
        const std::size_t n =
            std::min(batch_size, all.reads.size() - offset);
        util::Timer pass2_timer;
        correct_batch_parallel(pool, {all.reads.data() + offset, n},
                               out_batch, result.report);
        result.pass2_seconds += pass2_timer.seconds();
        write_batch(std::span<const seq::Read>(out_batch));
        ++result.batches;
      }
    } else {
      util::Timer pass2_timer;
      const auto corrected = corrector_->correct_all(all, result.report);
      result.pass2_seconds += pass2_timer.seconds();
      for (std::size_t offset = 0; offset < corrected.size();
           offset += batch_size) {
        const std::size_t n = std::min(batch_size, corrected.size() - offset);
        write_batch(
            std::span<const seq::Read>(corrected.data() + offset, n));
        ++result.batches;
      }
    }
  }
  out.flush();
  if (!out) {
    throw Error(ErrorKind::kIo, fault::sites::kOutputWrite,
                "CorrectionPipeline: error writing output");
  }
  // Standardized observability extras: every tool and bench reports the
  // same perf keys regardless of method.
  corrector_->annotate_report(result.report);
  if (result.pass1_skipped) {
    result.report.bump("pass1_skipped", 1);
    result.report.note("index_path", options_.load_index_path);
    result.report.note("index_checksum", checksum_hex(index_checksum));
  } else if (index_saved) {
    result.report.bump("index_saved", 1);
    result.report.note("index_path", options_.save_index_path);
    result.report.note("index_checksum", checksum_hex(index_checksum));
  }
  if (result.pass2_seconds > 0.0) {
    result.report.bump(
        "pass2_reads_per_sec",
        static_cast<std::uint64_t>(static_cast<double>(result.report.reads) /
                                   result.pass2_seconds));
  }
  // Degradation accounting: what was dropped, passed through, or
  // retried — zero-valued keys are omitted so fault-free reports are
  // byte-identical to pre-hardening ones.
  result.reads_failed = result.report.extra("reads_failed");
  if (result.reads_skipped > 0) {
    result.report.bump("reads_skipped", result.reads_skipped);
  }
  if (result.io_retries > 0) {
    result.report.bump("io_retries", result.io_retries);
  }
  // Out-of-core telemetry, omitted on non-spilled runs so their reports
  // stay byte-identical to pre-sharding ones.
  if (result.spectrum_spilled) {
    result.report.bump("spectrum_spilled", 1);
    result.report.bump("spectrum_spill_bytes", result.spectrum_spilled_bytes);
    if (result.spectrum_shards > 0) {
      result.report.bump("spectrum_shards", result.spectrum_shards);
    }
  }
  result.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

std::unique_ptr<BatchScratch> CorrectionPipeline::acquire_scratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      auto scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return corrector_->make_scratch();
}

void CorrectionPipeline::release_scratch(
    std::unique_ptr<BatchScratch> scratch) {
  if (scratch == nullptr) return;
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

void CorrectionPipeline::correct_batch_parallel(util::ThreadPool& pool,
                                                std::span<const seq::Read> in,
                                                std::vector<seq::Read>& out,
                                                CorrectionReport& report) {
  out.clear();
  out.resize(in.size());
  std::mutex report_mutex;
  pool.parallel_for_blocked(0, in.size(), [&](std::size_t lo, std::size_t hi) {
    CorrectionReport local;
    std::vector<seq::Read> block;
    auto scratch = acquire_scratch();
    bool block_ok = true;
    try {
      fault::maybe_fail(fault::sites::kPass2Batch, ErrorKind::kInternal,
                        "pass-2 batch correction failed");
      block.reserve(hi - lo);
      corrector_->correct_batch(in.subspan(lo, hi - lo), block, local,
                                scratch.get());
      if (block.size() != hi - lo) {
        throw Error(ErrorKind::kInternal, fault::sites::kPass2Batch,
                    "correct_batch returned a different number of reads");
      }
    } catch (...) {
      block_ok = false;
    }
    if (!block_ok) {
      // Graceful degradation: re-correct the block one read at a time.
      // A read whose correction still throws passes through uncorrected
      // (counted as reads_failed) — one bad read degrades itself, not
      // the batch, not the run.
      local = CorrectionReport{};  // discard partial batch tallies
      block.clear();
      std::vector<seq::Read> one;
      for (std::size_t i = lo; i < hi; ++i) {
        one.clear();
        try {
          fault::maybe_fail(fault::sites::kPass2Read, ErrorKind::kInternal,
                            "pass-2 read correction failed");
          corrector_->correct_batch(in.subspan(i, 1), one, local,
                                    scratch.get());
          if (one.size() != 1) {
            throw Error(ErrorKind::kInternal, fault::sites::kPass2Read,
                        "correct_batch returned a different number of reads");
          }
          block.push_back(std::move(one[0]));
        } catch (...) {
          block.push_back(in[i]);
          ++local.reads;
          local.bump("reads_failed", 1);
        }
      }
      local.bump("batches_salvaged", 1);
    }
    release_scratch(std::move(scratch));
    for (std::size_t i = 0; i < block.size(); ++i) {
      out[lo + i] = std::move(block[i]);
    }
    std::lock_guard<std::mutex> lock(report_mutex);
    report.merge(local);
  });
}

}  // namespace ngs::core
