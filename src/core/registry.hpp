#pragma once
// String-keyed corrector factory — the single method-dispatch site in
// the repository. Tools, benches, and examples name a method and get a
// core::Corrector; adding a corrector means registering one factory
// here, not editing every dispatch chain.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/corrector.hpp"

namespace ngs::core {

struct MethodInfo {
  std::string name;         // registry key, e.g. "reptile"
  std::string description;  // one line for --method list output
  bool streaming = false;   // phase 1 runs from a streamed spectrum
};

using CorrectorFactory =
    std::function<std::unique_ptr<Corrector>(const CorrectorConfig&)>;

/// Registers a factory under info.name (replacing any previous entry, so
/// tests can shadow a builtin). Thread-safe.
void register_corrector(MethodInfo info, CorrectorFactory factory);

/// Instantiates the named method. Throws std::invalid_argument with the
/// list of known methods when the name is unknown.
std::unique_ptr<Corrector> make_corrector(const std::string& method,
                                          const CorrectorConfig& config = {});

/// All registered methods in registration order (builtins first).
std::vector<MethodInfo> registered_methods();

}  // namespace ngs::core
