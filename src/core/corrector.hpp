#pragma once
// The unified corrector interface. The dissertation surveys seven
// correction methods (Reptile, REDEEM, the Sec. 3.5 hybrid, SHREC, SAP,
// HiTEC, FreClu); each module exposes its own correct_all with its own
// stats struct. core::Corrector wraps them behind one two-phase contract
// so tools, benches, and the streaming CorrectionPipeline dispatch by
// method *name* through core::make_corrector (see registry.hpp) instead
// of per-method if/else chains:
//
//   phase 1 (build)  — index construction, from the buffered reads or,
//                      for spectrum-based methods, from a k-spectrum
//                      streamed in bounded memory;
//   phase 2 (correct)— per-read batch correction (thread-safe, order-
//                      preserving) or, for whole-set algorithms, a
//                      single correct_all over the buffered reads.
//
// Results are accumulated into a CorrectionReport: common counters every
// method shares plus ordered key/value extras for method-specific stats.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/read.hpp"
#include "sim/error_model.hpp"

namespace ngs::core {

/// Unified correction outcome: counters common to every method plus
/// ordered per-method key/value extras. Reports merge by summation, so
/// batch-local reports can be combined across threads and batches.
/// Non-numeric provenance (e.g. the spectrum-index path a run loaded)
/// rides along as ordered string notes; merging keeps the first value
/// seen per key.
struct CorrectionReport {
  std::uint64_t reads = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t bases_changed = 0;
  std::vector<std::pair<std::string, std::uint64_t>> extras;
  std::vector<std::pair<std::string, std::string>> notes;

  /// Adds `delta` to the extra counter `key` (created at the end of the
  /// list on first use; insertion order is preserved for display).
  void bump(std::string_view key, std::uint64_t delta);

  /// Value of extra `key`, or 0 if never bumped.
  std::uint64_t extra(std::string_view key) const noexcept;

  /// Sets the string note `key` (overwriting any previous value).
  void note(std::string_view key, std::string_view value);

  /// Value of note `key`, or "" if never set.
  std::string_view note_or(std::string_view key) const noexcept;

  void merge(const CorrectionReport& other);

  /// One-line human-readable rendering, e.g.
  /// "16666 reads, 1034 changed, 1147 bases; tiles_corrected=512 ...".
  std::string summary() const;
};

/// Accounts one before/after read pair into the common counters.
void tally_read(const seq::Read& before, const seq::Read& after,
                CorrectionReport& report);

/// Method-independent configuration consumed by the adapter factories.
/// Fields a method does not use are ignored (FreClu needs none of them).
struct CorrectorConfig {
  /// Genome length estimate |G| (Reptile/hybrid parameter selection,
  /// SHREC's occurrence statistic).
  std::uint64_t genome_length = 1'000'000;
  /// Kmer length override; 0 keeps the method default / data-driven
  /// selection.
  int k = 0;
  /// Average substitution rate for the REDEEM/hybrid misread model when
  /// no explicit error_model is supplied.
  double error_rate = 0.01;
  /// Exact error model the reads were generated with (benches pass the
  /// simulator's model); overrides error_rate.
  std::optional<sim::ErrorModel> error_model;
  /// Byte budget (MiB) for the shared pass-2 tile-decision memo cache
  /// (Reptile-family adapters; see util::ShardedCache). 0 disables
  /// memoization — output is byte-identical either way.
  std::size_t tile_cache_mb = 32;
};

/// Opaque per-worker phase-2 scratch. A correction worker obtains one
/// from Corrector::make_scratch() and passes it back to every
/// correct_batch call it issues; methods with per-read temporaries
/// (Reptile's option/candidate buffers) then reuse them across the
/// worker's whole run instead of reallocating per batch. A scratch
/// object must never be shared between concurrent callers.
class BatchScratch {
 public:
  virtual ~BatchScratch() = default;
};

/// What the pipeline learns about the input while streaming pass 1; the
/// misread-model adapters size their matrices from max_read_length.
struct InputSummary {
  std::uint64_t reads = 0;
  std::uint64_t bases = 0;
  std::size_t max_read_length = 0;

  void add(const seq::Read& r) noexcept {
    ++reads;
    bases += r.bases.size();
    if (r.bases.size() > max_read_length) max_read_length = r.bases.size();
  }
};

class Corrector {
 public:
  virtual ~Corrector() = default;

  Corrector(const Corrector&) = delete;
  Corrector& operator=(const Corrector&) = delete;

  /// Registry name of the method ("reptile", "sap", ...).
  virtual std::string_view method() const noexcept = 0;

  /// Kmer length of the phase-1 spectrum when the method can be built
  /// from streamed kmer counts alone (SAP, HiTEC, REDEEM); 0 when phase
  /// 1 needs the buffered reads (Reptile's tile table, SHREC/FreClu/
  /// hybrid whole-set passes).
  virtual int spectrum_k() const noexcept { return 0; }

  /// Strand convention of the streamed spectrum (only meaningful when
  /// spectrum_k() > 0).
  virtual bool spectrum_both_strands() const noexcept { return true; }

  /// Phase 1 from a streamed spectrum. Only valid when spectrum_k() > 0;
  /// the default throws std::logic_error.
  virtual void build_from_spectrum(kspec::KSpectrum spectrum,
                                   const InputSummary& input);

  /// Phase 1 from the in-memory read set. Always supported.
  virtual void build(const seq::ReadSet& reads) = 0;

  /// True once either build overload has completed.
  bool ready() const noexcept { return ready_; }

  /// False for whole-set algorithms (SHREC, FreClu, hybrid) that must
  /// see every read at once; the pipeline then buffers the input and
  /// calls correct_all exactly once.
  virtual bool supports_batches() const noexcept { return true; }

  /// Per-worker scratch factory; nullptr when the method keeps no
  /// reusable per-worker state.
  virtual std::unique_ptr<BatchScratch> make_scratch() const {
    return nullptr;
  }

  /// Phase 2 over one batch: appends one corrected read per input read
  /// to `out`, in order, accumulating into a caller-local report.
  /// Thread-safe after build() for batch-supporting methods; the default
  /// throws std::logic_error for whole-set methods. `scratch` is a
  /// per-worker object from make_scratch() of the same corrector (or
  /// nullptr: the method falls back to call-local temporaries).
  virtual void correct_batch(std::span<const seq::Read> in,
                             std::vector<seq::Read>& out,
                             CorrectionReport& report,
                             BatchScratch* scratch) const;

  /// Convenience overload with call-local scratch.
  void correct_batch(std::span<const seq::Read> in,
                     std::vector<seq::Read>& out,
                     CorrectionReport& report) const {
    correct_batch(in, out, report, nullptr);
  }

  /// Appends run-level observability extras (e.g. tile_cache_hits /
  /// tile_cache_misses) to `report`. The pipeline calls this exactly
  /// once, after phase 2 completes; the default adds nothing.
  virtual void annotate_report(CorrectionReport& report) const;

  /// Phase 2 over the whole set. The default parallelizes correct_batch
  /// over the shared thread pool (order-preserving, reports merged);
  /// whole-set methods override it with their native pass.
  virtual std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                             CorrectionReport& report) const;

 protected:
  Corrector() = default;

  void mark_ready() noexcept { ready_ = true; }

  /// Throws std::logic_error unless build has completed.
  void require_ready() const;

 private:
  bool ready_ = false;
};

}  // namespace ngs::core
