#include "core/registry.hpp"

#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ngs::core {
namespace detail {
void register_builtins();  // defined in adapters.cpp
}  // namespace detail

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::pair<MethodInfo, CorrectorFactory>> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, detail::register_builtins);
}

}  // namespace

void register_corrector(MethodInfo info, CorrectorFactory factory) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [existing, fn] : r.entries) {
    if (existing.name == info.name) {
      existing = std::move(info);
      fn = std::move(factory);
      return;
    }
  }
  r.entries.emplace_back(std::move(info), std::move(factory));
}

std::unique_ptr<Corrector> make_corrector(const std::string& method,
                                          const CorrectorConfig& config) {
  ensure_builtins();
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [info, factory] : r.entries) {
    if (info.name == method) return factory(config);
  }
  std::ostringstream os;
  os << "unknown correction method: " << method << " (known:";
  for (const auto& [info, factory] : r.entries) os << ' ' << info.name;
  os << ')';
  throw std::invalid_argument(os.str());
}

std::vector<MethodInfo> registered_methods() {
  ensure_builtins();
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<MethodInfo> out;
  out.reserve(r.entries.size());
  for (const auto& [info, factory] : r.entries) out.push_back(info);
  return out;
}

}  // namespace ngs::core
