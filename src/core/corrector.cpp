#include "core/corrector.hpp"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace ngs::core {

void CorrectionReport::bump(std::string_view key, std::uint64_t delta) {
  for (auto& [name, value] : extras) {
    if (name == key) {
      value += delta;
      return;
    }
  }
  extras.emplace_back(std::string(key), delta);
}

std::uint64_t CorrectionReport::extra(std::string_view key) const noexcept {
  for (const auto& [name, value] : extras) {
    if (name == key) return value;
  }
  return 0;
}

void CorrectionReport::note(std::string_view key, std::string_view value) {
  for (auto& [name, existing] : notes) {
    if (name == key) {
      existing = std::string(value);
      return;
    }
  }
  notes.emplace_back(std::string(key), std::string(value));
}

std::string_view CorrectionReport::note_or(
    std::string_view key) const noexcept {
  for (const auto& [name, value] : notes) {
    if (name == key) return value;
  }
  return {};
}

void CorrectionReport::merge(const CorrectionReport& other) {
  reads += other.reads;
  reads_changed += other.reads_changed;
  bases_changed += other.bases_changed;
  for (const auto& [name, value] : other.extras) bump(name, value);
  for (const auto& [name, value] : other.notes) {
    if (note_or(name).empty()) note(name, value);
  }
}

std::string CorrectionReport::summary() const {
  std::ostringstream os;
  os << reads << " reads, " << reads_changed << " changed, " << bases_changed
     << " bases";
  if (!extras.empty() || !notes.empty()) {
    os << ";";
    for (const auto& [name, value] : extras) os << ' ' << name << '=' << value;
    for (const auto& [name, value] : notes) os << ' ' << name << '=' << value;
  }
  return os.str();
}

void tally_read(const seq::Read& before, const seq::Read& after,
                CorrectionReport& report) {
  ++report.reads;
  if (before.bases == after.bases) return;
  ++report.reads_changed;
  if (before.bases.size() == after.bases.size()) {
    for (std::size_t i = 0; i < before.bases.size(); ++i) {
      report.bases_changed += before.bases[i] != after.bases[i];
    }
  } else {
    // No method here resizes reads, but count a length change defensively
    // as the larger of the two lengths.
    report.bases_changed +=
        std::max(before.bases.size(), after.bases.size());
  }
}

void Corrector::build_from_spectrum(kspec::KSpectrum /*spectrum*/,
                                    const InputSummary& /*input*/) {
  throw std::logic_error(std::string(method()) +
                         ": streaming spectrum build not supported");
}

void Corrector::correct_batch(std::span<const seq::Read> /*in*/,
                              std::vector<seq::Read>& /*out*/,
                              CorrectionReport& /*report*/,
                              BatchScratch* /*scratch*/) const {
  throw std::logic_error(std::string(method()) +
                         ": whole-set method has no batch correction");
}

void Corrector::annotate_report(CorrectionReport& /*report*/) const {}

std::vector<seq::Read> Corrector::correct_all(const seq::ReadSet& reads,
                                              CorrectionReport& report) const {
  require_ready();
  std::vector<seq::Read> out(reads.size());
  std::mutex report_mutex;
  util::default_pool().parallel_for_blocked(
      0, reads.size(), [&](std::size_t lo, std::size_t hi) {
        CorrectionReport local;
        std::vector<seq::Read> block;
        block.reserve(hi - lo);
        const auto scratch = make_scratch();
        correct_batch({reads.reads.data() + lo, hi - lo}, block, local,
                      scratch.get());
        for (std::size_t i = 0; i < block.size(); ++i) {
          out[lo + i] = std::move(block[i]);
        }
        std::lock_guard<std::mutex> lock(report_mutex);
        report.merge(local);
      });
  return out;
}

void Corrector::require_ready() const {
  if (!ready_) {
    throw std::logic_error(std::string(method()) +
                           ": correct called before build");
  }
}

}  // namespace ngs::core
