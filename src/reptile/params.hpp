#pragma once
// Reptile parameters (Sec. 2.3, "Choosing Parameters") and their
// data-driven selection from the input reads' quality-score and tile
// multiplicity histograms — the paper's alternative to analytical
// calculations under unrealistic uniformity assumptions.

#include <cstdint>

#include "seq/read.hpp"

namespace ngs::reptile {

struct ReptileParams {
  int k = 12;          // kmer length (~ceil(log4 |G|))
  int overlap = 0;     // l: tile = a1 ||_l a2, |t| = 2k - l
  int d = 1;           // max Hamming distance per constituent kmer

  int quality_cutoff = 0;   // Qc; 0 disables the quality filter
  int quality_max = 30;     // Qm: a correction must touch a base with q < Qm

  std::uint32_t c_good = 8;  // Cg: auto-validate tiles with Og >= Cg
  std::uint32_t c_min = 3;   // Cm: minimal trusted multiplicity
  double c_ratio = 2.0;      // Cr: required Og(t')/Og(t) for a correction

  /// Cap on the per-kmer option list when forming d-mutant tiles. In
  /// repeat-dense spectra a kmer's 2-neighborhood can hold dozens of
  /// members and the candidate-tile product explodes; keeping the
  /// highest-multiplicity neighbors preserves every plausible correction
  /// source (Algorithm 1 only ever corrects toward dominant tiles).
  std::size_t max_kmer_options = 16;

  // Ambiguous-base handling (Sec. 2.4): attempt to correct an 'N' only if
  // every window of length ambig_window containing it has at most
  // ambig_max N's. Zeros mean "default to k and d".
  int ambig_window = 0;
  int ambig_max = 0;
  char default_base = 'A';

  int tile_length() const noexcept { return 2 * k - overlap; }
  int effective_ambig_window() const noexcept {
    return ambig_window > 0 ? ambig_window : k;
  }
  int effective_ambig_max() const noexcept {
    return ambig_max > 0 ? ambig_max : d;
  }
};

/// Selects parameters from the data:
///  - k = ceil(log4(genome_length_estimate)), clamped to [10, 15];
///  - Qc at the ~17% quantile of the base-quality histogram;
///  - Cg so ~2% of distinct tiles exceed it;
///  - Cm so ~5% of distinct tiles exceed it;
///  - Cr = 2, d = 1 (paper defaults).
/// Building the tile histogram requires a provisional pass; the function
/// performs it internally.
ReptileParams select_parameters(const seq::ReadSet& reads,
                                std::uint64_t genome_length_estimate);

}  // namespace ngs::reptile
