#include "reptile/params.hpp"

#include <algorithm>
#include <cmath>

#include "kspec/tile_table.hpp"
#include "util/stats.hpp"

namespace ngs::reptile {

ReptileParams select_parameters(const seq::ReadSet& reads,
                                std::uint64_t genome_length_estimate) {
  ReptileParams p;
  if (genome_length_estimate > 0) {
    p.k = static_cast<int>(
        std::ceil(std::log(static_cast<double>(genome_length_estimate)) /
                  std::log(4.0)));
    p.k = std::clamp(p.k, 10, 15);
  }

  // Qc: ~17% of base calls fall below the cutoff.
  util::Histogram quality_hist;
  bool has_quality = false;
  for (const auto& r : reads.reads) {
    for (const std::uint8_t q : r.quality) {
      quality_hist.add(q);
      has_quality = true;
    }
  }
  if (has_quality) {
    p.quality_cutoff = static_cast<int>(quality_hist.quantile(0.17));
    p.quality_max = static_cast<int>(quality_hist.quantile(0.60));
  }

  // Tile multiplicity histogram with the chosen Qc drives Cg and Cm.
  kspec::TileParams tile_params;
  tile_params.k = p.k;
  tile_params.overlap = p.overlap;
  tile_params.quality_cutoff = p.quality_cutoff;
  const auto table = kspec::TileTable::build(reads, tile_params);
  const auto hist = table.og_histogram();
  if (!hist.empty()) {
    p.c_good = static_cast<std::uint32_t>(
        std::max<std::int64_t>(4, hist.quantile(0.98)));
    // Cm: the 95% quantile of the multiplicity histogram, but never more
    // than a quarter of Cg — with strongly 3'-weighted quality profiles
    // the quantile can land inside the valid-tile peak, which would bar
    // legitimate low-Og (3'-heavy) tiles from ever validating. The cap
    // keeps Cm in the valley between the error and genomic peaks, which
    // is where the paper's own sweep (Fig. 2.3) finds the best Gain.
    p.c_min = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        hist.quantile(0.95), 2,
        std::max<std::int64_t>(2, p.c_good / 4)));
  }
  return p;
}

}  // namespace ngs::reptile
