#include "reptile/polymorphism.hpp"

#include <algorithm>
#include <set>

#include "seq/kmer.hpp"

namespace ngs::reptile {

std::vector<SnpCandidate> detect_polymorphisms(
    const ReptileCorrector& corrector, const SnpParams& params) {
  const auto& tiles = corrector.tiles();
  const int T = corrector.params().tile_length();

  std::set<std::pair<seq::KmerCode, seq::KmerCode>> seen;
  std::vector<SnpCandidate> out;

  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const seq::KmerCode tile = tiles.code_at(i);
    const std::uint32_t og = tiles.counts_at(i).og;
    if (og < params.min_support) continue;

    for (int pos = 0; pos < T; ++pos) {
      const std::uint8_t current = seq::kmer_base(tile, T, pos);
      for (std::uint8_t b = 0; b < 4; ++b) {
        if (b == current) continue;
        const seq::KmerCode variant = seq::kmer_with_base(tile, T, pos, b);
        if (variant < tile) continue;  // each unordered pair once
        const std::uint32_t og_v = tiles.counts(variant).og;
        if (og_v < params.min_support) continue;
        const double hi = std::max(og, og_v);
        const double lo = std::min(og, og_v);
        if (hi > params.max_imbalance * lo) continue;

        // Canonicalize across strands: the reverse complements of both
        // variants form the same biological site.
        const seq::KmerCode rc_a = seq::reverse_complement(tile, T);
        const seq::KmerCode rc_b = seq::reverse_complement(variant, T);
        auto fwd = std::minmax(tile, variant);
        auto rev = std::minmax(rc_a, rc_b);
        const auto key = std::min(
            std::pair<seq::KmerCode, seq::KmerCode>(fwd.first, fwd.second),
            std::pair<seq::KmerCode, seq::KmerCode>(rev.first, rev.second));
        if (!seen.insert(key).second) continue;

        SnpCandidate cand;
        cand.tile_a = fwd.first;
        cand.tile_b = fwd.second;
        cand.offset = pos;
        cand.og_a = tile < variant ? og : og_v;
        cand.og_b = tile < variant ? og_v : og;
        out.push_back(cand);
      }
    }
  }
  return out;
}

}  // namespace ngs::reptile
