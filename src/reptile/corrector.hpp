#pragma once
// Reptile (Sec. 2.3): short-read error correction via representative
// tilings. Phase 1 (construction) builds the k-spectrum, the Hamming
// graph over it, and the tile table with quality-filtered counts;
// phase 2 corrects each read independently by placing tiles, comparing
// them against their d-mutant tiles (Algorithm 1), and choosing
// alternative tile placements on inconclusive decisions (Algorithm 2,
// rules [D1]-[D3]), sweeping 5'->3' and then 3'->5' (via the reverse
// complement, which the double-stranded tables support natively).
//
// Pass-2 performance: at coverage c every erroneous tile recurs in ~c
// reads, so the expensive part of Algorithm 1 — the d-mutant candidate
// enumeration and tile resolution, which depends only on the tile code
// and the (d1, d2) budgets, never on the read — is memoized in a
// util::ShardedCache shared by all correction workers. Only the final
// per-instance quality gate (line 14) consults the read's quality
// scores, and it is applied after the memo lookup, so cached and
// uncached correction are byte-identical for any thread count.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kspec/hamming_graph.hpp"
#include "kspec/kspectrum.hpp"
#include "kspec/tile_table.hpp"
#include "reptile/params.hpp"
#include "seq/packed.hpp"
#include "seq/read.hpp"
#include "util/sharded_cache.hpp"

namespace ngs::reptile {

enum class TileDecision { kValid, kCorrected, kInsufficient };

struct CorrectionStats {
  std::uint64_t reads = 0;
  std::uint64_t tiles_valid = 0;
  std::uint64_t tiles_corrected = 0;
  std::uint64_t tiles_insufficient = 0;
  std::uint64_t bases_changed = 0;
  std::uint64_t ambiguous_converted = 0;

  void merge(const CorrectionStats& o) {
    reads += o.reads;
    tiles_valid += o.tiles_valid;
    tiles_corrected += o.tiles_corrected;
    tiles_insufficient += o.tiles_insufficient;
    bases_changed += o.bases_changed;
    ambiguous_converted += o.ambiguous_converted;
  }
};

/// Default byte budget for a shared tile-decision memo when the caller
/// does not size one explicitly (correct_all, the corrector registry).
inline constexpr std::size_t kDefaultTileCacheBytes = 32u << 20;

/// Concurrent memo of quality-independent tile decisions, shared across
/// every correction worker (lock-striped, bounded capacity; see
/// util::ShardedCache). The memoized value is a pure function of the
/// key, so eviction or a racing store only ever costs a recomputation.
using TileDecisionCache = util::ShardedCache;

/// A d-mutant tile candidate surfaced by Algorithm 1.
struct TileCandidate {
  seq::KmerCode code = 0;
  std::uint32_t og = 0;
  int hd = 0;
};

/// A kmer option with its spectrum multiplicity pre-gathered, so the
/// abundance-ranked truncation in kmer_options sorts on a cached value
/// instead of re-searching the spectrum on every comparison.
struct KmerOption {
  seq::KmerCode code = 0;
  std::uint32_t count = 0;
};

class ReptileCorrector {
 public:
  /// Reusable per-worker scratch for phase 2. One instance per thread
  /// (or per sequential run); reusing it across reads removes every
  /// per-tile heap allocation from the hot path.
  struct Scratch {
    std::vector<seq::KmerCode> opts1;       // kmer options for alpha1
    std::vector<seq::KmerCode> opts2;       // kmer options for alpha2
    std::vector<seq::KmerCode> novel;       // novel-kmer neighbor fallback
    std::vector<KmerOption> opt;            // options + pre-gathered counts
    std::vector<TileCandidate> candidates;  // d-mutant tiles present in R
    std::vector<std::uint32_t> cross_og;    // cross-product Og matrix
    std::vector<std::uint8_t> quality;      // working copy per read
    seq::PackedSeq packed;                  // 2-bit working read
    seq::PackedSeq rc_packed;               // reverse-complement sweep buffer
    std::vector<std::uint8_t> rq;
    std::vector<int> prefix;                // convert_ambiguous prefix sums
  };

  /// Phase 1: ambiguous bases satisfying the density constraint are
  /// converted to params.default_base in a working copy of the reads,
  /// from which the spectrum, Hamming graph, and tile table are built.
  ReptileCorrector(const seq::ReadSet& reads, ReptileParams params);

  const ReptileParams& params() const noexcept { return params_; }
  const kspec::KSpectrum& spectrum() const noexcept { return spectrum_; }
  const kspec::TileTable& tiles() const noexcept { return tiles_; }

  /// Phase 2 for one read; returns the corrected read and accumulates
  /// stats. Thread-safe (const, no shared mutable state beyond `cache`,
  /// which is itself concurrent and may be shared by every worker).
  /// `scratch` must not be shared between concurrent callers.
  seq::Read correct(const seq::Read& read, CorrectionStats& stats,
                    Scratch& scratch,
                    TileDecisionCache* cache = nullptr) const;

  /// Convenience overload with call-local scratch (tests, one-off use).
  seq::Read correct(const seq::Read& read, CorrectionStats& stats) const {
    Scratch scratch;
    return correct(read, stats, scratch, nullptr);
  }

  /// Corrects every read (parallel over the default thread pool), with
  /// per-worker scratch and one shared tile-decision cache.
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     CorrectionStats& stats) const;

  /// True when tile decisions for this parameterization fit the memo
  /// encoding (tile code + distance budgets in 62 bits).
  bool cacheable() const noexcept {
    return 2 * params_.tile_length() + 4 <= 62;
  }

 private:
  /// Tags the delegated constructor whose read set has already been
  /// through ambiguous-base preconversion, so the conversion (a full
  /// read-set copy) runs exactly once per construction and is shared by
  /// the spectrum and the tile table.
  struct PreconvertedTag {};
  ReptileCorrector(const seq::ReadSet& converted, ReptileParams params,
                   PreconvertedTag);

  struct TileOutcome {
    TileDecision decision = TileDecision::kInsufficient;
    seq::KmerCode corrected = 0;
    /// True when the correction came from the strong-tile branch (lines
    /// 10-15) and must still pass the per-instance low-quality-base gate.
    bool quality_gated = false;
  };

  /// Algorithm 1 on the tile starting at `pos` of the working read.
  TileOutcome correct_tile(seq::KmerCode tile,
                           std::span<const std::uint8_t> tile_quality,
                           int d1, int d2, Scratch& scratch,
                           TileDecisionCache* cache) const;

  /// The quality-independent part of Algorithm 1 (memoizable).
  TileOutcome correct_tile_raw(seq::KmerCode tile, int d1, int d2,
                               Scratch& scratch) const;

  /// Kmers within Hamming distance [0, d_limit] of `code` that occur in
  /// the spectrum (including `code` itself). Appends to `out`; scratch
  /// supplies the enumeration and count-gather buffers. Options beyond
  /// max_kmer_options are dropped lowest-multiplicity-first, with counts
  /// gathered once per option (graph neighbors already carry their
  /// spectrum index; novel kmers resolve through a batched probe).
  void kmer_options(seq::KmerCode code, int d_limit, Scratch& scratch,
                    std::vector<seq::KmerCode>& out) const;

  /// Algorithm 2 sweep over one orientation of the working read (2-bit
  /// packed; tile codes come from shift/mask window extraction).
  void sweep(seq::PackedSeq& bases, const std::vector<std::uint8_t>& quality,
             CorrectionStats& stats, Scratch& scratch,
             TileDecisionCache* cache) const;

  /// Converts eligible N's in place; returns number converted. `prefix`
  /// is per-worker scratch for the ambiguity prefix sums.
  std::uint64_t convert_ambiguous(std::string& bases,
                                  std::vector<std::uint8_t>& quality,
                                  std::vector<int>& prefix) const;

  ReptileParams params_;
  kspec::KSpectrum spectrum_;
  kspec::HammingGraph graph_;
  kspec::TileTable tiles_;
};

}  // namespace ngs::reptile
