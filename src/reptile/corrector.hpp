#pragma once
// Reptile (Sec. 2.3): short-read error correction via representative
// tilings. Phase 1 (construction) builds the k-spectrum, the Hamming
// graph over it, and the tile table with quality-filtered counts;
// phase 2 corrects each read independently by placing tiles, comparing
// them against their d-mutant tiles (Algorithm 1), and choosing
// alternative tile placements on inconclusive decisions (Algorithm 2,
// rules [D1]-[D3]), sweeping 5'->3' and then 3'->5' (via the reverse
// complement, which the double-stranded tables support natively).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "kspec/hamming_graph.hpp"
#include "kspec/kspectrum.hpp"
#include "kspec/tile_table.hpp"
#include "reptile/params.hpp"
#include "seq/read.hpp"

namespace ngs::reptile {

enum class TileDecision { kValid, kCorrected, kInsufficient };

struct CorrectionStats {
  std::uint64_t reads = 0;
  std::uint64_t tiles_valid = 0;
  std::uint64_t tiles_corrected = 0;
  std::uint64_t tiles_insufficient = 0;
  std::uint64_t bases_changed = 0;
  std::uint64_t ambiguous_converted = 0;

  void merge(const CorrectionStats& o) {
    reads += o.reads;
    tiles_valid += o.tiles_valid;
    tiles_corrected += o.tiles_corrected;
    tiles_insufficient += o.tiles_insufficient;
    bases_changed += o.bases_changed;
    ambiguous_converted += o.ambiguous_converted;
  }
};

/// Memoizes quality-independent tile decisions. At typical coverages the
/// same tile code is corrected hundreds of times across reads, and the
/// d-mutant enumeration (the expensive step) does not depend on the
/// instance's quality scores — only the final accept gate does.
class TileOutcomeCache {
 public:
  bool lookup(std::uint64_t key, std::uint64_t& encoded) const {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    encoded = it->second;
    return true;
  }
  void store(std::uint64_t key, std::uint64_t encoded) {
    map_.emplace(key, encoded);
  }
  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

class ReptileCorrector {
 public:
  /// Phase 1: ambiguous bases satisfying the density constraint are
  /// converted to params.default_base in a working copy of the reads,
  /// from which the spectrum, Hamming graph, and tile table are built.
  ReptileCorrector(const seq::ReadSet& reads, ReptileParams params);

  const ReptileParams& params() const noexcept { return params_; }
  const kspec::KSpectrum& spectrum() const noexcept { return spectrum_; }
  const kspec::TileTable& tiles() const noexcept { return tiles_; }

  /// Phase 2 for one read; returns the corrected read and accumulates
  /// stats. Thread-safe (const, no shared mutable state). `cache` may be
  /// shared across calls from the same thread to memoize tile decisions.
  seq::Read correct(const seq::Read& read, CorrectionStats& stats,
                    TileOutcomeCache* cache = nullptr) const;

  /// Corrects every read (parallel over the default thread pool).
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     CorrectionStats& stats) const;

 private:
  /// Tags the delegated constructor whose read set has already been
  /// through ambiguous-base preconversion, so the conversion (a full
  /// read-set copy) runs exactly once per construction and is shared by
  /// the spectrum and the tile table.
  struct PreconvertedTag {};
  ReptileCorrector(const seq::ReadSet& converted, ReptileParams params,
                   PreconvertedTag);

  struct TileOutcome {
    TileDecision decision = TileDecision::kInsufficient;
    seq::KmerCode corrected = 0;
    /// True when the correction came from the strong-tile branch (lines
    /// 10-15) and must still pass the per-instance low-quality-base gate.
    bool quality_gated = false;
  };

  /// Algorithm 1 on the tile starting at `pos` of the working read.
  TileOutcome correct_tile(seq::KmerCode tile,
                           std::span<const std::uint8_t> tile_quality,
                           int d1, int d2, TileOutcomeCache* cache) const;

  /// The quality-independent part of Algorithm 1 (memoizable).
  TileOutcome correct_tile_raw(seq::KmerCode tile, int d1, int d2) const;

  /// Kmers within Hamming distance [0, d_limit] of `code` that occur in
  /// the spectrum (including `code` itself). Appends to `out`.
  void kmer_options(seq::KmerCode code, int d_limit,
                    std::vector<seq::KmerCode>& out) const;

  /// Algorithm 2 sweep over one orientation of the working read.
  void sweep(std::string& bases, const std::vector<std::uint8_t>& quality,
             CorrectionStats& stats, TileOutcomeCache* cache) const;

  /// Converts eligible N's in place; returns number converted.
  std::uint64_t convert_ambiguous(std::string& bases,
                                  std::vector<std::uint8_t>& quality) const;

  ReptileParams params_;
  kspec::KSpectrum spectrum_;
  kspec::HammingGraph graph_;
  kspec::TileTable tiles_;
};

}  // namespace ngs::reptile
