#include "reptile/corrector.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/thread_pool.hpp"

namespace ngs::reptile {
namespace {

/// Working copy of the reads with eligible N's converted, used to build
/// the tables so that spectrum lookups during correction never miss.
seq::ReadSet preconvert(const seq::ReadSet& reads, const ReptileParams& p) {
  seq::ReadSet converted;
  converted.reads = reads.reads;
  const int w = p.effective_ambig_window();
  const int amax = p.effective_ambig_max();
  for (auto& r : converted.reads) {
    const auto L = static_cast<int>(r.bases.size());
    const int win = std::min(w, L);
    if (win <= 0) continue;
    // Prefix sums of the ambiguity indicator.
    std::vector<int> prefix(static_cast<std::size_t>(L) + 1, 0);
    for (int i = 0; i < L; ++i) {
      prefix[static_cast<std::size_t>(i) + 1] =
          prefix[static_cast<std::size_t>(i)] +
          (seq::is_ambiguous(r.bases[static_cast<std::size_t>(i)]) ? 1 : 0);
    }
    for (int i = 0; i < L; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (!seq::is_ambiguous(r.bases[ui])) continue;
      const int s_lo = std::max(0, i - win + 1);
      const int s_hi = std::min(i, L - win);
      int max_in_window = 0;
      for (int s = s_lo; s <= s_hi; ++s) {
        max_in_window =
            std::max(max_in_window, prefix[static_cast<std::size_t>(s + win)] -
                                        prefix[static_cast<std::size_t>(s)]);
      }
      if (max_in_window <= amax) {
        r.bases[ui] = p.default_base;
        if (ui < r.quality.size()) r.quality[ui] = 0;
      }
    }
  }
  return converted;
}

kspec::TileParams tile_params_of(const ReptileParams& p) {
  kspec::TileParams tp;
  tp.k = p.k;
  tp.overlap = p.overlap;
  tp.quality_cutoff = p.quality_cutoff;
  tp.both_strands = true;
  return tp;
}

/// Memo value layout: tag in the top 2 bits (0 = insufficient,
/// 1 = valid, 2 = corrected+quality-gated, 3 = corrected), the corrected
/// tile code in the low 62.
constexpr std::uint64_t kTagShift = 62;
constexpr std::uint64_t kCodeMask = (std::uint64_t{1} << kTagShift) - 1;

}  // namespace

ReptileCorrector::ReptileCorrector(const seq::ReadSet& reads,
                                   ReptileParams params)
    : ReptileCorrector(preconvert(reads, params), params, PreconvertedTag{}) {}

ReptileCorrector::ReptileCorrector(const seq::ReadSet& converted,
                                   ReptileParams params, PreconvertedTag)
    : params_(params),
      spectrum_(kspec::KSpectrum::build(converted, params.k,
                                        /*both_strands=*/true)),
      graph_(spectrum_, params.d),
      tiles_(kspec::TileTable::build(converted, tile_params_of(params))) {
  if (params_.tile_length() > seq::kMaxK) {
    throw std::invalid_argument("ReptileCorrector: tile longer than 32 bases");
  }
}

std::uint64_t ReptileCorrector::convert_ambiguous(
    std::string& bases, std::vector<std::uint8_t>& quality,
    std::vector<int>& prefix) const {
  const int w = params_.effective_ambig_window();
  const int amax = params_.effective_ambig_max();
  const auto L = static_cast<int>(bases.size());
  const int win = std::min(w, L);
  if (win <= 0) return 0;
  prefix.assign(static_cast<std::size_t>(L) + 1, 0);
  for (int i = 0; i < L; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] +
        (seq::is_ambiguous(bases[static_cast<std::size_t>(i)]) ? 1 : 0);
  }
  std::uint64_t converted = 0;
  for (int i = 0; i < L; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (!seq::is_ambiguous(bases[ui])) continue;
    const int s_lo = std::max(0, i - win + 1);
    const int s_hi = std::min(i, L - win);
    int max_in_window = 0;
    for (int s = s_lo; s <= s_hi; ++s) {
      max_in_window =
          std::max(max_in_window, prefix[static_cast<std::size_t>(s + win)] -
                                      prefix[static_cast<std::size_t>(s)]);
    }
    if (max_in_window <= amax) {
      bases[ui] = params_.default_base;
      if (ui < quality.size()) quality[ui] = 0;
      ++converted;
    }
  }
  return converted;
}

void ReptileCorrector::kmer_options(seq::KmerCode code, int d_limit,
                                    Scratch& scratch,
                                    std::vector<seq::KmerCode>& out) const {
  out.push_back(code);
  if (d_limit <= 0) return;
  auto& opt = scratch.opt;
  opt.clear();
  const auto idx = spectrum_.index_of(code);
  if (idx >= 0) {
    // Graph neighbors carry their spectrum index, so the multiplicity is
    // a direct array read — no search per option. The distance check is
    // needed only when the graph was built with a larger d than this
    // call's budget (edges span hd in [1, graph d]).
    const bool check_hd = graph_.d() > d_limit;
    for (const std::uint32_t j :
         graph_.neighbors(static_cast<std::size_t>(idx))) {
      const seq::KmerCode cand = spectrum_.code_at(j);
      if (check_hd && seq::kmer_hamming(cand, code) > d_limit) continue;
      opt.push_back({cand, spectrum_.count_at(j)});
    }
  } else {
    // Novel kmer (not part of the build set): fall back to candidate
    // enumeration, resolved against the spectrum in prefetched batches.
    auto& novel = scratch.novel;
    novel.clear();
    seq::enumerate_neighbors(code, params_.k, d_limit, novel);
    constexpr std::size_t kChunk = 64;
    std::int64_t found[kChunk];
    for (std::size_t base = 0; base < novel.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, novel.size() - base);
      spectrum_.index_of_batch({novel.data() + base, n}, {found, n});
      for (std::size_t i = 0; i < n; ++i) {
        if (found[i] >= 0) {
          opt.push_back({novel[base + i],
                         spectrum_.count_at(static_cast<std::size_t>(found[i]))});
        }
      }
    }
  }
  // Bound the candidate-tile product in repeat-dense neighborhoods: keep
  // the original kmer plus the most abundant neighbors. Sorting on the
  // pre-gathered counts reproduces the historical comparator outcomes
  // (count(a) > count(b)) exactly, without its per-comparison searches.
  if (params_.max_kmer_options > 0 &&
      opt.size() + 1 > params_.max_kmer_options) {
    std::partial_sort(opt.begin(),
                      opt.begin() + static_cast<std::ptrdiff_t>(
                                        params_.max_kmer_options - 1),
                      opt.end(),
                      [](const KmerOption& a, const KmerOption& b) {
                        return a.count > b.count;
                      });
    opt.resize(params_.max_kmer_options - 1);
  }
  for (const KmerOption& o : opt) out.push_back(o.code);
}

ReptileCorrector::TileOutcome ReptileCorrector::correct_tile(
    seq::KmerCode tile, std::span<const std::uint8_t> tile_quality, int d1,
    int d2, Scratch& scratch, TileDecisionCache* cache) const {
  const int T = params_.tile_length();
  TileOutcome outcome;

  // The raw decision depends only on (tile, d1, d2); memoize it when a
  // cache is supplied and the key fits (2T + 4 bits).
  const bool use_cache =
      cache != nullptr && cacheable() && d1 >= 0 && d1 <= 3 && d2 >= 0 &&
      d2 <= 3;
  if (use_cache) {
    const std::uint64_t key =
        (tile << 4) | (static_cast<std::uint64_t>(d1) << 2) |
        static_cast<std::uint64_t>(d2);
    std::uint64_t encoded = 0;
    if (cache->lookup(key, encoded)) {
      const auto tag = static_cast<unsigned>(encoded >> kTagShift);
      outcome.decision = tag == 0 ? TileDecision::kInsufficient
                         : tag == 1 ? TileDecision::kValid
                                    : TileDecision::kCorrected;
      outcome.corrected = encoded & kCodeMask;
      outcome.quality_gated = tag == 2;
    } else {
      outcome = correct_tile_raw(tile, d1, d2, scratch);
      std::uint64_t tag = 0;
      if (outcome.decision == TileDecision::kValid) {
        tag = 1;
      } else if (outcome.decision == TileDecision::kCorrected) {
        tag = outcome.quality_gated ? 2 : 3;
      }
      cache->store(key, (tag << kTagShift) | outcome.corrected);
    }
  } else {
    outcome = correct_tile_raw(tile, d1, d2, scratch);
  }

  // Per-instance quality gate (Algorithm 1, line 14): a strong-branch
  // correction must touch at least one low-confidence base. This is the
  // only read-dependent part of the decision, which is why it stays
  // outside the memo.
  if (outcome.decision == TileDecision::kCorrected && outcome.quality_gated &&
      !tile_quality.empty()) {
    bool touches_low_quality = false;
    for (int i = 0; i < T; ++i) {
      if (seq::kmer_base(tile, T, i) !=
              seq::kmer_base(outcome.corrected, T, i) &&
          tile_quality[static_cast<std::size_t>(i)] < params_.quality_max) {
        touches_low_quality = true;
        break;
      }
    }
    if (!touches_low_quality) return {TileDecision::kInsufficient, 0, false};
  }
  return outcome;
}

ReptileCorrector::TileOutcome ReptileCorrector::correct_tile_raw(
    seq::KmerCode tile, int d1, int d2, Scratch& scratch) const {
  const int k = params_.k;
  const int l = params_.overlap;
  const int T = params_.tile_length();
  const std::uint32_t og_t = tiles_.counts(tile).og;

  // Line 1: overwhelming support validates outright.
  if (og_t >= params_.c_good) return {TileDecision::kValid, 0, false};

  const seq::KmerCode alpha1 = tile >> (2 * (T - k));
  const seq::KmerCode alpha2 = tile & ((seq::KmerCode{1} << (2 * k)) - 1);

  auto& opts1 = scratch.opts1;
  auto& opts2 = scratch.opts2;
  opts1.clear();
  opts2.clear();
  kmer_options(alpha1, d1, scratch, opts1);
  kmer_options(alpha2, d2, scratch, opts2);

  // Enumerate d-mutant tiles present (with high-quality support) in R.
  // The whole cross-product's Og values come from one structured probe:
  // tiles sharing a leading kmer are contiguous in the sorted table, so
  // og_cross does a range find per a1 option plus a short merge instead
  // of a binary search per pair (the former per-candidate lower_bound
  // was pass 2's single hottest call site). Candidate tile codes and
  // Hamming distances are then computed only for the sparse hits.
  auto& cross_og = scratch.cross_og;
  cross_og.resize(opts1.size() * opts2.size());
  tiles_.og_cross(opts1, opts2, cross_og);
  auto& candidates = scratch.candidates;
  candidates.clear();
  std::size_t idx = 0;
  for (const seq::KmerCode a1 : opts1) {
    for (const seq::KmerCode a2 : opts2) {
      const std::uint32_t og = cross_og[idx++];
      if (l > 0) {
        const seq::KmerCode suffix = a1 & ((seq::KmerCode{1} << (2 * l)) - 1);
        const seq::KmerCode prefix = a2 >> (2 * (k - l));
        if (suffix != prefix) continue;
      }
      if (og == 0) continue;
      const seq::KmerCode cand = seq::concat_kmers(a1, k, a2, k, l);
      if (cand == tile) continue;
      candidates.push_back({cand, og, seq::kmer_hamming(cand, tile)});
    }
  }

  // Lines 4-8: no mutant tiles.
  if (candidates.empty()) {
    return og_t >= params_.c_min ? TileOutcome{TileDecision::kValid, 0}
                                 : TileOutcome{TileDecision::kInsufficient, 0};
  }

  if (og_t >= params_.c_min) {
    // Lines 10-15: keep only strongly dominating alternatives.
    const TileCandidate* unique_best = nullptr;
    int min_hd = 0;
    std::size_t dominating = 0;
    for (const auto& c : candidates) {
      if (static_cast<double>(c.og) <
          params_.c_ratio * static_cast<double>(og_t)) {
        continue;
      }
      ++dominating;
      if (dominating == 1 || c.hd < min_hd) {
        min_hd = c.hd;
        unique_best = &c;
      } else if (c.hd == min_hd) {
        unique_best = nullptr;  // ambiguous at the minimal distance
      }
    }
    if (dominating == 0) return {TileDecision::kValid, 0};
    if (unique_best == nullptr) {
      return {TileDecision::kInsufficient, 0, false};  // ambiguous
    }
    // The per-instance low-quality-base gate is applied by the caller.
    return {TileDecision::kCorrected, unique_best->code, true};
  }

  // Lines 17-21: the tile itself is weak; accept a unique trusted mutant.
  const TileCandidate* only = nullptr;
  for (const auto& c : candidates) {
    if (c.og >= params_.c_min) {
      if (only != nullptr) return {TileDecision::kInsufficient, 0};
      only = &c;
    }
  }
  if (only == nullptr) return {TileDecision::kInsufficient, 0};
  return {TileDecision::kCorrected, only->code};
}

void ReptileCorrector::sweep(seq::PackedSeq& bases,
                             const std::vector<std::uint8_t>& quality,
                             CorrectionStats& stats, Scratch& scratch,
                             TileDecisionCache* cache) const {
  const int T = params_.tile_length();
  const int k = params_.k;
  const auto L = static_cast<int>(bases.size());
  if (L < T) return;

  const int advance = T - k;  // suffix-kmer overlap between adjacent tiles
  const int max_iters = 2 * L + 32;
  int pos = 0;
  int d1 = params_.d;
  int d2 = params_.d;
  int frontier = 0;  // validated prefix length
  int stall = 0;

  for (int iter = 0; iter < max_iters && pos + T <= L; ++iter) {
    // Tile extraction is a shift/mask window over the packed words — the
    // N-mask check replaces the historical per-character decode.
    const auto code = bases.window(static_cast<std::size_t>(pos), T);
    TileOutcome outcome{TileDecision::kInsufficient, 0};
    if (code) {
      std::span<const std::uint8_t> q;
      if (quality.size() == bases.size()) {
        q = std::span<const std::uint8_t>(
            quality.data() + pos, static_cast<std::size_t>(T));
      }
      outcome = correct_tile(*code, q, d1, d2, scratch, cache);
    }

    switch (outcome.decision) {
      case TileDecision::kCorrected: {
        ++stats.tiles_corrected;
        for (int i = 0; i < T; ++i) {
          const auto fixed = static_cast<std::uint8_t>(
              seq::kmer_base(outcome.corrected, T, i));
          const auto ui = static_cast<std::size_t>(pos + i);
          if (bases.base_code(ui) != fixed) {
            bases.set_base(ui, fixed);
            ++stats.bases_changed;
          }
        }
        [[fallthrough]];
      }
      case TileDecision::kValid: {
        if (outcome.decision == TileDecision::kValid) ++stats.tiles_valid;
        frontier = pos + T;
        if (frontier >= L) return;
        stall = 0;
        int next = pos + advance;
        if (next + T > L) {
          next = L - T;
          d1 = 1;  // suffix tile: prefix kmer only partially validated
        } else {
          d1 = 0;  // [D1]/[D2]: prefix kmer equals the validated a2
        }
        d2 = params_.d;
        pos = next;
        break;
      }
      case TileDecision::kInsufficient: {
        ++stats.tiles_insufficient;
        ++stall;
        int next;
        if (stall <= 2 && frontier >= T && frontier - T + 1 > pos - T) {
          // [D3a]: slide a tile one base past the validated region.
          next = frontier - T + 1;
          if (next <= pos && frontier >= pos + T) {
            // Already validated past here; step forward instead.
            next = pos + 1;
          }
          d1 = 1;
          d2 = params_.d;
        } else if (stall <= 2 && frontier < T) {
          // No validated prefix yet (5' end): probe forward one base.
          next = pos + 1;
          d1 = params_.d;
          d2 = params_.d;
        } else {
          // [D3b]: jump past the uncorrectable region.
          next = pos + k;
          stall = 0;
          d1 = params_.d;
          d2 = params_.d;
        }
        if (next == pos) next = pos + 1;
        if (next + T > L) {
          if (pos >= L - T) return;  // suffix already tried
          next = L - T;
        }
        pos = next;
        break;
      }
    }
  }
}

seq::Read ReptileCorrector::correct(const seq::Read& read,
                                    CorrectionStats& stats, Scratch& scratch,
                                    TileDecisionCache* cache) const {
  ++stats.reads;
  seq::Read out = read;
  auto& quality = scratch.quality;
  quality = read.quality;
  stats.ambiguous_converted +=
      convert_ambiguous(out.bases, quality, scratch.prefix);

  // The read is packed once here and stays 2-bit until the final decode;
  // both sweeps and the strand flip between them operate on packed words.
  auto& packed = scratch.packed;
  packed.assign(out.bases);

  // 5' -> 3' sweep.
  sweep(packed, quality, stats, scratch, cache);

  // 3' -> 5' sweep via the reverse complement (the tables contain both
  // strands, so lookups are directly valid).
  auto& rc = scratch.rc_packed;
  packed.reverse_complement_into(rc);
  auto& rq = scratch.rq;
  rq.assign(quality.rbegin(), quality.rend());
  sweep(rc, rq, stats, scratch, cache);
  rc.reverse_complement_into(packed);
  // Decode normalizes to uppercase ACGTN — the same canonical form the
  // historical string pipeline's double reverse-complement produced.
  packed.to_string(out.bases);
  return out;
}

std::vector<seq::Read> ReptileCorrector::correct_all(
    const seq::ReadSet& reads, CorrectionStats& stats) const {
  std::vector<seq::Read> out(reads.reads.size());
  std::mutex stats_mutex;
  TileDecisionCache cache(kDefaultTileCacheBytes);
  util::default_pool().parallel_for_blocked(
      0, reads.reads.size(), [&](std::size_t lo, std::size_t hi) {
        CorrectionStats local;
        Scratch scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = correct(reads.reads[i], local, scratch, &cache);
        }
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.merge(local);
      });
  return out;
}

}  // namespace ngs::reptile
