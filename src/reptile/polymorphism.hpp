#pragma once
// Polymorphism (SNP) candidate detection from Reptile's tile tables —
// the Chapter 5 extension: a tile-correction *ambiguity* in which two
// variants of the same tile both carry strong high-quality support is
// evidence of a heterozygous site rather than a sequencing error (an
// error variant would be dominated Cr-fold by its source).

#include <cstdint>
#include <vector>

#include "reptile/corrector.hpp"

namespace ngs::reptile {

struct SnpCandidate {
  seq::KmerCode tile_a = 0;  // the lexicographically smaller variant
  seq::KmerCode tile_b = 0;
  int offset = 0;            // differing position within the tile
  std::uint32_t og_a = 0;
  std::uint32_t og_b = 0;
};

struct SnpParams {
  /// Both variants need at least this much high-quality support.
  std::uint32_t min_support = 5;
  /// Allele balance: max(og)/min(og) must not exceed this (an error
  /// variant is strongly unbalanced against its source).
  double max_imbalance = 4.0;
};

/// Scans every tile of the corrector's table for 1-mutant pairs where
/// both variants pass the support and balance gates. Pairs are reported
/// once (tile_a < tile_b); reverse-complement duplicates are removed.
std::vector<SnpCandidate> detect_polymorphisms(
    const ReptileCorrector& corrector, const SnpParams& params);

}  // namespace ngs::reptile
