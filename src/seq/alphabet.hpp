#pragma once
// DNA alphabet codec: A=0, C=1, G=2, T=3, with 'N' as the ambiguous
// character (Chapter 1: read errors enrich the alphabet to {A,C,G,T,N}).

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ngs::seq {

inline constexpr int kAlphabetSize = 4;
inline constexpr std::uint8_t kInvalidBase = 0xff;

namespace detail {

constexpr std::array<std::uint8_t, 256> make_char_code_table() {
  std::array<std::uint8_t, 256> table{};
  for (auto& entry : table) entry = kInvalidBase;
  table['A'] = table['a'] = 0;
  table['C'] = table['c'] = 1;
  table['G'] = table['g'] = 2;
  table['T'] = table['t'] = 3;
  return table;
}

}  // namespace detail

/// The one alphabet → 2-bit code path: a 256-entry table indexed by the
/// raw character, kInvalidBase for non-ACGT (including 'N'). Shared by
/// the kmer codecs and the packed-read layer so every consumer agrees on
/// case handling and N classification.
inline constexpr std::array<std::uint8_t, 256> kCharToCode =
    detail::make_char_code_table();

/// Maps an ASCII nucleotide to its 2-bit code; kInvalidBase for non-ACGT
/// (including 'N'). Case-insensitive.
constexpr std::uint8_t base_to_code(char c) noexcept {
  return kCharToCode[static_cast<unsigned char>(c)];
}

/// Lossy variant: non-ACGT characters map to code 0 ('A', the Reptile
/// preconversion convention) instead of kInvalidBase.
constexpr std::uint8_t base_to_code_lossy(char c) noexcept {
  const std::uint8_t code = kCharToCode[static_cast<unsigned char>(c)];
  return code == kInvalidBase ? 0 : code;
}

/// Maps a 2-bit code back to its ASCII nucleotide.
constexpr char code_to_base(std::uint8_t code) noexcept {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return kBases[code & 3];
}

constexpr bool is_acgt(char c) noexcept {
  return base_to_code(c) != kInvalidBase;
}

constexpr bool is_ambiguous(char c) noexcept { return !is_acgt(c); }

/// Watson–Crick complement of a 2-bit code (A<->T, C<->G): code ^ 3.
constexpr std::uint8_t complement_code(std::uint8_t code) noexcept {
  return code ^ 3u;
}

constexpr char complement_base(char c) noexcept {
  const std::uint8_t code = base_to_code(c);
  return code == kInvalidBase ? 'N' : code_to_base(complement_code(code));
}

/// Reverse complement of an ASCII sequence; non-ACGT characters map to 'N'.
std::string reverse_complement(std::string_view s);

/// Number of positions at which two equal-length strings differ.
/// Precondition: a.size() == b.size().
std::size_t hamming_distance(std::string_view a, std::string_view b);

/// Count of ambiguous (non-ACGT) characters in s.
std::size_t count_ambiguous(std::string_view s);

}  // namespace ngs::seq
