#pragma once
// 2-bit packed sequences with an N-mask: the pass-2 hot-path read
// representation. A PackedSeq holds one sequence of arbitrary length as
//
//   words_  — 2-bit base codes, 32 bases per 64-bit word, MSB-first
//             (base i of word w sits at bits [62-2*(i%32), 63-2*(i%32)]),
//             so a window's packed code is recovered by two shifts and
//             an OR instead of a per-character decode loop;
//   nmask_  — one bit per base (MSB-first, 64 per word), set when the
//             source character was not ACGT.
//
// The layout makes window(pos, len) — the operation pass 2 performs once
// per tile placement — a handful of ALU ops: extract up to 64 bits
// spanning at most two words, shift down, and consult the same two-word
// extraction on the N-mask to reject ambiguous windows, exactly matching
// encode_kmer on the corresponding substring.
//
// Round-trip semantics: pack(s) followed by to_string yields s with
// every base uppercased and every non-ACGT character replaced by 'N' —
// the same normalization the correction sweep's double
// reverse-complement applied to its output historically, so packed and
// string pipelines emit byte-identical reads.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"

namespace ngs::seq {

class PackedSeq {
 public:
  PackedSeq() = default;

  /// Packs `s`, replacing the previous contents. Reuses the internal
  /// word buffers, so a PackedSeq held in per-worker scratch packs one
  /// read per call with no steady-state allocation.
  void assign(std::string_view s);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// 2-bit code of base i (0 for N positions; check has_n/is_n).
  std::uint8_t base_code(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>(
        (words_[i >> 5] >> (62 - 2 * (i & 31))) & 3u);
  }

  bool is_n(std::size_t i) const noexcept {
    return ((nmask_[i >> 6] >> (63 - (i & 63))) & 1u) != 0;
  }

  /// Packed code of the window [pos, pos+len) with the first base in the
  /// most significant pair (the encode_kmer convention), or nullopt when
  /// the window contains an N. Precondition: len in [1, 32] and
  /// pos + len <= size().
  std::optional<KmerCode> window(std::size_t pos, int len) const noexcept {
    if (has_n(pos, len)) return std::nullopt;
    return window_raw(pos, len);
  }

  /// As window() but ignoring the N-mask (N positions contribute their
  /// stored 2-bit code, which is 0).
  KmerCode window_raw(std::size_t pos, int len) const noexcept {
    const std::size_t w = pos >> 5;
    const unsigned off = 2 * (pos & 31);
    std::uint64_t raw = words_[w] << off;
    if (off != 0 && w + 1 < words_.size()) raw |= words_[w + 1] >> (64 - off);
    return raw >> (64 - 2 * static_cast<unsigned>(len));
  }

  /// True when any base of [pos, pos+len) is an N. Precondition:
  /// len in [1, 64] and pos + len <= size().
  bool has_n(std::size_t pos, int len) const noexcept {
    const std::size_t w = pos >> 6;
    const unsigned off = pos & 63;
    std::uint64_t m = nmask_[w] << off;
    if (off != 0 && w + 1 < nmask_.size()) m |= nmask_[w + 1] >> (64 - off);
    if (len < 64) m >>= (64 - static_cast<unsigned>(len));
    return m != 0;
  }

  /// Overwrites base i with a 2-bit code, clearing any N flag — the
  /// in-place correction write of the packed sweep.
  void set_base(std::size_t i, std::uint8_t code) noexcept {
    const unsigned shift = 62 - 2 * (i & 31);
    std::uint64_t& word = words_[i >> 5];
    word = (word & ~(std::uint64_t{3} << shift)) |
           (static_cast<std::uint64_t>(code & 3u) << shift);
    nmask_[i >> 6] &= ~(std::uint64_t{1} << (63 - (i & 63)));
  }

  /// Decodes into `out` (resized to size()): uppercase ACGT, 'N' for
  /// masked positions.
  void to_string(std::string& out) const;
  std::string to_string() const {
    std::string s;
    to_string(s);
    return s;
  }

  /// Rebuilds `out` as the reverse complement of *this (N positions stay
  /// N). Word-level: each 32-base output chunk is one raw window extract
  /// plus the packed reverse-complement bit kernel.
  void reverse_complement_into(PackedSeq& out) const;

 private:
  /// Number of 64-bit words holding n packed bases (32 per word).
  static std::size_t code_words(std::size_t n) noexcept {
    return (n + 31) / 32;
  }
  static std::size_t mask_words(std::size_t n) noexcept {
    return (n + 63) / 64;
  }
  void resize_buffers(std::size_t n);

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;  // 2-bit codes, MSB-first
  std::vector<std::uint64_t> nmask_;  // 1 bit per base, MSB-first
};

}  // namespace ngs::seq
