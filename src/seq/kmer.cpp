#include "seq/kmer.hpp"

#include <cassert>

namespace ngs::seq {

std::optional<KmerCode> encode_kmer(std::string_view s) {
  assert(s.size() <= static_cast<std::size_t>(kMaxK));
  KmerCode code = 0;
  for (char c : s) {
    const std::uint8_t b = base_to_code(c);
    if (b == kInvalidBase) return std::nullopt;
    code = (code << 2) | b;
  }
  return code;
}

KmerCode encode_kmer_lossy(std::string_view s) {
  assert(s.size() <= static_cast<std::size_t>(kMaxK));
  KmerCode code = 0;
  for (char c : s) {
    code = (code << 2) | base_to_code_lossy(c);
  }
  return code;
}

std::string decode_kmer(KmerCode code, int k) {
  std::string s(static_cast<std::size_t>(k), 'A');
  for (int i = k - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = code_to_base(code & 3u);
    code >>= 2;
  }
  return s;
}

KmerCode reverse_complement(KmerCode code, int k) noexcept {
  // Complement every base, then reverse the 2-bit groups.
  std::uint64_t x = ~code;
  x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
  x = ((x & 0x0f0f0f0f0f0f0f0fULL) << 4) | ((x >> 4) & 0x0f0f0f0f0f0f0f0fULL);
  x = __builtin_bswap64(x);
  return x >> (64 - 2 * k);
}

void extract_kmers(std::string_view s, int k,
                   std::vector<std::pair<KmerCode, std::uint32_t>>& out) {
  if (s.size() < static_cast<std::size_t>(k)) return;
  const KmerCode mask =
      k == 32 ? ~KmerCode{0} : ((KmerCode{1} << (2 * k)) - 1);
  KmerCode code = 0;
  int valid = 0;  // number of consecutive valid bases ending at i
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t b = base_to_code(s[i]);
    if (b == kInvalidBase) {
      valid = 0;
      code = 0;
      continue;
    }
    code = ((code << 2) | b) & mask;
    if (++valid >= k) {
      out.emplace_back(code, static_cast<std::uint32_t>(i + 1 - k));
    }
  }
}

void extract_kmer_codes(std::string_view s, int k,
                        std::vector<KmerCode>& out) {
  if (s.size() < static_cast<std::size_t>(k)) return;
  const KmerCode mask =
      k == 32 ? ~KmerCode{0} : ((KmerCode{1} << (2 * k)) - 1);
  KmerCode code = 0;
  int valid = 0;
  for (char c : s) {
    const std::uint8_t b = base_to_code(c);
    if (b == kInvalidBase) {
      valid = 0;
      code = 0;
      continue;
    }
    code = ((code << 2) | b) & mask;
    if (++valid >= k) out.push_back(code);
  }
}

namespace {

void enumerate_impl(KmerCode code, int k, int d, int first_pos,
                    std::vector<KmerCode>& out) {
  if (d == 0) return;
  for (int i = first_pos; i < k; ++i) {
    const std::uint8_t current = kmer_base(code, k, i);
    for (std::uint8_t b = 0; b < 4; ++b) {
      if (b == current) continue;
      const KmerCode mutated = kmer_with_base(code, k, i, b);
      out.push_back(mutated);
      // Recurse only to the right of i so each multi-mutation set is
      // generated exactly once.
      enumerate_impl(mutated, k, d - 1, i + 1, out);
    }
  }
}

}  // namespace

void enumerate_neighbors(KmerCode code, int k, int d,
                         std::vector<KmerCode>& out) {
  enumerate_impl(code, k, d, 0, out);
}

}  // namespace ngs::seq
