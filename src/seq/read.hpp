#pragma once
// Read and ReadSet: the in-memory representation of a sequencing dataset.
//
// Quality scores are stored as raw Phred values (not ASCII-offset); the
// io module converts on the way in/out. For simulated data, ReadSet also
// carries the per-read ground truth (origin position, strand, error-free
// sequence) that the evaluation module consumes — this replaces the
// paper's RMAP-based approximate truth with exact truth.

#include <cstdint>
#include <string>
#include <vector>

namespace ngs::seq {

struct Read {
  std::string id;
  std::string bases;
  std::vector<std::uint8_t> quality;  // Phred scores; empty if unavailable

  std::size_t length() const noexcept { return bases.size(); }
};

/// Ground truth for one simulated read.
struct ReadTruth {
  std::uint64_t genome_pos = 0;  // 0-based origin on the forward strand
  bool reverse_strand = false;
  std::string true_bases;        // error-free read as sequenced (read orientation)
};

struct ReadSet {
  std::vector<Read> reads;
  std::vector<ReadTruth> truth;  // parallel to reads; empty for real data

  bool has_truth() const noexcept {
    return !truth.empty() && truth.size() == reads.size();
  }

  std::size_t size() const noexcept { return reads.size(); }

  std::uint64_t total_bases() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : reads) n += r.bases.size();
    return n;
  }
};

}  // namespace ngs::seq
