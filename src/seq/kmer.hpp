#pragma once
// 2-bit packed kmer codec for k <= 32, plus Hamming-distance and
// reverse-complement operations on packed codes.
//
// Chapter 2 works with 10 <= k <= 16 (so that 4^k > |G|), and tiles of
// length |t| = 2k - l <= 32, so a single 64-bit word holds every object
// the algorithms manipulate. The most significant 2-bit pair holds the
// first (5'-most) base, so lexicographic order of strings equals numeric
// order of codes — the sorted k-spectrum is then binary-searchable.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"

namespace ngs::seq {

using KmerCode = std::uint64_t;

inline constexpr int kMaxK = 32;

/// Encodes s[0..k) into a packed code. Returns nullopt if any character is
/// ambiguous. Precondition: s.size() <= kMaxK.
std::optional<KmerCode> encode_kmer(std::string_view s);

/// Encodes, mapping ambiguous characters to 'A' (the Reptile convention:
/// non-ACGT characters are initially converted and later validated or
/// corrected by the algorithm).
KmerCode encode_kmer_lossy(std::string_view s);

/// Decodes a packed code of length k back to an ASCII string.
std::string decode_kmer(KmerCode code, int k);

/// Base at position i (0 = 5'-most) of a k-length code.
constexpr std::uint8_t kmer_base(KmerCode code, int k, int i) noexcept {
  return static_cast<std::uint8_t>((code >> (2 * (k - 1 - i))) & 3u);
}

/// Returns the code with position i replaced by `base`.
constexpr KmerCode kmer_with_base(KmerCode code, int k, int i,
                                  std::uint8_t base) noexcept {
  const int shift = 2 * (k - 1 - i);
  return (code & ~(KmerCode{3} << shift)) |
         (static_cast<KmerCode>(base & 3u) << shift);
}

/// Reverse complement of a k-length packed code.
KmerCode reverse_complement(KmerCode code, int k) noexcept;

/// Canonical form: min(code, revcomp(code)).
inline KmerCode canonical(KmerCode code, int k) noexcept {
  const KmerCode rc = reverse_complement(code, k);
  return code < rc ? code : rc;
}

/// Hamming distance between two k-length packed codes (branch-free).
constexpr int kmer_hamming(KmerCode a, KmerCode b) noexcept {
  std::uint64_t x = a ^ b;
  x = (x | (x >> 1)) & 0x5555555555555555ULL;
  return __builtin_popcountll(x);
}

/// Concatenation a||_l b of a k1-mer and a k2-mer overlapping by l bases
/// (the paper's l-concatenation). Precondition: the suffix-l of a equals
/// the prefix-l of b, and k1 + k2 - l <= 32. Returns the packed
/// (k1+k2-l)-mer.
constexpr KmerCode concat_kmers(KmerCode a, int /*k1*/, KmerCode b, int k2,
                                int l) noexcept {
  return (a << (2 * (k2 - l))) |
         (b & ((k2 - l) == 32 ? ~KmerCode{0}
                              : ((KmerCode{1} << (2 * (k2 - l))) - 1)));
}

/// Number of k-length windows of a sequence of length `len` (0 when the
/// sequence is shorter than k). Upper-bounds the kmer instances a strand
/// can contribute — windows with ambiguous bases are skipped on
/// extraction — so spectrum builders use it to size buffers tightly
/// instead of over-reserving by total bases.
constexpr std::size_t max_kmer_windows(std::size_t len, int k) noexcept {
  return len >= static_cast<std::size_t>(k) ? len - static_cast<std::size_t>(k) + 1 : 0;
}

/// Rolling extraction of all k-mers of s. Windows containing ambiguous
/// characters are skipped. Appends (code, position) pairs.
void extract_kmers(std::string_view s, int k,
                   std::vector<std::pair<KmerCode, std::uint32_t>>& out);

/// As above but codes only.
void extract_kmer_codes(std::string_view s, int k,
                        std::vector<KmerCode>& out);

/// All packed codes within Hamming distance exactly 1..d of `code`
/// (the complete d-neighborhood N^dc minus the kmer itself). Appends to
/// out. Sizes: sum_{e=1..d} C(k,e)*3^e.
void enumerate_neighbors(KmerCode code, int k, int d,
                         std::vector<KmerCode>& out);

}  // namespace ngs::seq
