#include "seq/packed.hpp"

#include <array>

namespace ngs::seq {

namespace {

constexpr std::array<std::uint8_t, 256> make_bit_reverse_table() {
  std::array<std::uint8_t, 256> table{};
  for (int v = 0; v < 256; ++v) {
    std::uint8_t r = 0;
    for (int b = 0; b < 8; ++b) {
      r = static_cast<std::uint8_t>((r << 1) | ((v >> b) & 1));
    }
    table[static_cast<std::size_t>(v)] = r;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> kBitReverse = make_bit_reverse_table();

std::uint64_t reverse_bits64(std::uint64_t x) noexcept {
  std::uint64_t r = 0;
  for (int byte = 0; byte < 8; ++byte) {
    r = (r << 8) | kBitReverse[(x >> (8 * byte)) & 0xff];
  }
  return r;
}

}  // namespace

void PackedSeq::resize_buffers(std::size_t n) {
  size_ = n;
  words_.resize(code_words(n));
  nmask_.resize(mask_words(n));
}

void PackedSeq::assign(std::string_view s) {
  resize_buffers(s.size());
  std::uint64_t code_word = 0;
  std::uint64_t mask_word = 0;
  std::size_t cw = 0;
  std::size_t mw = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t code = kCharToCode[static_cast<unsigned char>(s[i])];
    if (code == kInvalidBase) {
      mask_word |= std::uint64_t{1} << (63 - (i & 63));
    } else {
      code_word |= static_cast<std::uint64_t>(code) << (62 - 2 * (i & 31));
    }
    if ((i & 31) == 31) {
      words_[cw++] = code_word;
      code_word = 0;
    }
    if ((i & 63) == 63) {
      nmask_[mw++] = mask_word;
      mask_word = 0;
    }
  }
  if ((s.size() & 31) != 0) words_[cw] = code_word;
  if ((s.size() & 63) != 0) nmask_[mw] = mask_word;
}

void PackedSeq::to_string(std::string& out) const {
  out.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i] = is_n(i) ? 'N' : code_to_base(base_code(i));
  }
}

void PackedSeq::reverse_complement_into(PackedSeq& out) const {
  const std::size_t n = size_;
  out.resize_buffers(n);
  // Codes: output chunk [a, a+L) is the packed reverse complement of the
  // input window [n-a-L, n-a), stored MSB-first in the output word.
  for (std::size_t a = 0, w = 0; a < n; a += 32, ++w) {
    const int len = static_cast<int>(n - a < 32 ? n - a : 32);
    const KmerCode raw = window_raw(n - a - static_cast<std::size_t>(len), len);
    const KmerCode rc = seq::reverse_complement(raw, len);
    out.words_[w] = rc << (64 - 2 * static_cast<unsigned>(len));
  }
  // N-mask: output chunk bits are the bit-reversed input mask window.
  for (std::size_t a = 0, w = 0; a < n; a += 64, ++w) {
    const unsigned len = static_cast<unsigned>(n - a < 64 ? n - a : 64);
    const std::size_t pos = n - a - len;
    const std::size_t iw = pos >> 6;
    const unsigned off = pos & 63;
    std::uint64_t m = nmask_[iw] << off;
    if (off != 0 && iw + 1 < nmask_.size()) m |= nmask_[iw + 1] >> (64 - off);
    if (len < 64) m >>= (64 - len);
    out.nmask_[w] = reverse_bits64(m);
  }
}

}  // namespace ngs::seq
