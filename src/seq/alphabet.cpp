#include "seq/alphabet.hpp"

#include <cassert>

namespace ngs::seq {

std::string reverse_complement(std::string_view s) {
  std::string out;
  out.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[s.size() - 1 - i] = complement_base(s[i]);
  }
  return out;
}

std::size_t hamming_distance(std::string_view a, std::string_view b) {
  assert(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]);
  return d;
}

std::size_t count_ambiguous(std::string_view s) {
  std::size_t n = 0;
  for (char c : s) n += is_ambiguous(c);
  return n;
}

}  // namespace ngs::seq
