#include "mapper/mismatch_mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"

namespace ngs::mapper {

MismatchMapper::MismatchMapper(std::string_view genome, int seed_length)
    : genome_(genome), seed_length_(std::clamp(seed_length, 6, 16)) {
  const std::size_t q = static_cast<std::size_t>(seed_length_);
  if (genome.size() < q) {
    throw std::invalid_argument("MismatchMapper: genome shorter than seed");
  }
  const std::size_t buckets = std::size_t{1} << (2 * q);
  const std::size_t n = genome.size() - q + 1;

  // Counting-sort layout of genome positions by their seed value.
  std::vector<std::uint32_t> counts(buckets + 1, 0);
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> grams;
  grams.reserve(n);
  seq::extract_kmers(genome, seed_length_, grams);
  for (const auto& [code, pos] : grams) {
    (void)pos;
    ++counts[code + 1];
  }
  for (std::size_t i = 1; i <= buckets; ++i) counts[i] += counts[i - 1];
  bucket_start_ = counts;
  positions_.resize(grams.size());
  std::vector<std::uint32_t> cursor(bucket_start_.begin(),
                                    bucket_start_.end() - 1);
  for (const auto& [code, pos] : grams) {
    positions_[cursor[code]++] = pos;
  }
}

int MismatchMapper::seed_length_for(std::size_t read_length,
                                    int max_mismatches) {
  return static_cast<int>(read_length) / (max_mismatches + 1);
}

void MismatchMapper::collect_candidates(
    std::string_view oriented_read,
    std::vector<std::uint64_t>& candidates) const {
  const auto q = static_cast<std::size_t>(seed_length_);
  const std::size_t L = oriented_read.size();
  if (L < q) return;
  // Disjoint seeds at offsets 0, q, 2q, ... plus a final seed flush with
  // the read end so the tail is covered.
  std::vector<std::size_t> offsets;
  for (std::size_t off = 0; off + q <= L; off += q) offsets.push_back(off);
  if (offsets.empty() || offsets.back() + q < L) offsets.push_back(L - q);

  for (const std::size_t off : offsets) {
    const auto code = seq::encode_kmer(oriented_read.substr(off, q));
    if (!code) continue;  // seed spans an ambiguous base
    const std::uint32_t lo = bucket_start_[*code];
    const std::uint32_t hi = bucket_start_[*code + 1];
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::uint64_t p = positions_[i];
      if (p >= off && p - off + L <= genome_.size()) {
        candidates.push_back(p - off);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
}

std::vector<Hit> MismatchMapper::map_all(std::string_view read, int max_mm,
                                         std::size_t max_hits) const {
  std::vector<Hit> hits;
  std::vector<std::uint64_t> candidates;
  const std::string rc = seq::reverse_complement(read);

  for (const bool reverse : {false, true}) {
    const std::string_view oriented = reverse ? std::string_view(rc) : read;
    candidates.clear();
    collect_candidates(oriented, candidates);
    const auto words = PackedSequence::pack_words(oriented);
    for (const std::uint64_t pos : candidates) {
      const int mm =
          genome_.mismatches(pos, words, oriented.size(), max_mm);
      if (mm <= max_mm) {
        hits.push_back(Hit{pos, reverse, mm});
        if (hits.size() >= max_hits) return hits;
      }
    }
  }
  return hits;
}

MapResult MismatchMapper::classify(std::string_view read, int max_mm) const {
  const auto hits = map_all(read, max_mm, 64);
  if (hits.empty()) return {MapClass::kUnmapped, {}};
  const auto best = std::min_element(
      hits.begin(), hits.end(),
      [](const Hit& a, const Hit& b) { return a.mismatches < b.mismatches; });
  std::size_t ties = 0;
  for (const auto& h : hits) ties += (h.mismatches == best->mismatches);
  return {ties == 1 ? MapClass::kUnique : MapClass::kAmbiguous, *best};
}

MappingStats map_read_set(const MismatchMapper& mapper,
                          const seq::ReadSet& reads, int max_mm) {
  MappingStats stats;
  for (const auto& r : reads.reads) {
    const auto result = mapper.classify(r.bases, max_mm);
    ++stats.total;
    switch (result.cls) {
      case MapClass::kUnique: ++stats.unique; break;
      case MapClass::kAmbiguous: ++stats.ambiguous; break;
      case MapClass::kUnmapped: ++stats.unmapped; break;
    }
  }
  return stats;
}

sim::ErrorModel estimate_error_model(const MismatchMapper& mapper,
                                     std::string_view genome,
                                     const seq::ReadSet& reads, int max_mm) {
  std::size_t max_len = 0;
  for (const auto& r : reads.reads) max_len = std::max(max_len, r.length());
  std::vector<std::array<std::array<std::uint64_t, 4>, 4>> counts(
      max_len, {{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}}});

  for (const auto& r : reads.reads) {
    const auto result = mapper.classify(r.bases, max_mm);
    if (result.cls != MapClass::kUnique) continue;
    const auto& hit = result.best;
    const std::size_t L = r.length();
    for (std::size_t i = 0; i < L; ++i) {
      const char read_base = r.bases[i];
      if (!seq::is_acgt(read_base)) continue;
      // Genome base in read orientation: for reverse hits, read position i
      // sequenced the complement of genome position pos + L - 1 - i.
      char true_base;
      if (!hit.reverse) {
        true_base = genome[hit.pos + i];
      } else {
        true_base = seq::complement_base(genome[hit.pos + L - 1 - i]);
      }
      if (!seq::is_acgt(true_base)) continue;
      ++counts[i][seq::base_to_code(true_base)][seq::base_to_code(read_base)];
    }
  }
  return sim::ErrorModel::from_counts(counts);
}

}  // namespace ngs::mapper
