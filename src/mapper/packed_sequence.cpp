#include "mapper/packed_sequence.hpp"

#include "seq/alphabet.hpp"

namespace ngs::mapper {

PackedSequence::PackedSequence(std::string_view s) : size_(s.size()) {
  words_.assign(size_ / 32 + 2, 0);  // +2: window() may read one past
  for (std::size_t i = 0; i < size_; ++i) {
    const std::uint8_t b = seq::base_to_code(s[i]);
    const std::uint64_t code = b == seq::kInvalidBase ? 0u : b;
    words_[i >> 5] |= code << (2 * (i & 31));
  }
}

std::uint64_t PackedSequence::window(std::size_t pos) const noexcept {
  const std::size_t w = pos >> 5;
  const unsigned shift = 2 * (pos & 31);
  std::uint64_t lo = words_[w] >> shift;
  if (shift != 0) lo |= words_[w + 1] << (64 - shift);
  return lo;
}

int PackedSequence::mismatches(std::size_t pos,
                               const std::vector<std::uint64_t>& other_words,
                               std::size_t len, int cap) const noexcept {
  int mm = 0;
  std::size_t done = 0;
  for (std::size_t w = 0; done < len; ++w, done += 32) {
    const std::size_t chunk = std::min<std::size_t>(32, len - done);
    std::uint64_t x = window(pos + done) ^ other_words[w];
    if (chunk < 32) x &= (std::uint64_t{1} << (2 * chunk)) - 1;
    x = (x | (x >> 1)) & 0x5555555555555555ULL;
    mm += __builtin_popcountll(x);
    if (mm > cap) return mm;
  }
  return mm;
}

std::vector<std::uint64_t> PackedSequence::pack_words(std::string_view s) {
  std::vector<std::uint64_t> words(s.size() / 32 + 1, 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t b = seq::base_to_code(s[i]);
    const std::uint64_t code = b == seq::kInvalidBase ? 0u : b;
    words[i >> 5] |= code << (2 * (i & 31));
  }
  return words;
}

}  // namespace ngs::mapper
