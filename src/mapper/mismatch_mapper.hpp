#pragma once
// RMAP-like short-read mapper: full-sensitivity mapping of a read to a
// reference allowing up to m substitutions, reporting unique / ambiguous
// / unmapped status (the evaluation instrument of Table 2.2 and the
// error-model estimation procedure of Sec. 3.4.1).
//
// Strategy: pigeonhole seeding. A read with <= m mismatches contains at
// least one exact seed among m+1 disjoint seeds; each seed is looked up
// in a genome q-gram index and every candidate placement is verified with
// the packed-window Hamming counter. Both strands are searched.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mapper/packed_sequence.hpp"
#include "seq/read.hpp"
#include "sim/error_model.hpp"

namespace ngs::mapper {

struct Hit {
  std::uint64_t pos = 0;    // 0-based on the forward strand
  bool reverse = false;
  int mismatches = 0;
};

enum class MapClass { kUnique, kAmbiguous, kUnmapped };

struct MapResult {
  MapClass cls = MapClass::kUnmapped;
  Hit best;  // valid when cls != kUnmapped
};

class MismatchMapper {
 public:
  /// Indexes the genome with q-grams of `seed_length` (clamped to
  /// [6, 16]). Smaller seeds preserve sensitivity for higher mismatch
  /// budgets on short reads; see seed_length_for().
  MismatchMapper(std::string_view genome, int seed_length = 12);

  /// Largest seed length guaranteeing full sensitivity for a read of
  /// length L with at most m mismatches (pigeonhole): floor(L / (m+1)).
  static int seed_length_for(std::size_t read_length, int max_mismatches);

  /// All distinct placements with <= max_mm mismatches (up to max_hits).
  std::vector<Hit> map_all(std::string_view read, int max_mm,
                           std::size_t max_hits = 16) const;

  /// RMAP-style classification: unique if exactly one placement achieves
  /// the minimum mismatch count within budget; ambiguous if several do.
  MapResult classify(std::string_view read, int max_mm) const;

  std::size_t genome_size() const noexcept { return genome_.size(); }

 private:
  void collect_candidates(std::string_view oriented_read,
                          std::vector<std::uint64_t>& candidates) const;

  PackedSequence genome_;
  int seed_length_;
  // q-gram index: bucket offsets (counting sort layout) + positions.
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> positions_;
};

/// Statistics for Table 2.2: fraction of reads uniquely / ambiguously
/// mapped at a mismatch budget.
struct MappingStats {
  std::uint64_t total = 0;
  std::uint64_t unique = 0;
  std::uint64_t ambiguous = 0;
  std::uint64_t unmapped = 0;
};

MappingStats map_read_set(const MismatchMapper& mapper,
                          const seq::ReadSet& reads, int max_mm);

/// Estimates the position-specific misread matrices M from uniquely
/// mapped reads (Sec. 3.4.1): counts[i][a][b] += 1 whenever genome base a
/// was read as b at read position i. Returns the smoothed ErrorModel.
sim::ErrorModel estimate_error_model(const MismatchMapper& mapper,
                                     std::string_view genome,
                                     const seq::ReadSet& reads, int max_mm);

}  // namespace ngs::mapper
