#pragma once
// 2-bit packed long sequence with O(1) extraction of 32-base windows —
// the verification substrate of the mismatch mapper: Hamming distance of
// a read against a genome window costs ~L/32 XOR+popcount operations.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ngs::mapper {

class PackedSequence {
 public:
  PackedSequence() = default;

  /// Packs the sequence; ambiguous characters are stored as 'A'.
  explicit PackedSequence(std::string_view s);

  std::size_t size() const noexcept { return size_; }

  std::uint8_t base(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>((words_[i >> 5] >> (2 * (i & 31))) & 3u);
  }

  /// 32 bases starting at pos, packed LSB-first (base pos in bits 0..1).
  /// Positions past the end read as zero.
  std::uint64_t window(std::size_t pos) const noexcept;

  /// Number of mismatching bases between this sequence's window
  /// [pos, pos+len) and `other_words` (packed LSB-first, length `len`).
  /// Early-exits once the count exceeds `cap`.
  int mismatches(std::size_t pos, const std::vector<std::uint64_t>& other_words,
                 std::size_t len, int cap) const noexcept;

  /// Packs an ASCII read into LSB-first words for use with mismatches().
  static std::vector<std::uint64_t> pack_words(std::string_view s);

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ngs::mapper
