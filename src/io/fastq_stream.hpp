#pragma once
// Incremental FASTQ reading for the streaming correction pipeline
// (core::CorrectionPipeline): records are parsed one at a time or in
// bounded batches, so huge inputs never have to be materialized as a
// whole seq::ReadSet. Parsing semantics (error conditions, CR stripping,
// Phred offset) are identical to io::read_fastq, which is implemented on
// top of this reader.

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "seq/read.hpp"

namespace ngs::io {

class FastqStreamReader {
 public:
  /// Reads from a caller-owned stream (not copied; must outlive the
  /// reader).
  explicit FastqStreamReader(std::istream& is);

  /// Opens `path` and owns the file stream. Throws std::runtime_error if
  /// the file cannot be opened.
  explicit FastqStreamReader(const std::string& path);

  /// Parses the next record into `read`. Returns false at clean EOF.
  /// Throws std::runtime_error on malformed input (truncated record,
  /// missing '+' separator, sequence/quality length mismatch, bad
  /// header, quality below the Sanger offset).
  bool next(seq::Read& read);

  /// Appends up to `max_reads` records to `out`; returns how many were
  /// appended (0 at EOF). `out` is not cleared.
  std::size_t read_batch(std::vector<seq::Read>& out, std::size_t max_reads);

  /// Total records parsed so far.
  std::uint64_t records() const noexcept { return records_; }

 private:
  std::unique_ptr<std::istream> owned_;  // set only for the path ctor
  std::istream* is_;
  std::uint64_t records_ = 0;
  // Scratch lines reused across records to avoid per-record allocation.
  std::string header_, bases_, plus_, qual_;
};

}  // namespace ngs::io
