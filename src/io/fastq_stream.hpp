#pragma once
// Incremental FASTQ reading for the streaming correction pipeline
// (core::CorrectionPipeline): records are parsed one at a time or in
// bounded batches, so huge inputs never have to be materialized as a
// whole seq::ReadSet. Parsing semantics (error conditions, CR stripping,
// Phred offset) are identical to io::read_fastq, which is implemented on
// top of this reader.
//
// Failure model: every error is a typed ngs::Error whose message names
// the source, record number, and line number ("reads.fastq: record 12
// (line 47): ..."). Malformed records raise kParse; with
// BadRecordPolicy::kSkip the reader instead counts the record, resyncs
// to the next plausible header line, and keeps going — the tolerant
// mode behind ngs-correct --on-bad-record skip. Stream-level I/O
// failures (and the io.fastq.* injection sites, see fault::sites) raise
// kIo regardless of policy.

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "util/error.hpp"

namespace ngs::io {

/// What to do when a malformed FASTQ record is encountered.
enum class BadRecordPolicy {
  kFail,  // throw ngs::Error(kParse) with the record's location
  kSkip,  // count it, resync to the next header, continue
};

/// Opens `path` for reading; throws ngs::Error(kIo) naming the path on
/// failure. This is the shared open primitive (injection site
/// io.fastq.open) used by the reader, io::read_* and the pipeline.
std::unique_ptr<std::istream> open_input_stream(const std::string& path);

class FastqStreamReader {
 public:
  /// Reads from a caller-owned stream (not copied; must outlive the
  /// reader). `name` labels the source in error messages.
  explicit FastqStreamReader(std::istream& is,
                             std::string name = "<stream>");

  /// Opens `path` and owns the file stream. Throws ngs::Error(kIo) if
  /// the file cannot be opened.
  explicit FastqStreamReader(const std::string& path);

  /// Policy for malformed records (default kFail).
  void set_bad_record_policy(BadRecordPolicy policy) noexcept {
    policy_ = policy;
  }
  BadRecordPolicy bad_record_policy() const noexcept { return policy_; }

  /// Parses the next record into `read`. Returns false at clean EOF.
  /// Throws ngs::Error(kParse) on malformed input (truncated record,
  /// missing '+' separator, sequence/quality length mismatch, bad
  /// header, quality below the Sanger offset) under kFail, or skips and
  /// keeps scanning under kSkip; ngs::Error(kIo) on stream failure.
  bool next(seq::Read& read);

  /// Appends up to `max_reads` records to `out`; returns how many were
  /// appended (0 at EOF). `out` is not cleared.
  std::size_t read_batch(std::vector<seq::Read>& out, std::size_t max_reads);

  /// Total records parsed so far.
  std::uint64_t records() const noexcept { return records_; }

  /// Input bytes consumed so far (line bytes + newlines; CRs included).
  std::uint64_t bytes_consumed() const noexcept { return bytes_; }

  /// Cumulative wall time spent inside read_batch() — the reader
  /// stage's busy time in the overlapped pipeline's stall/utilization
  /// accounting (one timer sample per batch, not per record).
  double parse_seconds() const noexcept { return parse_seconds_; }

  /// Malformed records skipped so far (kSkip policy only).
  std::uint64_t records_skipped() const noexcept { return skipped_; }

  /// 1-based number of the last input line consumed.
  std::uint64_t line() const noexcept { return line_; }

  /// Source label used in error messages.
  const std::string& name() const noexcept { return name_; }

 private:
  bool parse_record(seq::Read& read);
  bool resync();
  bool getline_counted(std::string& out);
  [[noreturn]] void fail_parse(const std::string& detail) const;

  std::unique_ptr<std::istream> owned_;  // set only for the path ctor
  std::istream* is_;
  std::string name_;
  std::uint64_t records_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t line_ = 0;
  std::uint64_t bytes_ = 0;
  double parse_seconds_ = 0.0;
  BadRecordPolicy policy_ = BadRecordPolicy::kFail;
  bool pending_header_ = false;  // header_ holds a resynced header line
  // Scratch lines reused across records to avoid per-record allocation.
  std::string header_, bases_, plus_, qual_;
};

}  // namespace ngs::io
