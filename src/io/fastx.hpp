#pragma once
// FASTA / FASTQ readers and writers.
//
// The benches exchange simulated datasets through standard formats so the
// library is usable on real data unchanged. Phred quality is encoded with
// the Sanger +33 offset.

#include <iosfwd>
#include <span>
#include <string>

#include "seq/read.hpp"

namespace ngs::io {

inline constexpr int kPhredOffset = 33;

/// Parses FASTQ from a stream into a ReadSet. Throws ngs::Error
/// (kind kParse, a std::runtime_error) on malformed records (truncated
/// record, length mismatch, bad header), with the source, record
/// number, and line number in the message.
seq::ReadSet read_fastq(std::istream& is);
seq::ReadSet read_fastq_file(const std::string& path);

/// Parses (multi-line) FASTA; quality vectors are left empty. `name`
/// labels the source in parse-error messages.
seq::ReadSet read_fasta(std::istream& is,
                        const std::string& name = "<stream>");
seq::ReadSet read_fasta_file(const std::string& path);

/// Writes FASTQ. Reads without quality get a constant placeholder score.
/// The span overload is the batched-write primitive of the streaming
/// correction pipeline: batches append to one stream without ever
/// forming a ReadSet.
void write_fastq(std::ostream& os, std::span<const seq::Read> reads,
                 std::uint8_t default_quality = 30);
void write_fastq(std::ostream& os, const seq::ReadSet& reads,
                 std::uint8_t default_quality = 30);
void write_fastq_file(const std::string& path, const seq::ReadSet& reads,
                      std::uint8_t default_quality = 30);

/// Writes FASTA with the given line width (0 = single line).
void write_fasta(std::ostream& os, const seq::ReadSet& reads,
                 std::size_t line_width = 70);
void write_fasta_file(const std::string& path, const seq::ReadSet& reads,
                      std::size_t line_width = 70);

}  // namespace ngs::io
