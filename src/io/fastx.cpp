#include "io/fastx.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "io/fastq_stream.hpp"
#include "util/error.hpp"

namespace ngs::io {
namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::ofstream open_output(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw Error(ErrorKind::kIo, "io.open",
                "cannot open for writing: " + path);
  }
  return os;
}

seq::ReadSet read_fastq_named(std::istream& is, const std::string& name) {
  seq::ReadSet set;
  FastqStreamReader reader(is, name);
  seq::Read read;
  while (reader.next(read)) {
    set.reads.push_back(std::move(read));
    read = seq::Read{};
  }
  return set;
}

}  // namespace

seq::ReadSet read_fastq(std::istream& is) {
  return read_fastq_named(is, "<stream>");
}

seq::ReadSet read_fastq_file(const std::string& path) {
  auto is = open_input_stream(path);
  return read_fastq_named(*is, path);
}

seq::ReadSet read_fasta(std::istream& is, const std::string& name) {
  seq::ReadSet set;
  std::string line;
  std::uint64_t lineno = 0;
  seq::Read current;
  bool in_record = false;
  auto flush = [&] {
    if (in_record) set.reads.push_back(std::move(current));
    current = seq::Read{};
  };
  while (std::getline(is, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      current.id = line.substr(1);
    } else {
      if (!in_record) {
        throw Error(ErrorKind::kParse, "io.fasta.parse",
                    name + ": line " + std::to_string(lineno) +
                        ": FASTA: sequence before first header");
      }
      current.bases += line;
    }
  }
  flush();
  return set;
}

seq::ReadSet read_fasta_file(const std::string& path) {
  auto is = open_input_stream(path);
  return read_fasta(*is, path);
}

void write_fastq(std::ostream& os, std::span<const seq::Read> reads,
                 std::uint8_t default_quality) {
  for (const auto& r : reads) {
    os << '@' << r.id << '\n' << r.bases << "\n+\n";
    if (r.quality.size() == r.bases.size()) {
      for (std::uint8_t q : r.quality) {
        os << static_cast<char>(q + kPhredOffset);
      }
    } else {
      for (std::size_t i = 0; i < r.bases.size(); ++i) {
        os << static_cast<char>(default_quality + kPhredOffset);
      }
    }
    os << '\n';
  }
}

void write_fastq(std::ostream& os, const seq::ReadSet& reads,
                 std::uint8_t default_quality) {
  write_fastq(os, std::span<const seq::Read>(reads.reads), default_quality);
}

void write_fastq_file(const std::string& path, const seq::ReadSet& reads,
                      std::uint8_t default_quality) {
  auto os = open_output(path);
  write_fastq(os, reads, default_quality);
}

void write_fasta(std::ostream& os, const seq::ReadSet& reads,
                 std::size_t line_width) {
  for (const auto& r : reads.reads) {
    os << '>' << r.id << '\n';
    if (line_width == 0) {
      os << r.bases << '\n';
    } else {
      for (std::size_t i = 0; i < r.bases.size(); i += line_width) {
        os << r.bases.substr(i, line_width) << '\n';
      }
    }
  }
}

void write_fasta_file(const std::string& path, const seq::ReadSet& reads,
                      std::size_t line_width) {
  auto os = open_output(path);
  write_fasta(os, reads, line_width);
}

}  // namespace ngs::io
