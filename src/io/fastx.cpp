#include "io/fastx.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ngs::io {
namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::ifstream open_input(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return is;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}

}  // namespace

seq::ReadSet read_fastq(std::istream& is) {
  seq::ReadSet set;
  std::string header, bases, plus, qual;
  while (std::getline(is, header)) {
    strip_cr(header);
    if (header.empty()) continue;
    if (header[0] != '@') {
      throw std::runtime_error("FASTQ: expected '@' header, got: " + header);
    }
    if (!std::getline(is, bases) || !std::getline(is, plus) ||
        !std::getline(is, qual)) {
      throw std::runtime_error("FASTQ: truncated record: " + header);
    }
    strip_cr(bases);
    strip_cr(plus);
    strip_cr(qual);
    if (plus.empty() || plus[0] != '+') {
      throw std::runtime_error("FASTQ: expected '+' separator: " + header);
    }
    if (bases.size() != qual.size()) {
      throw std::runtime_error("FASTQ: sequence/quality length mismatch: " +
                               header);
    }
    seq::Read read;
    read.id = header.substr(1);
    read.bases = bases;
    read.quality.reserve(qual.size());
    for (char c : qual) {
      const int q = static_cast<unsigned char>(c) - kPhredOffset;
      if (q < 0) throw std::runtime_error("FASTQ: quality below offset");
      read.quality.push_back(static_cast<std::uint8_t>(q));
    }
    set.reads.push_back(std::move(read));
  }
  return set;
}

seq::ReadSet read_fastq_file(const std::string& path) {
  auto is = open_input(path);
  return read_fastq(is);
}

seq::ReadSet read_fasta(std::istream& is) {
  seq::ReadSet set;
  std::string line;
  seq::Read current;
  bool in_record = false;
  auto flush = [&] {
    if (in_record) set.reads.push_back(std::move(current));
    current = seq::Read{};
  };
  while (std::getline(is, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      current.id = line.substr(1);
    } else {
      if (!in_record) {
        throw std::runtime_error("FASTA: sequence before first header");
      }
      current.bases += line;
    }
  }
  flush();
  return set;
}

seq::ReadSet read_fasta_file(const std::string& path) {
  auto is = open_input(path);
  return read_fasta(is);
}

void write_fastq(std::ostream& os, const seq::ReadSet& reads,
                 std::uint8_t default_quality) {
  for (const auto& r : reads.reads) {
    os << '@' << r.id << '\n' << r.bases << "\n+\n";
    if (r.quality.size() == r.bases.size()) {
      for (std::uint8_t q : r.quality) {
        os << static_cast<char>(q + kPhredOffset);
      }
    } else {
      for (std::size_t i = 0; i < r.bases.size(); ++i) {
        os << static_cast<char>(default_quality + kPhredOffset);
      }
    }
    os << '\n';
  }
}

void write_fastq_file(const std::string& path, const seq::ReadSet& reads,
                      std::uint8_t default_quality) {
  auto os = open_output(path);
  write_fastq(os, reads, default_quality);
}

void write_fasta(std::ostream& os, const seq::ReadSet& reads,
                 std::size_t line_width) {
  for (const auto& r : reads.reads) {
    os << '>' << r.id << '\n';
    if (line_width == 0) {
      os << r.bases << '\n';
    } else {
      for (std::size_t i = 0; i < r.bases.size(); i += line_width) {
        os << r.bases.substr(i, line_width) << '\n';
      }
    }
  }
}

void write_fasta_file(const std::string& path, const seq::ReadSet& reads,
                      std::size_t line_width) {
  auto os = open_output(path);
  write_fasta(os, reads, line_width);
}

}  // namespace ngs::io
