#include "io/fastq_stream.hpp"

#include <fstream>
#include <stdexcept>

#include "io/fastx.hpp"

namespace ngs::io {
namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

FastqStreamReader::FastqStreamReader(std::istream& is) : is_(&is) {}

FastqStreamReader::FastqStreamReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path)) {
  if (!*owned_) {
    throw std::runtime_error("cannot open for reading: " + path);
  }
  is_ = owned_.get();
}

bool FastqStreamReader::next(seq::Read& read) {
  // Skip blank lines between records (as read_fastq always has).
  do {
    if (!std::getline(*is_, header_)) return false;
    strip_cr(header_);
  } while (header_.empty());

  if (header_[0] != '@') {
    throw std::runtime_error("FASTQ: expected '@' header, got: " + header_);
  }
  if (!std::getline(*is_, bases_) || !std::getline(*is_, plus_) ||
      !std::getline(*is_, qual_)) {
    throw std::runtime_error("FASTQ: truncated record: " + header_);
  }
  strip_cr(bases_);
  strip_cr(plus_);
  strip_cr(qual_);
  if (plus_.empty() || plus_[0] != '+') {
    throw std::runtime_error("FASTQ: expected '+' separator: " + header_);
  }
  if (bases_.size() != qual_.size()) {
    throw std::runtime_error("FASTQ: sequence/quality length mismatch: " +
                             header_);
  }
  read.id.assign(header_, 1, std::string::npos);
  read.bases = bases_;
  read.quality.clear();
  read.quality.reserve(qual_.size());
  for (char c : qual_) {
    const int q = static_cast<unsigned char>(c) - kPhredOffset;
    if (q < 0) throw std::runtime_error("FASTQ: quality below offset");
    read.quality.push_back(static_cast<std::uint8_t>(q));
  }
  ++records_;
  return true;
}

std::size_t FastqStreamReader::read_batch(std::vector<seq::Read>& out,
                                          std::size_t max_reads) {
  std::size_t appended = 0;
  seq::Read read;
  while (appended < max_reads && next(read)) {
    out.push_back(std::move(read));
    read = seq::Read{};
    ++appended;
  }
  return appended;
}

}  // namespace ngs::io
