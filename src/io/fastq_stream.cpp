#include "io/fastq_stream.hpp"

#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "io/fastx.hpp"
#include "util/timer.hpp"

namespace ngs::io {
namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::unique_ptr<std::istream> open_input_stream(const std::string& path) {
  fault::maybe_fail(fault::sites::kFastqOpen, ErrorKind::kIo,
                    "cannot open for reading: " + path);
  auto is = std::make_unique<std::ifstream>(path);
  if (!*is) {
    throw Error(ErrorKind::kIo, fault::sites::kFastqOpen,
                "cannot open for reading: " + path);
  }
  return is;
}

FastqStreamReader::FastqStreamReader(std::istream& is, std::string name)
    : is_(&is), name_(std::move(name)) {}

FastqStreamReader::FastqStreamReader(const std::string& path)
    : owned_(open_input_stream(path)), name_(path) {
  is_ = owned_.get();
}

void FastqStreamReader::fail_parse(const std::string& detail) const {
  std::ostringstream os;
  os << name_ << ": record " << (records_ + skipped_ + 1) << " (line "
     << line_ << "): " << detail;
  throw Error(ErrorKind::kParse, fault::sites::kFastqMalformed, os.str());
}

bool FastqStreamReader::getline_counted(std::string& out) {
  if (!std::getline(*is_, out)) {
    if (is_->bad()) {
      throw Error(ErrorKind::kIo, fault::sites::kFastqRead,
                  name_ + ": read failed at line " +
                      std::to_string(line_ + 1));
    }
    return false;  // clean EOF
  }
  ++line_;
  bytes_ += out.size() + 1;  // + the newline getline consumed
  strip_cr(out);
  return true;
}

bool FastqStreamReader::parse_record(seq::Read& read) {
  fault::maybe_fail(fault::sites::kFastqRead, ErrorKind::kIo,
                    name_ + ": read failed at line " +
                        std::to_string(line_ + 1));
  if (pending_header_) {
    pending_header_ = false;  // header_ already holds the next header
  } else {
    // Skip blank lines between records (as read_fastq always has).
    do {
      if (!getline_counted(header_)) return false;
    } while (header_.empty());
  }

  if (header_.empty() || header_[0] != '@') {
    fail_parse("expected '@' header, got: " + header_);
  }
  if (!getline_counted(bases_) || !getline_counted(plus_) ||
      !getline_counted(qual_)) {
    fail_parse("truncated record: " + header_);
  }
  if (plus_.empty() || plus_[0] != '+') {
    fail_parse("expected '+' separator: " + header_);
  }
  if (bases_.size() != qual_.size()) {
    fail_parse("sequence/quality length mismatch: " + header_);
  }
  if (fault::should_fire(fault::sites::kFastqMalformed)) {
    fail_parse("injected malformed record: " + header_);
  }
  read.id.assign(header_, 1, std::string::npos);
  read.bases = bases_;
  read.quality.clear();
  read.quality.reserve(qual_.size());
  for (char c : qual_) {
    const int q = static_cast<unsigned char>(c) - kPhredOffset;
    if (q < 0) fail_parse("quality below offset: " + header_);
    read.quality.push_back(static_cast<std::uint8_t>(q));
  }
  ++records_;
  return true;
}

bool FastqStreamReader::resync() {
  // Scan forward for the next plausible record start. A quality line can
  // legitimately begin with '@', so this is a heuristic — but a
  // deterministic one, and the skipped-record counter makes the loss
  // visible in the report.
  while (getline_counted(header_)) {
    if (!header_.empty() && header_[0] == '@') {
      pending_header_ = true;
      return true;
    }
  }
  return false;  // EOF while resyncing
}

bool FastqStreamReader::next(seq::Read& read) {
  for (;;) {
    try {
      return parse_record(read);
    } catch (const Error& e) {
      if (e.kind() != ErrorKind::kParse ||
          policy_ == BadRecordPolicy::kFail) {
        throw;
      }
      ++skipped_;
      if (!resync()) return false;
    }
  }
}

std::size_t FastqStreamReader::read_batch(std::vector<seq::Read>& out,
                                          std::size_t max_reads) {
  const util::Timer batch_timer;
  std::size_t appended = 0;
  seq::Read read;
  while (appended < max_reads && next(read)) {
    out.push_back(std::move(read));
    read = seq::Read{};
    ++appended;
  }
  parse_seconds_ += batch_timer.seconds();
  return appended;
}

}  // namespace ngs::io
