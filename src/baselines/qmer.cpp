#include "baselines/qmer.hpp"

#include <cmath>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"

namespace ngs::baselines {
namespace {

double phred_correct_prob(std::uint8_t q) {
  return 1.0 - std::pow(10.0, -static_cast<double>(q) / 10.0);
}

}  // namespace

QmerCounter::QmerCounter(const seq::ReadSet& reads, int k,
                         bool both_strands)
    : spectrum_(kspec::KSpectrum::build(reads, k, both_strands)) {
  weights_.assign(spectrum_.size(), 0.0);
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> kmers;
  for (const auto& r : reads.reads) {
    kmers.clear();
    seq::extract_kmers(r.bases, k, kmers);
    const bool has_quality = r.quality.size() == r.bases.size();
    for (const auto& [code, start] : kmers) {
      double w = 1.0;
      if (has_quality) {
        for (int i = 0; i < k; ++i) {
          w *= phred_correct_prob(
              r.quality[start + static_cast<std::uint32_t>(i)]);
        }
      }
      const auto idx = spectrum_.index_of(code);
      if (idx >= 0) weights_[static_cast<std::size_t>(idx)] += w;
    }
    if (both_strands) {
      // Reverse-complement instances carry the reversed quality window.
      const std::string rc = seq::reverse_complement(r.bases);
      kmers.clear();
      seq::extract_kmers(rc, k, kmers);
      const std::size_t L = r.bases.size();
      for (const auto& [code, start] : kmers) {
        double w = 1.0;
        if (has_quality) {
          for (int i = 0; i < k; ++i) {
            w *= phred_correct_prob(
                r.quality[L - 1 - (start + static_cast<std::uint32_t>(i))]);
          }
        }
        const auto idx = spectrum_.index_of(code);
        if (idx >= 0) weights_[static_cast<std::size_t>(idx)] += w;
      }
    }
  }
}

std::vector<double> QmerCounter::counts() const {
  std::vector<double> y(spectrum_.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<double>(spectrum_.count_at(i));
  }
  return y;
}

}  // namespace ngs::baselines
