#pragma once
// HiTEC baseline (Ilie et al. 2011, described in Sec. 1.2): an erroneous
// base can be corrected when it is preceded by an error-free kmer — if a
// (k+1)-mer s with s[0..k-1] = r[i..i+k-1], s[k] != r[i+k] occurs at
// least M times in the reads, s[k] is likely the intended base.
//
// Implementation: a (k+1)-spectrum supplies the witness counts; each
// read is scanned left-to-right (then right-to-left via the reverse
// complement, so errors at the 5' end are reachable too). A correction
// is applied when the witness extension is unique and the read's own
// extension is weak.

#include <cstdint>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/read.hpp"

namespace ngs::baselines {

struct HitecParams {
  int k = 12;                       // witness prefix length
  std::uint32_t support = 4;        // M: witness (k+1)-mer multiplicity
  std::uint32_t weak_threshold = 2; // read's own extension below this
  int iterations = 2;               // repeat to catch multiple errors
};

struct HitecStats {
  std::uint64_t corrections = 0;
  std::uint64_t ambiguous_sites = 0;  // several strong witnesses
};

class HitecCorrector {
 public:
  HitecCorrector(const seq::ReadSet& reads, HitecParams params);

  /// Builds from a pre-aggregated witness spectrum (streamed; must be a
  /// (k+1)-spectrum over both strands): `extensions.k() == params.k + 1`.
  HitecCorrector(kspec::KSpectrum extensions, HitecParams params);

  seq::Read correct(const seq::Read& read, HitecStats& stats) const;
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     HitecStats& stats) const;

 private:
  /// One left-to-right pass over `bases`; returns corrections applied.
  std::uint64_t sweep(std::string& bases, HitecStats& stats) const;

  HitecParams params_;
  kspec::KSpectrum extensions_;  // (k+1)-spectrum, both strands
};

}  // namespace ngs::baselines
