#include "baselines/hitec.hpp"

#include <array>
#include <mutex>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/thread_pool.hpp"

namespace ngs::baselines {

HitecCorrector::HitecCorrector(const seq::ReadSet& reads, HitecParams params)
    : params_(params),
      extensions_(kspec::KSpectrum::build(reads, params.k + 1,
                                          /*both_strands=*/true)) {}

HitecCorrector::HitecCorrector(kspec::KSpectrum extensions, HitecParams params)
    : params_(params), extensions_(std::move(extensions)) {
  if (!extensions_.empty() && extensions_.k() != params_.k + 1) {
    throw std::invalid_argument(
        "HitecCorrector: witness spectrum k != params.k + 1");
  }
}

std::uint64_t HitecCorrector::sweep(std::string& bases,
                                    HitecStats& stats) const {
  const auto k = static_cast<std::size_t>(params_.k);
  if (bases.size() < k + 1) return 0;
  std::uint64_t applied = 0;
  for (std::size_t i = 0; i + k < bases.size(); ++i) {
    const auto prefix =
        seq::encode_kmer(std::string_view(bases).substr(i, k));
    if (!prefix) continue;
    const std::uint8_t current = seq::base_to_code(bases[i + k]);
    // Witness counts for each extension of the error-free prefix.
    std::array<std::uint32_t, 4> counts{};
    for (std::uint8_t b = 0; b < 4; ++b) {
      counts[b] = extensions_.count((*prefix << 2) | b);
    }
    if (current != seq::kInvalidBase &&
        counts[current] >= params_.weak_threshold) {
      continue;  // the read's own extension is adequately supported
    }
    std::uint8_t witness = 4;
    int strong = 0;
    for (std::uint8_t b = 0; b < 4; ++b) {
      if (b == current) continue;
      if (counts[b] >= params_.support) {
        witness = b;
        ++strong;
      }
    }
    if (strong == 1) {
      bases[i + k] = seq::code_to_base(witness);
      ++applied;
    } else if (strong > 1) {
      ++stats.ambiguous_sites;
    }
  }
  return applied;
}

seq::Read HitecCorrector::correct(const seq::Read& read,
                                  HitecStats& stats) const {
  seq::Read out = read;
  for (int iter = 0; iter < params_.iterations; ++iter) {
    std::uint64_t applied = sweep(out.bases, stats);
    // Right-to-left via the reverse complement (the (k+1)-spectrum holds
    // both strands, so witness counts remain valid).
    std::string rc = seq::reverse_complement(out.bases);
    applied += sweep(rc, stats);
    out.bases = seq::reverse_complement(rc);
    stats.corrections += applied;
    if (applied == 0) break;
  }
  return out;
}

std::vector<seq::Read> HitecCorrector::correct_all(const seq::ReadSet& reads,
                                                   HitecStats& stats) const {
  std::vector<seq::Read> out(reads.reads.size());
  std::mutex stats_mutex;
  util::default_pool().parallel_for_blocked(
      0, reads.reads.size(), [&](std::size_t lo, std::size_t hi) {
        HitecStats local;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = correct(reads.reads[i], local);
        }
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.corrections += local.corrections;
        stats.ambiguous_sites += local.ambiguous_sites;
      });
  return out;
}

}  // namespace ngs::baselines
