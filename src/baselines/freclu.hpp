#pragma once
// FreClu baseline (Qu et al. 2009, described in Sec. 1.2): designed for
// transcriptome-style data where full-length reads replicate heavily.
// Reads are grouped into a hierarchy in which a child sequence (1) differs
// from its parent by exactly one base, and (2) is sufficiently less
// frequent than the parent for a sequencing error to be the likely
// explanation. Every read is corrected to the root of its tree.
//
// Chapter 3 positions REDEEM as the kmer-level generalization of this
// idea (full-read replication is absent in genomic data); this baseline
// makes the comparison concrete.

#include <cstdint>
#include <vector>

#include "seq/read.hpp"

namespace ngs::baselines {

struct FrecluParams {
  /// A parent must be at least this many times more frequent.
  double min_parent_ratio = 2.0;
  /// Maximum hierarchy depth followed when resolving roots.
  int max_depth = 4;
};

struct FrecluStats {
  std::uint64_t distinct_sequences = 0;
  std::uint64_t trees = 0;           // root sequences
  std::uint64_t reads_corrected = 0; // reads rewritten to their root
};

class FrecluCorrector {
 public:
  explicit FrecluCorrector(FrecluParams params) : params_(params) {}

  /// Corrects the read set; reads whose sequence has no eligible parent
  /// stay untouched. Only substitution (same-length) relations are
  /// considered, as in the original.
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     FrecluStats& stats) const;

 private:
  FrecluParams params_;
};

}  // namespace ngs::baselines
