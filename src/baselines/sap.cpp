#include "baselines/sap.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/thread_pool.hpp"

#include <mutex>

namespace ngs::baselines {

SapCorrector::SapCorrector(const seq::ReadSet& reads, SapParams params)
    : params_(params),
      spectrum_(kspec::KSpectrum::build(reads, params.k,
                                        params.both_strands)) {}

SapCorrector::SapCorrector(kspec::KSpectrum spectrum, SapParams params)
    : params_(params), spectrum_(std::move(spectrum)) {
  if (!spectrum_.empty() && spectrum_.k() != params_.k) {
    throw std::invalid_argument("SapCorrector: spectrum k != params.k");
  }
}

int SapCorrector::weak_kmers(std::string_view bases) const {
  std::vector<seq::KmerCode> codes;
  seq::extract_kmer_codes(bases, params_.k, codes);
  int weak = 0;
  for (const auto code : codes) {
    weak += spectrum_.count(code) < params_.solid_threshold;
  }
  // Windows lost to ambiguous bases count as weak.
  if (bases.size() >= static_cast<std::size_t>(params_.k)) {
    const auto windows = bases.size() - static_cast<std::size_t>(params_.k) + 1;
    weak += static_cast<int>(windows - codes.size());
  }
  return weak;
}

seq::Read SapCorrector::correct(const seq::Read& read, SapStats& stats) const {
  seq::Read out = read;
  int weak = weak_kmers(out.bases);
  if (weak == 0) {
    ++stats.reads_clean;
    return out;
  }

  // Greedy: at each round, apply the single base change that removes the
  // most weak kmers; stop when clean or no change improves. Only the
  // kmers covering the mutated position can change solidity, so the
  // evaluation is local.
  const auto weak_covering = [&](const std::string& bases, std::size_t pos) {
    const auto k = static_cast<std::size_t>(params_.k);
    if (bases.size() < k) return 0;
    const std::size_t lo = pos >= k - 1 ? pos - (k - 1) : 0;
    const std::size_t hi = std::min(pos, bases.size() - k);
    int weak_count = 0;
    for (std::size_t s = lo; s <= hi; ++s) {
      const auto code =
          seq::encode_kmer(std::string_view(bases).substr(s, k));
      if (!code || spectrum_.count(*code) < params_.solid_threshold) {
        ++weak_count;
      }
    }
    return weak_count;
  };

  for (int edit = 0; edit < params_.max_edits && weak > 0; ++edit) {
    int best_delta = 0;
    std::size_t best_pos = 0;
    char best_base = 0;
    for (std::size_t pos = 0; pos < out.bases.size(); ++pos) {
      const char original = out.bases[pos];
      const int before = weak_covering(out.bases, pos);
      if (before == 0) continue;
      for (const char b : {'A', 'C', 'G', 'T'}) {
        if (b == original) continue;
        out.bases[pos] = b;
        const int delta = before - weak_covering(out.bases, pos);
        if (delta > best_delta) {
          best_delta = delta;
          best_pos = pos;
          best_base = b;
        }
      }
      out.bases[pos] = original;
    }
    if (best_base == 0) break;  // no improving change
    out.bases[best_pos] = best_base;
    ++stats.bases_changed;
    weak -= best_delta;
  }
  if (weak == 0) {
    ++stats.reads_fixed;
  } else {
    ++stats.reads_unfixable;
  }
  return out;
}

std::vector<seq::Read> SapCorrector::correct_all(const seq::ReadSet& reads,
                                                 SapStats& stats) const {
  std::vector<seq::Read> out(reads.reads.size());
  std::mutex stats_mutex;
  util::default_pool().parallel_for_blocked(
      0, reads.reads.size(), [&](std::size_t lo, std::size_t hi) {
        SapStats local;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = correct(reads.reads[i], local);
        }
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.reads_clean += local.reads_clean;
        stats.reads_fixed += local.reads_fixed;
        stats.reads_unfixable += local.reads_unfixable;
        stats.bases_changed += local.bases_changed;
      });
  return out;
}

}  // namespace ngs::baselines
