#pragma once
// Quake-style q-mer counting (Kelley et al. 2010, described in Sec. 1.2):
// every kmer instance contributes the product of its bases' correctness
// probabilities (from quality scores) instead of a unit count, so
// low-confidence instances barely inflate a kmer's support. The
// resulting weights are thresholded to classify kmers as trusted or
// untrusted — Chapter 1 notes the paper leaves the cutoff choice
// unclear; here the Sec. 3.7 mixture machinery can supply it.

#include <cstdint>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/read.hpp"

namespace ngs::baselines {

class QmerCounter {
 public:
  /// Builds the k-spectrum and accumulates quality weights per kmer.
  /// Reads without quality scores contribute unit weights.
  QmerCounter(const seq::ReadSet& reads, int k, bool both_strands = false);

  const kspec::KSpectrum& spectrum() const noexcept { return spectrum_; }

  /// Quality weight per spectrum kmer (parallel to spectrum order).
  const std::vector<double>& weights() const noexcept { return weights_; }

  /// Raw observed counts as doubles (for baseline comparison).
  std::vector<double> counts() const;

 private:
  kspec::KSpectrum spectrum_;
  std::vector<double> weights_;
};

}  // namespace ngs::baselines
