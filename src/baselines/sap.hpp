#pragma once
// SAP baseline — the Spectrum Alignment Problem corrector of
// Pevzner/Tang and Chaisson et al. (Secs. 1.2, 2.2): a kmer is *solid*
// if it occurs more than M times in the reads, *weak* otherwise; a read
// is converted, with a bounded number of substitutions, so that all of
// its kmers are solid.
//
// This implements the Hamming-distance adaptation of Chaisson et al.
// 2009 that Chapter 1 describes: "in each read, if a base change can
// increase the solid kmers to a prescribed amount, then it is applied",
// greedily, with reads classified fixable/unfixable. It is the
// k-spectrum ancestor Reptile is measured against.

#include <cstdint>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/read.hpp"

namespace ngs::baselines {

struct SapParams {
  int k = 12;
  /// Solidity threshold M: kmers with count >= M are solid.
  std::uint32_t solid_threshold = 3;
  /// Max substitutions applied per read before giving up (unfixable).
  int max_edits = 3;
  /// Build the spectrum from both strands.
  bool both_strands = true;
};

struct SapStats {
  std::uint64_t reads_clean = 0;      // already all-solid
  std::uint64_t reads_fixed = 0;      // converted to all-solid
  std::uint64_t reads_unfixable = 0;  // left as-is after max_edits
  std::uint64_t bases_changed = 0;
};

class SapCorrector {
 public:
  SapCorrector(const seq::ReadSet& reads, SapParams params);

  /// Builds from a pre-aggregated k-spectrum (e.g. streamed through
  /// kspec::ChunkedSpectrumBuilder, so the reads never have to be held
  /// in memory). `spectrum.k()` must equal `params.k`.
  SapCorrector(kspec::KSpectrum spectrum, SapParams params);

  const SapParams& params() const noexcept { return params_; }
  const kspec::KSpectrum& spectrum() const noexcept { return spectrum_; }

  /// Number of weak kmers in a read (0 = clean).
  int weak_kmers(std::string_view bases) const;

  seq::Read correct(const seq::Read& read, SapStats& stats) const;
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     SapStats& stats) const;

 private:
  SapParams params_;
  kspec::KSpectrum spectrum_;
};

}  // namespace ngs::baselines
