#include "baselines/freclu.hpp"

#include <string>
#include <unordered_map>

#include "seq/alphabet.hpp"

namespace ngs::baselines {

std::vector<seq::Read> FrecluCorrector::correct_all(const seq::ReadSet& reads,
                                                    FrecluStats& stats) const {
  // Collapse to distinct sequences with counts.
  std::unordered_map<std::string, std::uint32_t> index;
  std::vector<std::string> sequences;
  std::vector<std::uint64_t> counts;
  for (const auto& r : reads.reads) {
    const auto [it, inserted] = index.emplace(
        r.bases, static_cast<std::uint32_t>(sequences.size()));
    if (inserted) {
      sequences.push_back(r.bases);
      counts.push_back(0);
    }
    ++counts[it->second];
  }
  stats.distinct_sequences = sequences.size();

  // Parent of each distinct sequence: the most frequent 1-mutant whose
  // count dominates by the required ratio.
  std::vector<std::int64_t> parent(sequences.size(), -1);
  for (std::uint32_t s = 0; s < sequences.size(); ++s) {
    std::string candidate = sequences[s];
    std::uint64_t best_count = 0;
    std::int64_t best_parent = -1;
    for (std::size_t pos = 0; pos < candidate.size(); ++pos) {
      const char original = candidate[pos];
      if (!seq::is_acgt(original)) continue;
      for (const char b : {'A', 'C', 'G', 'T'}) {
        if (b == original) continue;
        candidate[pos] = b;
        const auto it = index.find(candidate);
        if (it != index.end() && counts[it->second] > best_count &&
            static_cast<double>(counts[it->second]) >=
                params_.min_parent_ratio * static_cast<double>(counts[s])) {
          best_count = counts[it->second];
          best_parent = it->second;
        }
      }
      candidate[pos] = original;
    }
    parent[s] = best_parent;
  }

  // Resolve roots (bounded depth; frequencies strictly increase along
  // parent edges, so cycles are impossible anyway).
  std::vector<std::uint32_t> root(sequences.size());
  std::uint64_t num_roots = 0;
  for (std::uint32_t s = 0; s < sequences.size(); ++s) {
    std::uint32_t r = s;
    for (int d = 0; d < params_.max_depth && parent[r] >= 0; ++d) {
      r = static_cast<std::uint32_t>(parent[r]);
    }
    root[s] = r;
    num_roots += (parent[s] < 0);
  }
  stats.trees = num_roots;

  // Rewrite reads to their root sequence.
  std::vector<seq::Read> out = reads.reads;
  for (auto& r : out) {
    const auto it = index.find(r.bases);
    if (it == index.end()) continue;
    const std::uint32_t target = root[it->second];
    if (sequences[target] != r.bases) {
      r.bases = sequences[target];
      ++stats.reads_corrected;
    }
  }
  return out;
}

}  // namespace ngs::baselines
