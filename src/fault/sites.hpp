#pragma once
// The injection-site catalog: every place the production pipeline can
// fail (or degrade) has a stable name here, and the chaos test sweeps
// this list firing each site at least once. Registry::configure rejects
// names outside the catalog, so a typo in --fault-spec / NGS_FAULT_SPEC
// fails loudly instead of silently injecting nothing.
//
// Naming convention: <layer>.<component>.<event>. A site name doubles
// as ngs::Error::site() for the failure it injects, so a typed error
// can always be traced back to the code path that raised it.
//
// Adding a site: declare the constant, append it to kAll, and give it a
// scenario in tests/test_chaos.cpp (the sweep fails on catalog entries
// it cannot fire).

#include <cstddef>

namespace ngs::fault::sites {

// --- io: FASTQ parsing (src/io/fastq_stream.cpp) -----------------------
/// Opening the input FASTQ fails (missing file, permissions).
inline constexpr const char* kFastqOpen = "io.fastq.open";
/// A read from the underlying stream fails mid-file (I/O error, not a
/// parse error — unaffected by --on-bad-record).
inline constexpr const char* kFastqRead = "io.fastq.read";
/// The next record is treated as malformed; exercises the
/// --on-bad-record skip/fail machinery end to end.
inline constexpr const char* kFastqMalformed = "io.fastq.malformed";

// --- index: persistent spectrum index (src/index/spectrum_index.cpp) ---
/// Opening the index file fails.
inline constexpr const char* kIndexOpen = "index.open";
/// mmap fails; the loader must fall back to the owned-buffer path.
inline constexpr const char* kIndexMmap = "index.mmap";
/// A payload read comes back short (truncated file appearing mid-read).
inline constexpr const char* kIndexShortRead = "index.short_read";
/// The header checksum validation fails (bit rot).
inline constexpr const char* kIndexChecksum = "index.checksum";
/// A write while serializing the index fails (disk full); the atomic
/// writer must leave no temp file and never touch the target.
inline constexpr const char* kIndexWrite = "index.write";
/// Mapping one shard of a sharded (v2) index fails; the lazy view must
/// fall back to an owned-buffer read with identical lookup results.
inline constexpr const char* kShardMmap = "index.shard_mmap";

// --- kspec: out-of-core spectrum build (src/kspec/radix.cpp) -----------
/// Appending instances to a spill bin fails (disk full) during a
/// bounded-memory (--memory-budget-mb) pass-1 build.
inline constexpr const char* kSpillWrite = "kspec.spill.write";
/// Reading a spill bin back for its per-bin sort/count fails.
inline constexpr const char* kSpillRead = "kspec.spill.read";

// --- core: correction pipeline (src/core/pipeline.cpp) -----------------
/// Opening the input stream fails transiently; fault::with_retry
/// recovers within the bounded retry budget.
inline constexpr const char* kOpenInputTransient = "core.open_input.transient";
/// A pass-2 batch correction throws; the pipeline degrades to per-read
/// salvage instead of killing the run.
inline constexpr const char* kPass2Batch = "core.pass2.batch";
/// A single read's correction throws during salvage; the read passes
/// through uncorrected and reads_failed is incremented.
inline constexpr const char* kPass2Read = "core.pass2.read";
/// Writing a corrected output batch fails; the tmp+rename writer must
/// leave no truncated output behind.
inline constexpr const char* kOutputWrite = "core.output.write";
/// The overlapped executor's dedicated reader task fails while running
/// ahead of compute (either pass, --io-overlap on). The failure must
/// tear the bounded queues down to a typed error on the calling thread —
/// never a hung pipeline.
inline constexpr const char* kPipelineReader = "core.pipeline.reader";
/// The overlapped executor's order-restoring writer task fails
/// mid-stream; same teardown guarantee, and run_file's atomic output
/// protocol must leave no truncated FASTQ behind.
inline constexpr const char* kPipelineWriter = "core.pipeline.writer";

// --- mapreduce: in-process engine (src/mapreduce/job.hpp) --------------
/// A map task attempt fails (generalizes JobConfig::task_failure_rate;
/// the task is retried from its split up to max_task_attempts).
inline constexpr const char* kMapTask = "mapreduce.map_task";

// --- service: correction daemon (src/service/) -------------------------
/// accept() fails; the daemon must keep serving subsequent connections.
inline constexpr const char* kServiceAccept = "service.accept";
/// Reading a frame from a connection fails; only that connection winds
/// down, every other connection keeps streaming.
inline constexpr const char* kServiceRead = "service.read";
/// Writing a reply frame fails; same blast-radius guarantee as read.
inline constexpr const char* kServiceWrite = "service.write";
/// Verifying replacement indexes during a hot reload fails; the reload
/// is rejected and the old epoch keeps serving untouched.
inline constexpr const char* kServiceReload = "service.reload";
/// A worker's batch correction throws; the batch gets a typed ERROR
/// reply and the connection (and its other in-flight batches) survive.
inline constexpr const char* kServiceWorker = "service.worker";

/// Every registered site, in catalog order. The chaos sweep iterates
/// this list; Registry::configure validates against it.
inline constexpr const char* kAll[] = {
    kFastqOpen,      kFastqRead,  kFastqMalformed, kIndexOpen,
    kIndexMmap,      kIndexShortRead, kIndexChecksum, kIndexWrite,
    kShardMmap,      kSpillWrite, kSpillRead,
    kOpenInputTransient, kPass2Batch, kPass2Read,  kOutputWrite,
    kPipelineReader, kPipelineWriter,
    kMapTask,
    kServiceAccept,  kServiceRead, kServiceWrite, kServiceReload,
    kServiceWorker,
};

inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);

}  // namespace ngs::fault::sites
