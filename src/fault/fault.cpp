#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace ngs::fault {

namespace {

/// FNV-1a over the site name: mixed with the global seed so each
/// probability trigger gets an independent, reproducible stream.
std::uint64_t site_hash(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool known_site(const std::string& name) {
  for (const char* site : sites::kAll) {
    if (name == site) return true;
  }
  return false;
}

[[noreturn]] void spec_error(const std::string& detail) {
  throw Error(ErrorKind::kConfig, "fault.spec",
              "fault spec: " + detail +
                  " (grammar: site=always|once|n<K>|p<F>|off,...,seed=<N>; "
                  "sites listed in fault::sites)");
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::arm(const std::string& site, const std::string& trigger) {
  if (!known_site(site)) {
    spec_error("unknown injection site '" + site + "'");
  }
  SiteState state;
  state.rng.reseed(seed_ ^ site_hash(site));
  if (trigger == "always") {
    state.trigger = Trigger::kAlways;
  } else if (trigger == "once") {
    state.trigger = Trigger::kOnce;
  } else if (trigger == "off") {
    state.trigger = Trigger::kNever;
  } else if (trigger.size() > 1 && trigger[0] == 'n') {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(trigger.c_str() + 1, &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      spec_error("bad nth-call trigger '" + trigger + "' for " + site);
    }
    state.trigger = Trigger::kNth;
    state.nth = n;
  } else if (trigger.size() > 1 && trigger[0] == 'p') {
    char* end = nullptr;
    const double p = std::strtod(trigger.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      spec_error("bad probability trigger '" + trigger + "' for " + site);
    }
    state.trigger = Trigger::kProbability;
    state.probability = p;
  } else {
    spec_error("bad trigger '" + trigger + "' for " + site);
  }
  // Preserve counters if the site was hit before being (re)armed.
  const auto it = sites_.find(site);
  if (it != sites_.end()) {
    state.hits = it->second.hits;
    state.fires = it->second.fires;
  }
  sites_[site] = state;
}

void Registry::configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> tokens;
  {
    std::string token;
    std::istringstream is(spec);
    while (std::getline(is, token, ',')) {
      const auto b = token.find_first_not_of(" \t");
      const auto e = token.find_last_not_of(" \t");
      if (b == std::string::npos) continue;  // empty/blank token
      tokens.push_back(token.substr(b, e - b + 1));
    }
  }
  // First pass for seed= so it applies to every site in this spec
  // regardless of position.
  for (const auto& token : tokens) {
    if (token.rfind("seed=", 0) != 0) continue;
    char* end = nullptr;
    seed_ = std::strtoull(token.c_str() + 5, &end, 0);
    if (end == nullptr || *end != '\0' || token.size() == 5) {
      spec_error("bad seed '" + token.substr(5) + "'");
    }
  }
  for (const auto& token : tokens) {
    if (token.rfind("seed=", 0) == 0) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      spec_error("expected site=trigger, got '" + token + "'");
    }
    arm(token.substr(0, eq), token.substr(eq + 1));
  }
  refresh_enabled_locked();
}

bool Registry::configure_from_env() {
  const char* spec = std::getenv("NGS_FAULT_SPEC");
  if (spec == nullptr || *spec == '\0') return false;
  configure(spec);
  return true;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  seed_ = 0x5eed;
  enabled_.store(false, std::memory_order_relaxed);
}

void Registry::refresh_enabled_locked() {
  bool any = false;
  for (const auto& [name, state] : sites_) {
    any |= state.trigger != Trigger::kNever;
  }
  enabled_.store(any, std::memory_order_relaxed);
}

bool Registry::should_fire(const char* site) noexcept {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[site];  // unarmed sites still count hits
  ++state.hits;
  bool fire = false;
  switch (state.trigger) {
    case Trigger::kNever: break;
    case Trigger::kAlways: fire = true; break;
    case Trigger::kOnce: fire = state.fires == 0; break;
    case Trigger::kNth: fire = state.hits == state.nth; break;
    case Trigger::kProbability:
      fire = state.rng.bernoulli(state.probability);
      break;
  }
  if (fire) ++state.fires;
  return fire;
}

SiteStats Registry::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::vector<std::pair<std::string, SiteStats>> Registry::all_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, SiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) {
    out.emplace_back(name, SiteStats{state.hits, state.fires});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string Registry::summary() const {
  std::ostringstream os;
  for (const auto& [name, stats] : all_stats()) {
    os << name << ": hits=" << stats.hits << " fires=" << stats.fires
       << "\n";
  }
  return os.str();
}

namespace detail {

void backoff_sleep(int milliseconds) {
  if (milliseconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
}

}  // namespace detail

}  // namespace ngs::fault
