#pragma once
// ngs::fault — a process-wide, deterministic fault-injection registry.
//
// Production correctors live or die on how they handle the unhappy
// paths: truncated FASTQ, a disk that fails mid-write, an index file a
// previous run corrupted, a worker that dies. Those paths are exactly
// the ones ordinary tests never execute. This subsystem makes every
// failure path drivable on demand:
//
//   - each potentially failing operation is an *injection site* with a
//     stable name from the catalog in sites.hpp;
//   - a spec string ("io.fastq.read=n2,index.mmap=always,seed=7") arms
//     sites with a trigger: fire on the Nth hit, on every hit, once,
//     or with probability p from a seeded RNG — so a chaos run is
//     reproducible from the spec alone;
//   - armed or not, the registry keeps per-site hit/fire counters the
//     chaos suite asserts on ("this sweep really exercised the site");
//   - when nothing is armed, a site check is one relaxed atomic load —
//     and compiles to nothing with NGS_FAULT_DISABLED (CMake
//     -DNGS_FAULT_INJECTION=OFF).
//
// Spec grammar (comma-separated, applied left to right):
//   <site>=always      fire on every hit
//   <site>=once        fire on the first hit only
//   <site>=n<K>        fire on exactly the K-th hit (1-based)
//   <site>=p<F>        fire each hit with probability F in [0,1]
//   <site>=off         disarm the site
//   seed=<N>           seed for the probability triggers (default 0x5eed)
// Site names must come from fault::sites::kAll; anything else is a
// config error. The spec is also read from $NGS_FAULT_SPEC by the tools
// (configure_from_env) and the --fault-spec flag.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/sites.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ngs::fault {

/// Thrown by cooperative retry loops (the MapReduce map-task site) to
/// signal an injected, retryable failure — distinct from user
/// exceptions so retry logic never masks real bugs.
struct InjectedFault {};

struct SiteStats {
  std::uint64_t hits = 0;   // times the site was evaluated
  std::uint64_t fires = 0;  // times it fired
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Parses and arms `spec` (see grammar above), merging into the
  /// current configuration. Throws ngs::Error(kConfig) on an unknown
  /// site name or malformed trigger. An empty spec is a no-op.
  void configure(const std::string& spec);

  /// Arms from $NGS_FAULT_SPEC when set. Returns true if a spec was
  /// found and applied.
  bool configure_from_env();

  /// Disarms every site and zeroes all counters.
  void reset();

  /// True when at least one site is armed (fast path gate).
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Evaluates `site`: counts the hit and returns whether the armed
  /// trigger fires. Always false (and not counted) when disarmed
  /// process-wide; thread-safe.
  bool should_fire(const char* site) noexcept;

  /// Counters for one site (zeros if never hit).
  SiteStats stats(const std::string& site) const;

  /// Counters for every site hit or armed so far, in name order.
  std::vector<std::pair<std::string, SiteStats>> all_stats() const;

  /// Human-readable "site: hits=H fires=F" lines for armed/hit sites.
  std::string summary() const;

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  enum class Trigger { kNever, kAlways, kOnce, kNth, kProbability };

  struct SiteState {
    Trigger trigger = Trigger::kNever;
    double probability = 0.0;
    std::uint64_t nth = 0;
    util::Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  Registry() = default;
  void arm(const std::string& site, const std::string& trigger);
  void refresh_enabled_locked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<bool> enabled_{false};
  std::uint64_t seed_ = 0x5eed;
};

#if defined(NGS_FAULT_DISABLED)

inline bool should_fire(const char*) noexcept { return false; }

#else

/// Hot-path site check: one relaxed atomic load when nothing is armed.
inline bool should_fire(const char* site) noexcept {
  Registry& r = Registry::instance();
  if (!r.enabled()) return false;
  return r.should_fire(site);
}

#endif  // NGS_FAULT_DISABLED

/// Evaluates `site` and, when it fires, throws ngs::Error(kind, site,
/// "<context>: injected fault at <site>", transient).
inline void maybe_fail(const char* site, ErrorKind kind,
                       const std::string& context, bool transient = false) {
  if (should_fire(site)) {
    throw Error(kind, site, context + ": injected fault at " + site,
                transient);
  }
}

// ---------------------------------------------------------------------
// Bounded retry with backoff for transient failures. The pipeline wraps
// its I/O at the fault sites with this, so an injected (or real)
// transient error costs a bounded delay instead of the whole run.

struct RetryPolicy {
  /// Total attempts (>= 1); attempts - 1 retries.
  int max_attempts = 3;
  /// Sleep before retry k is backoff_ms * 2^(k-1); 0 disables sleeping
  /// (tests).
  int backoff_ms = 5;
};

namespace detail {
void backoff_sleep(int milliseconds);
}

/// Runs `fn`, retrying on ngs::Error with transient() == true up to
/// policy.max_attempts total attempts with exponential backoff.
/// Non-transient errors and exhausted budgets propagate unchanged.
/// Bumps *retries once per retry performed when non-null.
template <typename F>
auto with_retry(const RetryPolicy& policy, F&& fn,
                std::uint64_t* retries = nullptr) -> decltype(fn()) {
  int backoff = policy.backoff_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error& e) {
      if (!e.transient() || attempt >= policy.max_attempts) throw;
      if (retries != nullptr) ++*retries;
      detail::backoff_sleep(backoff);
      backoff *= 2;
    }
  }
}

}  // namespace ngs::fault
