#include "shrec/shrec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/flat_counter.hpp"

namespace ngs::shrec {
namespace {

struct Vote {
  std::uint32_t read = 0;
  std::uint16_t pos = 0;
  std::uint8_t base = 0;

  bool operator<(const Vote& o) const {
    if (read != o.read) return read < o.read;
    if (pos != o.pos) return pos < o.pos;
    return base < o.base;
  }
  bool same_site(const Vote& o) const {
    return read == o.read && pos == o.pos;
  }
};

/// Counts all q-grams of `bases` and its reverse complement into counter.
void count_qgrams(const std::string& bases, int q,
                  util::FlatCounter& counter) {
  std::vector<seq::KmerCode> codes;
  seq::extract_kmer_codes(bases, q, codes);
  for (const auto c : codes) counter.add(c);
  codes.clear();
  const std::string rc = seq::reverse_complement(bases);
  seq::extract_kmer_codes(rc, q, codes);
  for (const auto c : codes) counter.add(c);
}

}  // namespace

ShrecCorrector::ShrecCorrector(ShrecParams params) : params_(params) {
  if (params_.genome_length == 0) {
    throw std::invalid_argument("ShrecCorrector: genome_length required");
  }
}

std::vector<seq::Read> ShrecCorrector::correct_all(const seq::ReadSet& reads,
                                                   ShrecStats& stats) const {
  std::vector<seq::Read> working = reads.reads;
  const std::uint64_t n = working.size();
  std::size_t min_len = ~std::size_t{0}, max_len = 0;
  for (const auto& r : working) {
    min_len = std::min(min_len, r.length());
    max_len = std::max(max_len, r.length());
  }
  if (n == 0 || max_len == 0) return working;

  int q_lo = params_.level_low;
  if (q_lo == 0) {
    q_lo = static_cast<int>(std::ceil(
               std::log(static_cast<double>(params_.genome_length)) /
               std::log(4.0))) +
           2;
  }
  std::vector<int> levels;
  for (int i = 0; i < params_.level_count; ++i) {
    const int q = q_lo + i;
    if (q >= 6 && q <= 32 && q < static_cast<int>(min_len)) levels.push_back(q);
  }
  if (levels.empty()) return working;

  for (int iter = 0; iter < params_.iterations; ++iter) {
    std::vector<Vote> votes;
    for (const int q : levels) {
      // Level statistics: e = n(L-q+1)/|G| per suffix-trie node.
      const double p =
          static_cast<double>(max_len - static_cast<std::size_t>(q) + 1) /
          static_cast<double>(params_.genome_length);
      const double e = static_cast<double>(n) * p;
      const double sigma = std::sqrt(e * (1.0 - std::min(p, 1.0)));
      const double threshold =
          std::max(1.0, e - params_.alpha * sigma);
      const auto support = static_cast<std::uint32_t>(
          std::max<double>(params_.min_support, threshold));

      util::FlatCounter counter(n * (max_len - static_cast<std::size_t>(q)) /
                                    2 +
                                1024);
      for (const auto& r : working) count_qgrams(r.bases, q, counter);

      std::vector<seq::KmerCode> codes;
      for (std::uint32_t ri = 0; ri < working.size(); ++ri) {
        const auto& bases = working[ri].bases;
        codes.clear();
        std::vector<std::pair<seq::KmerCode, std::uint32_t>> grams;
        seq::extract_kmers(bases, q, grams);
        for (const auto& [code, start] : grams) {
          if (static_cast<double>(counter.count(code)) >= threshold) continue;
          ++stats.flagged_positions;
          // Compare against siblings: same q-1 prefix, different last base.
          const std::uint8_t current =
              static_cast<std::uint8_t>(code & 3u);
          std::uint32_t best_count = 0;
          std::uint8_t best_base = current;
          bool tie = false;
          for (std::uint8_t b = 0; b < 4; ++b) {
            if (b == current) continue;
            const seq::KmerCode sibling = (code & ~seq::KmerCode{3}) | b;
            const std::uint32_t c = counter.count(sibling);
            if (c < support) continue;
            if (c > best_count) {
              best_count = c;
              best_base = b;
              tie = false;
            } else if (c == best_count && c > 0) {
              tie = true;
            }
          }
          if (best_count > 0 && !tie) {
            votes.push_back(Vote{
                ri,
                static_cast<std::uint16_t>(start +
                                           static_cast<std::uint32_t>(q) - 1),
                best_base});
          }
        }
      }
    }

    // Tally: apply a correction where >= min_votes levels agree on the
    // same target base and no competing base also reaches the bar.
    std::sort(votes.begin(), votes.end());
    std::uint64_t applied = 0;
    std::size_t i = 0;
    while (i < votes.size()) {
      std::size_t j = i;
      while (j < votes.size() && votes[j].same_site(votes[i])) ++j;
      // Count votes per base at this site.
      std::array<int, 4> per_base{};
      for (std::size_t v = i; v < j; ++v) ++per_base[votes[v].base];
      int winners = 0;
      std::uint8_t target = 0;
      for (std::uint8_t b = 0; b < 4; ++b) {
        if (per_base[b] >= params_.min_votes) {
          ++winners;
          target = b;
        }
      }
      if (winners == 1) {
        working[votes[i].read].bases[votes[i].pos] =
            seq::code_to_base(target);
        ++applied;
      } else if (winners > 1) {
        ++stats.conflicting_votes;
      }
      i = j;
    }
    stats.corrections_applied += applied;
    if (applied == 0) break;
  }
  return working;
}

}  // namespace ngs::shrec
