#pragma once
// SHREC baseline (Schroeder et al. 2009), reimplemented level-
// synchronously (see DESIGN.md substitutions).
//
// SHREC builds a generalized suffix trie over the reads (both strands);
// an internal node at depth q represents a q-length substring s whose
// occurrence count equals its leaf count. Assuming a random genome
// uniformly sampled by n reads of length L, the count of s is a Binomial
// with mean e_q = n(L-q+1)/|G| and variance e_q(1-p). A node with
// count < e_q - alpha*sigma_q is flagged as ending in a sequencing error
// and corrected toward a sibling (same q-1 prefix, different last base)
// that passes the test and whose subtree is compatible.
//
// The trie is only a container for the level-q substring counts, so this
// implementation walks levels q = q_lo..q_hi explicitly: per level it
// builds the q-gram multiset (sorted packed codes, both strands), applies
// the same statistic, and emits per-(read, position) correction votes
// toward the dominant sibling. Votes across levels are combined by
// majority, and the whole procedure iterates a fixed number of rounds to
// capture multiple errors per read — mirroring SHREC's fixed-iteration
// multi-error loop.

#include <cstdint>
#include <vector>

#include "seq/read.hpp"

namespace ngs::shrec {

struct ShrecParams {
  double alpha = 3.0;        // strictness of the frequency test
  std::uint64_t genome_length = 0;  // |G| estimate; required
  int level_low = 0;         // 0 = auto: ceil(log4 |G|) + 2
  int level_count = 4;       // number of trie levels analyzed
  int iterations = 3;        // multi-error rounds
  int min_votes = 2;         // levels that must agree on a correction
  std::uint32_t min_support = 2;  // sibling must occur at least this often
};

struct ShrecStats {
  std::uint64_t flagged_positions = 0;
  std::uint64_t corrections_applied = 0;
  std::uint64_t conflicting_votes = 0;
};

class ShrecCorrector {
 public:
  explicit ShrecCorrector(ShrecParams params);

  const ShrecParams& params() const noexcept { return params_; }

  /// Corrects the whole read set (SHREC is a batch algorithm: counts are
  /// rebuilt from the working reads each iteration, so corrections from
  /// earlier rounds sharpen later statistics).
  std::vector<seq::Read> correct_all(const seq::ReadSet& reads,
                                     ShrecStats& stats) const;

 private:
  ShrecParams params_;
};

}  // namespace ngs::shrec
