#pragma once
// Parallel radix-partitioned sorting of packed kmer codes — the
// construction engine behind KSpectrum and ChunkedSpectrumBuilder.
//
// Codes are sharded by their top `radix_bits` bits (the 5'-most bases,
// since the codec stores the first base in the most significant pair)
// into 2^radix_bits buckets with a two-pass stable counting partition,
// then each bucket is sorted independently on a util::ThreadPool.
// Because the buckets cover disjoint, ascending key ranges, their
// concatenation is globally sorted — the output is byte-identical to a
// single std::sort over the whole array, for every thread count and
// every radix width. Aggregation into unique (code, count) runs is also
// per-bucket and therefore parallel.
//
// This is the Jellyfish-style parallel counting decomposition
// (Marçais & Kingsford 2011) restricted to the exact, deterministic
// sorted-array representation Sec. 2.3 of the paper builds on.

#include <cstdint>
#include <vector>

#include "seq/kmer.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

struct RadixSortOptions {
  /// Bucket count is 2^radix_bits. Negative = choose from input size
  /// (targeting a few thousand codes per bucket); 0 = one bucket
  /// (degenerates to a single sort).
  int radix_bits = -1;
  /// Pool for per-bucket work. nullptr = util::default_pool(). The
  /// serial entry points below never touch a pool.
  util::ThreadPool* pool = nullptr;
};

/// Picks a radix width for `n` codes of a 2k-bit key: enough buckets to
/// keep per-bucket sorts cache-resident and the pool busy, capped so the
/// offset table stays small and never wider than the key itself.
int choose_radix_bits(std::size_t n, int k) noexcept;

/// Sorts `codes` ascending via the radix partition. Multiset- and
/// byte-identical to std::sort(codes.begin(), codes.end()).
void radix_sort_codes(std::vector<seq::KmerCode>& codes, int k,
                      const RadixSortOptions& options = {});

/// Sorts the instance multiset `codes` (destructively) and aggregates it
/// into strictly ascending unique `out_codes` with parallel positive
/// `out_counts` — the (R^k, multiplicity) arrays KSpectrum stores.
/// Equivalent to sort + run-length encode, but partitioned: counting,
/// sorting, and aggregation all run per-bucket on the pool.
void radix_sort_and_count(std::vector<seq::KmerCode>&& codes, int k,
                          std::vector<seq::KmerCode>& out_codes,
                          std::vector<std::uint32_t>& out_counts,
                          const RadixSortOptions& options = {});

/// Serial reference paths (the seed implementation), kept callable so
/// benches and tests can diff the parallel output against them.
void serial_sort_and_count(std::vector<seq::KmerCode>&& codes,
                           std::vector<seq::KmerCode>& out_codes,
                           std::vector<std::uint32_t>& out_counts);

}  // namespace ngs::kspec
