#pragma once
// Parallel radix-partitioned sorting of packed kmer codes — the
// construction engine behind KSpectrum and ChunkedSpectrumBuilder.
//
// Codes are sharded by their top `radix_bits` bits (the 5'-most bases,
// since the codec stores the first base in the most significant pair)
// into 2^radix_bits buckets with a two-pass stable counting partition,
// then each bucket is sorted independently on a util::ThreadPool.
// Because the buckets cover disjoint, ascending key ranges, their
// concatenation is globally sorted — the output is byte-identical to a
// single std::sort over the whole array, for every thread count and
// every radix width. Aggregation into unique (code, count) runs is also
// per-bucket and therefore parallel.
//
// This is the Jellyfish-style parallel counting decomposition
// (Marçais & Kingsford 2011) restricted to the exact, deterministic
// sorted-array representation Sec. 2.3 of the paper builds on.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "seq/kmer.hpp"

namespace ngs::util {
class AtomicFile;
class ThreadPool;
}

namespace ngs::kspec {

struct RadixSortOptions {
  /// Bucket count is 2^radix_bits. Negative = choose from input size
  /// (targeting a few thousand codes per bucket); 0 = one bucket
  /// (degenerates to a single sort).
  int radix_bits = -1;
  /// Pool for per-bucket work. nullptr = util::default_pool(). The
  /// serial entry points below never touch a pool.
  util::ThreadPool* pool = nullptr;
};

/// Picks a radix width for `n` codes of a 2k-bit key: enough buckets to
/// keep per-bucket sorts cache-resident and the pool busy, capped so the
/// offset table stays small and never wider than the key itself.
int choose_radix_bits(std::size_t n, int k) noexcept;

/// Sorts `codes` ascending via the radix partition. Multiset- and
/// byte-identical to std::sort(codes.begin(), codes.end()).
void radix_sort_codes(std::vector<seq::KmerCode>& codes, int k,
                      const RadixSortOptions& options = {});

/// Sorts the instance multiset `codes` (destructively) and aggregates it
/// into strictly ascending unique `out_codes` with parallel positive
/// `out_counts` — the (R^k, multiplicity) arrays KSpectrum stores.
/// Equivalent to sort + run-length encode, but partitioned: counting,
/// sorting, and aggregation all run per-bucket on the pool.
void radix_sort_and_count(std::vector<seq::KmerCode>&& codes, int k,
                          std::vector<seq::KmerCode>& out_codes,
                          std::vector<std::uint32_t>& out_counts,
                          const RadixSortOptions& options = {});

/// Serial reference paths (the seed implementation), kept callable so
/// benches and tests can diff the parallel output against them.
void serial_sort_and_count(std::vector<seq::KmerCode>&& codes,
                           std::vector<seq::KmerCode>& out_codes,
                           std::vector<std::uint32_t>& out_counts);

/// Disk-backed prefix partition for the out-of-core spectrum build
/// (KMC/RECKONER-style): kmer instances are routed by their top
/// `shard_bits` key bits into 2^shard_bits per-bin temp files, so each
/// bin can later be read back, sorted, and counted independently in a
/// fraction of the whole multiset's memory. Bins cover disjoint
/// ascending key ranges — exactly the invariant of the in-memory radix
/// partition above — so per-bin (code, count) runs concatenate into the
/// globally sorted spectrum with zero cross-bin merging.
///
/// Write protocol: add() buffers per bin (small bounded buffers, see
/// buffer_bytes()) and appends raw little-endian u64 codes to the bin's
/// util::AtomicFile; close_writes() flushes and commits every bin, after
/// which read_bin() serves them back. All bin files (and any uncommitted
/// temps, on a failure unwind) are removed on destruction. I/O failures
/// throw ngs::Error(kIo) sited at fault::sites::kSpillWrite/kSpillRead,
/// both drivable from the fault registry.
class SpillPartitioner {
 public:
  /// `dir` must name an existing or creatable directory; bin files are
  /// uniquely named per process and partitioner.
  SpillPartitioner(int k, int shard_bits, std::string dir,
                   std::size_t buffer_codes_per_bin = 1024);
  ~SpillPartitioner();
  SpillPartitioner(const SpillPartitioner&) = delete;
  SpillPartitioner& operator=(const SpillPartitioner&) = delete;

  int shard_bits() const noexcept { return shard_bits_; }
  std::size_t bin_count() const noexcept { return bins_.size(); }

  /// Routes every code to its bin buffer, flushing full buffers to disk.
  void add(std::span<const seq::KmerCode> codes);

  /// Flushes and commits every bin file. add() is invalid afterwards.
  void close_writes();

  /// Instances routed to `bin` so far.
  std::uint64_t bin_instances(std::size_t bin) const noexcept {
    return bins_[bin].instances;
  }
  /// Bins holding at least one instance.
  std::size_t nonempty_bins() const noexcept;
  /// Total bytes spilled to disk across all bins.
  std::uint64_t spilled_bytes() const noexcept { return spilled_bytes_; }
  /// Bytes held by the in-memory bin buffers (for budget accounting).
  std::size_t buffer_bytes() const noexcept;

  /// Reads bin `bin` back as a code multiset (in spill order). Requires
  /// close_writes(); the bin file stays on disk until destruction.
  std::vector<seq::KmerCode> read_bin(std::size_t bin) const;

 private:
  struct Bin {
    std::vector<seq::KmerCode> buffer;
    std::unique_ptr<util::AtomicFile> file;  // created on first flush
    std::string path;
    std::uint64_t instances = 0;
  };
  void flush_bin(Bin& bin);

  int k_;
  int shard_bits_;
  int shift_;
  std::string dir_;
  std::size_t buffer_codes_per_bin_;
  std::vector<Bin> bins_;
  std::uint64_t spilled_bytes_ = 0;
  bool writable_ = true;
};

}  // namespace ngs::kspec
