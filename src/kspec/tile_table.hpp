#pragma once
// Tile occurrence table (Sec. 2.2-2.3): a tile is the l-concatenation of
// two adjacent kmers of a read, t = a1 ||_l a2, |t| = 2k - l <= 32. For
// every distinct tile the table records
//   Oc — its total multiplicity in R (both strands), and
//   Og — the multiplicity counting only instances in which every base has
//        quality score >= Qc (Og = Oc when quality is unavailable).
// Algorithm 1 (tile correction) bases all decisions on Og.

#include <cstdint>
#include <span>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/read.hpp"
#include "util/stats.hpp"

namespace ngs::kspec {

struct TileParams {
  int k = 12;
  int overlap = 0;          // l; tile length = 2k - l
  int quality_cutoff = 0;   // Qc; 0 disables the quality filter
  bool both_strands = true;

  int tile_length() const noexcept { return 2 * k - overlap; }
};

class TileTable {
 public:
  TileTable() = default;

  static TileTable build(const seq::ReadSet& reads, const TileParams& params);

  struct Counts {
    std::uint32_t oc = 0;
    std::uint32_t og = 0;
  };

  const TileParams& params() const noexcept { return params_; }
  int tile_length() const noexcept { return params_.tile_length(); }
  std::size_t size() const noexcept { return codes_.size(); }

  /// Occurrence counts of a packed tile code (zeros if absent).
  Counts counts(seq::KmerCode tile) const noexcept;

  std::uint32_t og(seq::KmerCode tile) const noexcept {
    return counts(tile).og;
  }

  /// Batched Og lookup: out[i] = og(tiles[i]) (0 if absent), bit-identical
  /// to the single-probe path. The candidate cross-product of Algorithm 1
  /// probes dozens of tiles per decision; batching advances groups of
  /// binary-search descents in lockstep with software prefetch,
  /// overlapping their cache misses. Precondition:
  /// tiles.size() == out.size().
  void og_batch(std::span<const seq::KmerCode> tiles,
                std::span<std::uint32_t> out) const;

  /// Og's of Algorithm 1's full candidate cross-product in one call:
  /// out[i * a2.size() + j] = og of the tile whose leading kmer is a1[i]
  /// and whose trailing kmer contributes a2[j]'s low 2(k-l) bits — i.e.
  /// og(concat_kmers(a1[i], k, a2[j], k, l)). Exploits that all tiles
  /// sharing a leading kmer are contiguous in the sorted table: one
  /// interleaved range find per a1 entry plus a merge of that (short)
  /// run against the sorted a2 contributions replaces a full binary
  /// search per pair. Values are bit-identical to per-pair counts().
  /// Precondition: out.size() == a1.size() * a2.size().
  void og_cross(std::span<const seq::KmerCode> a1,
                std::span<const seq::KmerCode> a2,
                std::span<std::uint32_t> out) const;

  /// Histogram of high-quality multiplicities Og over distinct tiles —
  /// the input to Reptile's data-driven choice of Cg and Cm.
  util::Histogram og_histogram() const;

  seq::KmerCode code_at(std::size_t i) const noexcept { return codes_[i]; }
  Counts counts_at(std::size_t i) const noexcept {
    return {oc_[i], og_[i]};
  }

 private:
  void rebuild_prefix_index();

  TileParams params_;
  std::vector<seq::KmerCode> codes_;  // sorted distinct tile codes
  std::vector<std::uint32_t> oc_;
  std::vector<std::uint32_t> og_;
  // Prefix-bucket index over the top prefix_bits_ of each tile code:
  // codes with prefix p live in [bucket_starts_[p], bucket_starts_[p+1]).
  // Narrows every lookup from the full array to a ~32-entry bucket.
  std::vector<std::uint64_t> bucket_starts_;
  int prefix_bits_ = 0;
};

}  // namespace ngs::kspec
