#pragma once
// Tile occurrence table (Sec. 2.2-2.3): a tile is the l-concatenation of
// two adjacent kmers of a read, t = a1 ||_l a2, |t| = 2k - l <= 32. For
// every distinct tile the table records
//   Oc — its total multiplicity in R (both strands), and
//   Og — the multiplicity counting only instances in which every base has
//        quality score >= Qc (Og = Oc when quality is unavailable).
// Algorithm 1 (tile correction) bases all decisions on Og.

#include <cstdint>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/read.hpp"
#include "util/stats.hpp"

namespace ngs::kspec {

struct TileParams {
  int k = 12;
  int overlap = 0;          // l; tile length = 2k - l
  int quality_cutoff = 0;   // Qc; 0 disables the quality filter
  bool both_strands = true;

  int tile_length() const noexcept { return 2 * k - overlap; }
};

class TileTable {
 public:
  TileTable() = default;

  static TileTable build(const seq::ReadSet& reads, const TileParams& params);

  struct Counts {
    std::uint32_t oc = 0;
    std::uint32_t og = 0;
  };

  const TileParams& params() const noexcept { return params_; }
  int tile_length() const noexcept { return params_.tile_length(); }
  std::size_t size() const noexcept { return codes_.size(); }

  /// Occurrence counts of a packed tile code (zeros if absent).
  Counts counts(seq::KmerCode tile) const noexcept;

  std::uint32_t og(seq::KmerCode tile) const noexcept {
    return counts(tile).og;
  }

  /// Histogram of high-quality multiplicities Og over distinct tiles —
  /// the input to Reptile's data-driven choice of Cg and Cm.
  util::Histogram og_histogram() const;

  seq::KmerCode code_at(std::size_t i) const noexcept { return codes_[i]; }
  Counts counts_at(std::size_t i) const noexcept {
    return {oc_[i], og_[i]};
  }

 private:
  TileParams params_;
  std::vector<seq::KmerCode> codes_;  // sorted distinct tile codes
  std::vector<std::uint32_t> oc_;
  std::vector<std::uint32_t> og_;
};

}  // namespace ngs::kspec
