#include "kspec/tile_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/alphabet.hpp"

namespace ngs::kspec {
namespace {

/// Appends packed tile codes of one oriented sequence. `quality` may be
/// empty (then every instance is high quality when Qc == 0 is in force).
void extract_tiles(std::string_view bases,
                   const std::vector<std::uint8_t>& quality,
                   const TileParams& params,
                   std::vector<seq::KmerCode>& all,
                   std::vector<seq::KmerCode>& high_quality) {
  const int tl = params.tile_length();
  if (bases.size() < static_cast<std::size_t>(tl)) return;
  const seq::KmerCode mask =
      tl == 32 ? ~seq::KmerCode{0} : ((seq::KmerCode{1} << (2 * tl)) - 1);
  seq::KmerCode code = 0;
  int valid = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const std::uint8_t b = seq::base_to_code(bases[i]);
    if (b == seq::kInvalidBase) {
      valid = 0;
      code = 0;
      continue;
    }
    code = ((code << 2) | b) & mask;
    if (++valid >= tl) {
      all.push_back(code);
      bool hq = true;
      if (params.quality_cutoff > 0 && !quality.empty()) {
        const std::size_t start = i + 1 - static_cast<std::size_t>(tl);
        for (std::size_t j = start; j <= i; ++j) {
          if (quality[j] < params.quality_cutoff) {
            hq = false;
            break;
          }
        }
      }
      if (hq) high_quality.push_back(code);
    }
  }
}

}  // namespace

TileTable TileTable::build(const seq::ReadSet& reads,
                           const TileParams& params) {
  if (params.tile_length() > seq::kMaxK || params.overlap >= params.k ||
      params.overlap < 0) {
    throw std::invalid_argument("TileTable: invalid k/overlap combination");
  }
  std::vector<seq::KmerCode> all, hq;
  for (const auto& r : reads.reads) {
    extract_tiles(r.bases, r.quality, params, all, hq);
    if (params.both_strands) {
      const std::string rc = seq::reverse_complement(r.bases);
      std::vector<std::uint8_t> rq(r.quality.rbegin(), r.quality.rend());
      extract_tiles(rc, rq, params, all, hq);
    }
  }
  std::sort(all.begin(), all.end());
  std::sort(hq.begin(), hq.end());

  TileTable table;
  table.params_ = params;
  std::size_t h = 0;
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j] == all[i]) ++j;
    std::size_t h_end = h;
    while (h_end < hq.size() && hq[h_end] == all[i]) ++h_end;
    table.codes_.push_back(all[i]);
    table.oc_.push_back(static_cast<std::uint32_t>(j - i));
    table.og_.push_back(static_cast<std::uint32_t>(h_end - h));
    h = h_end;
    i = j;
  }
  return table;
}

TileTable::Counts TileTable::counts(seq::KmerCode tile) const noexcept {
  const auto it = std::lower_bound(codes_.begin(), codes_.end(), tile);
  if (it == codes_.end() || *it != tile) return {};
  const auto i = static_cast<std::size_t>(it - codes_.begin());
  return {oc_[i], og_[i]};
}

util::Histogram TileTable::og_histogram() const {
  util::Histogram h;
  for (const std::uint32_t og : og_) {
    h.add(static_cast<std::int64_t>(og));
  }
  return h;
}

}  // namespace ngs::kspec
