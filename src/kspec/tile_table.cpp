#include "kspec/tile_table.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "util/batch_search.hpp"

namespace ngs::kspec {
namespace {

/// Appends packed tile codes of one oriented sequence. `quality` may be
/// empty (then every instance is high quality when Qc == 0 is in force).
void extract_tiles(std::string_view bases,
                   const std::vector<std::uint8_t>& quality,
                   const TileParams& params,
                   std::vector<seq::KmerCode>& all,
                   std::vector<seq::KmerCode>& high_quality) {
  const int tl = params.tile_length();
  if (bases.size() < static_cast<std::size_t>(tl)) return;
  const seq::KmerCode mask =
      tl == 32 ? ~seq::KmerCode{0} : ((seq::KmerCode{1} << (2 * tl)) - 1);
  seq::KmerCode code = 0;
  int valid = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const std::uint8_t b = seq::base_to_code(bases[i]);
    if (b == seq::kInvalidBase) {
      valid = 0;
      code = 0;
      continue;
    }
    code = ((code << 2) | b) & mask;
    if (++valid >= tl) {
      all.push_back(code);
      bool hq = true;
      if (params.quality_cutoff > 0 && !quality.empty()) {
        const std::size_t start = i + 1 - static_cast<std::size_t>(tl);
        for (std::size_t j = start; j <= i; ++j) {
          if (quality[j] < params.quality_cutoff) {
            hq = false;
            break;
          }
        }
      }
      if (hq) high_quality.push_back(code);
    }
  }
}

}  // namespace

TileTable TileTable::build(const seq::ReadSet& reads,
                           const TileParams& params) {
  if (params.tile_length() > seq::kMaxK || params.overlap >= params.k ||
      params.overlap < 0) {
    throw std::invalid_argument("TileTable: invalid k/overlap combination");
  }
  std::vector<seq::KmerCode> all, hq;
  for (const auto& r : reads.reads) {
    extract_tiles(r.bases, r.quality, params, all, hq);
    if (params.both_strands) {
      const std::string rc = seq::reverse_complement(r.bases);
      std::vector<std::uint8_t> rq(r.quality.rbegin(), r.quality.rend());
      extract_tiles(rc, rq, params, all, hq);
    }
  }
  std::sort(all.begin(), all.end());
  std::sort(hq.begin(), hq.end());

  TileTable table;
  table.params_ = params;
  std::size_t h = 0;
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j] == all[i]) ++j;
    std::size_t h_end = h;
    while (h_end < hq.size() && hq[h_end] == all[i]) ++h_end;
    table.codes_.push_back(all[i]);
    table.oc_.push_back(static_cast<std::uint32_t>(j - i));
    table.og_.push_back(static_cast<std::uint32_t>(h_end - h));
    h = h_end;
    i = j;
  }
  table.rebuild_prefix_index();
  return table;
}

void TileTable::rebuild_prefix_index() {
  // Same sizing rule as KSpectrum: ~32 codes per bucket, capped so the
  // offset table stays a few MB and never exceeds the key width.
  const int key_bits = 2 * params_.tile_length();
  const int bits =
      codes_.size() < 64
          ? 0
          : std::clamp(static_cast<int>(std::bit_width(codes_.size() / 32)), 1,
                       std::min(key_bits - 1, 20));
  prefix_bits_ = bits;
  if (bits <= 0) {
    bucket_starts_.clear();
    return;
  }
  const int shift = key_bits - bits;
  const std::size_t buckets = std::size_t{1} << bits;
  bucket_starts_.assign(buckets + 1, 0);
  for (const seq::KmerCode code : codes_) {
    ++bucket_starts_[(code >> shift) + 1];
  }
  for (std::size_t b = 1; b < bucket_starts_.size(); ++b) {
    bucket_starts_[b] += bucket_starts_[b - 1];
  }
}

TileTable::Counts TileTable::counts(seq::KmerCode tile) const noexcept {
  const seq::KmerCode* first = codes_.data();
  const seq::KmerCode* last = first + codes_.size();
  if (prefix_bits_ > 0) {
    const std::size_t b = static_cast<std::size_t>(
        tile >> (2 * params_.tile_length() - prefix_bits_));
    if (b + 1 >= bucket_starts_.size()) return {};  // key out of range
    first = codes_.data() + bucket_starts_[b];
    last = codes_.data() + bucket_starts_[b + 1];
  }
  const auto* it = std::lower_bound(first, last, tile);
  if (it == last || *it != tile) return {};
  const auto i = static_cast<std::size_t>(it - codes_.data());
  return {oc_[i], og_[i]};
}

void TileTable::og_batch(std::span<const seq::KmerCode> tiles,
                         std::span<std::uint32_t> out) const {
  const int key_bits = 2 * params_.tile_length();
  for (std::size_t g = 0; g < tiles.size(); g += util::kProbeGroup) {
    const std::size_t gn = std::min(util::kProbeGroup, tiles.size() - g);
    std::uint64_t keys[util::kProbeGroup];
    std::size_t lo[util::kProbeGroup];
    std::size_t len[util::kProbeGroup];
    std::size_t hi[util::kProbeGroup];
    for (std::size_t j = 0; j < gn; ++j) {
      const seq::KmerCode code = tiles[g + j];
      keys[j] = code;
      lo[j] = 0;
      hi[j] = codes_.size();
      if (prefix_bits_ > 0) {
        const std::size_t b =
            static_cast<std::size_t>(code >> (key_bits - prefix_bits_));
        if (b + 1 >= bucket_starts_.size()) {  // key out of range
          hi[j] = 0;
        } else {
          lo[j] = bucket_starts_[b];
          hi[j] = bucket_starts_[b + 1];
        }
      }
      len[j] = hi[j] - lo[j];
    }
    util::interleaved_lower_bound(codes_.data(), keys, lo, len, gn);
    for (std::size_t j = 0; j < gn; ++j) {
      const std::size_t r = lo[j];
      out[g + j] = (r < hi[j] && codes_[r] == keys[j]) ? og_[r] : 0;
    }
  }
}

void TileTable::og_cross(std::span<const seq::KmerCode> a1,
                         std::span<const seq::KmerCode> a2,
                         std::span<std::uint32_t> out) const {
  const std::size_t n1 = a1.size();
  const std::size_t n2 = a2.size();
  if (out.size() != n1 * n2) {
    throw std::invalid_argument("og_cross: out size != a1.size() * a2.size()");
  }
  if (n1 == 0 || n2 == 0) return;
  std::fill(out.begin(), out.end(), 0u);
  const int k = params_.k;
  const int low_bits = 2 * (k - params_.overlap);  // a2's tile contribution
  const seq::KmerCode low_mask = (seq::KmerCode{1} << low_bits) - 1;

  // Sides beyond the stack scratch (far above Reptile's option caps):
  // fall back to independent probes.
  constexpr std::size_t kMaxSide = 64;
  if (n1 > kMaxSide || n2 > kMaxSide) {
    for (std::size_t i = 0; i < n1; ++i) {
      const seq::KmerCode hi = a1[i] << low_bits;
      for (std::size_t j = 0; j < n2; ++j) {
        out[i * n2 + j] = counts(hi | (a2[j] & low_mask)).og;
      }
    }
    return;
  }

  // Sort the a2 contributions once per call. Distinct kmers can mask to
  // the same low bits when l > 0; every tie receives the hit's Og.
  struct LowKey {
    seq::KmerCode low;
    std::uint32_t j;
  };
  LowKey keys2[kMaxSide];
  for (std::size_t j = 0; j < n2; ++j) {
    keys2[j] = {a2[j] & low_mask, static_cast<std::uint32_t>(j)};
  }
  std::sort(keys2, keys2 + n2,
            [](const LowKey& x, const LowKey& y) { return x.low < y.low; });

  // Global lower bound of each a1 range start (the first tile whose code
  // is >= a1[i] << low_bits), descents interleaved so their cache misses
  // overlap. Bucket narrowing stays a global lower bound: codes before
  // the bucket are < the key, and the code at the bucket's end (if the
  // range is empty) belongs to a later bucket, hence >= the key.
  const int key_bits = 2 * params_.tile_length();
  std::size_t r0[kMaxSide];
  for (std::size_t g = 0; g < n1; g += util::kProbeGroup) {
    const std::size_t gn = std::min(util::kProbeGroup, n1 - g);
    std::uint64_t keys[util::kProbeGroup];
    std::size_t lo[util::kProbeGroup];
    std::size_t len[util::kProbeGroup];
    for (std::size_t j = 0; j < gn; ++j) {
      const seq::KmerCode key = a1[g + j] << low_bits;
      keys[j] = key;
      lo[j] = 0;
      std::size_t hi = codes_.size();
      if (prefix_bits_ > 0) {
        const std::size_t b =
            static_cast<std::size_t>(key >> (key_bits - prefix_bits_));
        if (b + 1 >= bucket_starts_.size()) {  // key out of range
          lo[j] = codes_.size();
          hi = lo[j];
        } else {
          lo[j] = bucket_starts_[b];
          hi = bucket_starts_[b + 1];
        }
      }
      len[j] = hi - lo[j];
    }
    util::interleaved_lower_bound(codes_.data(), keys, lo, len, gn);
    for (std::size_t j = 0; j < gn; ++j) r0[g + j] = lo[j];
  }

  // Walk each a1 run (short: the distinct tiles extending one kmer) and
  // merge it against the sorted a2 contributions.
  for (std::size_t i = 0; i < n1; ++i) {
    std::uint32_t* row = out.data() + i * n2;
    const seq::KmerCode prefix = a1[i];
    for (std::size_t r = r0[i];
         r < codes_.size() && (codes_[r] >> low_bits) == prefix; ++r) {
      const seq::KmerCode low = codes_[r] & low_mask;
      std::size_t t = 0;
      std::size_t hi2 = n2;
      while (t < hi2) {
        const std::size_t mid = (t + hi2) / 2;
        if (keys2[mid].low < low) {
          t = mid + 1;
        } else {
          hi2 = mid;
        }
      }
      for (; t < n2 && keys2[t].low == low; ++t) row[keys2[t].j] = og_[r];
    }
  }
}

util::Histogram TileTable::og_histogram() const {
  util::Histogram h;
  for (const std::uint32_t og : og_) {
    h.add(static_cast<std::int64_t>(og));
  }
  return h;
}

}  // namespace ngs::kspec
