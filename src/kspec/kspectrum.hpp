#pragma once
// The k-spectrum R^k of a read set (Sec. 2.1): the sorted multiset of all
// kmers occurring in the reads (optionally including reverse-complement
// strands, as Reptile requires for double-strandedness). Stored as a
// sorted code array with parallel counts, so membership and count lookups
// are binary searches and the structure is directly usable as the base
// array of the masked-sort neighborhood index.
//
// Construction is radix-partitioned and parallel (see kspec/radix.hpp):
// instances are sharded by their top prefix bits, buckets sort
// concurrently, and the concatenation is byte-identical to the serial
// sort for every thread count. The same prefix sharding is kept at query
// time as a bucket-offset table, so index_of narrows to a within-bucket
// binary search over a few cache lines instead of log2(|R^k|) scattered
// probes — every corrector, eval::kmer_classification, and
// assembly::debruijn inherit the speedup through contains()/count().

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/read.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

/// Controls for the parallel spectrum build and the lookup index.
struct SpectrumBuildOptions {
  /// 1 = the serial seed path (single std::sort in the calling thread,
  /// kept as the benchmark baseline); 0 = the shared default pool; any
  /// other value = a dedicated pool of that many workers for this build.
  std::size_t threads = 0;
  /// Radix partition width for construction (2^bits buckets); -1 = auto
  /// from input size, 0 = a single bucket (plain sort).
  int radix_bits = -1;
  /// Prefix-bucket lookup index width; -1 = auto from spectrum size,
  /// 0 = disable (index_of falls back to a full-range binary search).
  int prefix_index_bits = -1;
  /// Pool override for construction; supersedes `threads` unless
  /// threads == 1 (serial stays serial).
  util::ThreadPool* pool = nullptr;
};

class KSpectrum {
 public:
  KSpectrum() = default;

  /// Builds the k-spectrum of `reads`. If both_strands, every read's
  /// reverse complement contributes as well. Windows with ambiguous
  /// bases are skipped (callers convert N's beforehand if desired).
  static KSpectrum build(const seq::ReadSet& reads, int k,
                         bool both_strands = true,
                         const SpectrumBuildOptions& options = {});

  /// Builds from a single long sequence (e.g. the reference genome, for
  /// ground-truth kmer classification).
  static KSpectrum build_from_sequence(std::string_view sequence, int k,
                                       bool both_strands = false,
                                       const SpectrumBuildOptions& options = {});

  /// Builds from an explicit code multiset.
  static KSpectrum from_codes(std::vector<seq::KmerCode> codes, int k,
                              const SpectrumBuildOptions& options = {});

  /// Builds from pre-aggregated sorted (code, count) arrays (used by the
  /// bounded-memory ChunkedSpectrumBuilder). Codes must be strictly
  /// ascending; counts parallel and positive.
  static KSpectrum from_sorted_counts(std::vector<seq::KmerCode> codes,
                                      std::vector<std::uint32_t> counts,
                                      int k, int prefix_index_bits = -1);

  int k() const noexcept { return k_; }
  std::size_t size() const noexcept { return codes_.size(); }
  bool empty() const noexcept { return codes_.empty(); }

  /// Total kmer instances (sum of counts).
  std::uint64_t total_instances() const noexcept { return total_; }

  bool contains(seq::KmerCode code) const noexcept {
    return index_of(code) >= 0;
  }

  /// Multiplicity of `code` in the spectrum (0 if absent).
  std::uint32_t count(seq::KmerCode code) const noexcept {
    const auto i = index_of(code);
    return i < 0 ? 0 : counts_[static_cast<std::size_t>(i)];
  }

  /// Index of `code` in the sorted array, or -1. Uses the prefix-bucket
  /// table when present; exact either way.
  std::int64_t index_of(seq::KmerCode code) const noexcept;

  /// (Re)builds the prefix-bucket lookup table: 2^bits offsets into the
  /// sorted array, one per top-bits key prefix. -1 = auto width from the
  /// spectrum size, 0 = drop the index. Purely an accessor structure —
  /// never changes lookup results.
  void rebuild_prefix_index(int prefix_index_bits = -1);

  /// Width of the active prefix index (0 = disabled).
  int prefix_index_bits() const noexcept { return prefix_bits_; }

  /// Bytes held by the prefix-bucket offset table.
  std::size_t prefix_index_bytes() const noexcept {
    return bucket_starts_.size() * sizeof(std::uint64_t);
  }

  seq::KmerCode code_at(std::size_t i) const noexcept { return codes_[i]; }
  std::uint32_t count_at(std::size_t i) const noexcept { return counts_[i]; }

  std::span<const seq::KmerCode> codes() const noexcept { return codes_; }
  std::span<const std::uint32_t> counts() const noexcept { return counts_; }

 private:
  static KSpectrum from_instances(std::vector<seq::KmerCode> instances, int k,
                                  const SpectrumBuildOptions& options);

  int k_ = 0;
  std::uint64_t total_ = 0;
  std::vector<seq::KmerCode> codes_;    // sorted ascending, unique
  std::vector<std::uint32_t> counts_;   // parallel multiplicities
  int prefix_bits_ = 0;                 // 0 = no prefix index
  std::vector<std::uint64_t> bucket_starts_;  // 2^prefix_bits_ + 1 offsets
};

}  // namespace ngs::kspec
