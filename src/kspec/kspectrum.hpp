#pragma once
// The k-spectrum R^k of a read set (Sec. 2.1): the sorted multiset of all
// kmers occurring in the reads (optionally including reverse-complement
// strands, as Reptile requires for double-strandedness). Stored as a
// sorted code array with parallel counts, so membership and count lookups
// are binary searches and the structure is directly usable as the base
// array of the masked-sort neighborhood index.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/read.hpp"

namespace ngs::kspec {

class KSpectrum {
 public:
  KSpectrum() = default;

  /// Builds the k-spectrum of `reads`. If both_strands, every read's
  /// reverse complement contributes as well. Windows with ambiguous
  /// bases are skipped (callers convert N's beforehand if desired).
  static KSpectrum build(const seq::ReadSet& reads, int k,
                         bool both_strands = true);

  /// Builds from a single long sequence (e.g. the reference genome, for
  /// ground-truth kmer classification).
  static KSpectrum build_from_sequence(std::string_view sequence, int k,
                                       bool both_strands = false);

  /// Builds from an explicit code multiset (used by tests).
  static KSpectrum from_codes(std::vector<seq::KmerCode> codes, int k);

  /// Builds from pre-aggregated sorted (code, count) arrays (used by the
  /// bounded-memory ChunkedSpectrumBuilder). Codes must be strictly
  /// ascending; counts parallel and positive.
  static KSpectrum from_sorted_counts(std::vector<seq::KmerCode> codes,
                                      std::vector<std::uint32_t> counts,
                                      int k);

  int k() const noexcept { return k_; }
  std::size_t size() const noexcept { return codes_.size(); }
  bool empty() const noexcept { return codes_.empty(); }

  /// Total kmer instances (sum of counts).
  std::uint64_t total_instances() const noexcept { return total_; }

  bool contains(seq::KmerCode code) const noexcept {
    return index_of(code) >= 0;
  }

  /// Multiplicity of `code` in the spectrum (0 if absent).
  std::uint32_t count(seq::KmerCode code) const noexcept {
    const auto i = index_of(code);
    return i < 0 ? 0 : counts_[static_cast<std::size_t>(i)];
  }

  /// Index of `code` in the sorted array, or -1.
  std::int64_t index_of(seq::KmerCode code) const noexcept;

  seq::KmerCode code_at(std::size_t i) const noexcept { return codes_[i]; }
  std::uint32_t count_at(std::size_t i) const noexcept { return counts_[i]; }

  std::span<const seq::KmerCode> codes() const noexcept { return codes_; }
  std::span<const std::uint32_t> counts() const noexcept { return counts_; }

 private:
  int k_ = 0;
  std::uint64_t total_ = 0;
  std::vector<seq::KmerCode> codes_;    // sorted ascending, unique
  std::vector<std::uint32_t> counts_;   // parallel multiplicities
};

}  // namespace ngs::kspec
