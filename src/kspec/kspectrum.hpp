#pragma once
// The k-spectrum R^k of a read set (Sec. 2.1): the sorted multiset of all
// kmers occurring in the reads (optionally including reverse-complement
// strands, as Reptile requires for double-strandedness). Stored as a
// sorted code array with parallel counts, so membership and count lookups
// are binary searches and the structure is directly usable as the base
// array of the masked-sort neighborhood index.
//
// Construction is radix-partitioned and parallel (see kspec/radix.hpp):
// instances are sharded by their top prefix bits, buckets sort
// concurrently, and the concatenation is byte-identical to the serial
// sort for every thread count. The same prefix sharding is kept at query
// time as a bucket-offset table, so index_of narrows to a within-bucket
// binary search over a few cache lines instead of log2(|R^k|) scattered
// probes — every corrector, eval::kmer_classification, and
// assembly::debruijn inherit the speedup through contains()/count().
//
// Storage is view-based: the code/count/bucket arrays are accessed
// through spans that normally point into vectors the spectrum owns, but
// can instead be bound to externally owned memory via adopt_external —
// the zero-copy path index::SpectrumIndex uses to serve a spectrum
// straight out of mmap'ed pages. An optional keepalive handle travels
// with the spectrum (through moves and copies) so the backing mapping
// outlives every accessor.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/read.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

/// Controls for the parallel spectrum build and the lookup index.
struct SpectrumBuildOptions {
  /// 1 = the serial seed path (single std::sort in the calling thread,
  /// kept as the benchmark baseline); 0 = the shared default pool; any
  /// other value = a dedicated pool of that many workers for this build.
  std::size_t threads = 0;
  /// Radix partition width for construction (2^bits buckets); -1 = auto
  /// from input size, 0 = a single bucket (plain sort).
  int radix_bits = -1;
  /// Prefix-bucket lookup index width; -1 = auto from spectrum size,
  /// 0 = disable (index_of falls back to a full-range binary search).
  int prefix_index_bits = -1;
  /// Pool override for construction; supersedes `threads` unless
  /// threads == 1 (serial stays serial).
  util::ThreadPool* pool = nullptr;
};

class KSpectrum;

/// Provider of per-prefix-bin spectra behind a sharded KSpectrum (the
/// out-of-core path): index::ShardedSpectrumView implements this over a
/// sharded index file, materializing (mmap'ing) each shard on first
/// touch. Implementations must be thread-safe — pass-2 correction
/// queries shards from every worker concurrently — and may throw on
/// I/O failure, which is why the sharded accessors below are not
/// noexcept.
class SpectrumShardSource {
 public:
  virtual ~SpectrumShardSource() = default;
  /// The spectrum holding every code whose top shard_bits equal
  /// `prefix`, or nullptr for an empty bin. The returned pointer (and
  /// the arrays behind it) must stay valid for the source's lifetime.
  virtual const KSpectrum* shard(std::uint32_t prefix) const = 0;
};

class KSpectrum {
 public:
  KSpectrum() = default;
  // Copy and move preserve the storage mode: owned spectra deep-copy
  // their vectors; external views copy cheaply (span + shared keepalive).
  KSpectrum(const KSpectrum& other);
  KSpectrum& operator=(const KSpectrum& other);
  KSpectrum(KSpectrum&& other) noexcept;
  KSpectrum& operator=(KSpectrum&& other) noexcept;
  ~KSpectrum() = default;

  /// Builds the k-spectrum of `reads`. If both_strands, every read's
  /// reverse complement contributes as well. Windows with ambiguous
  /// bases are skipped (callers convert N's beforehand if desired).
  static KSpectrum build(const seq::ReadSet& reads, int k,
                         bool both_strands = true,
                         const SpectrumBuildOptions& options = {});

  /// Builds from a single long sequence (e.g. the reference genome, for
  /// ground-truth kmer classification).
  static KSpectrum build_from_sequence(std::string_view sequence, int k,
                                       bool both_strands = false,
                                       const SpectrumBuildOptions& options = {});

  /// Builds from an explicit code multiset.
  static KSpectrum from_codes(std::vector<seq::KmerCode> codes, int k,
                              const SpectrumBuildOptions& options = {});

  /// Builds from pre-aggregated sorted (code, count) arrays (used by the
  /// bounded-memory ChunkedSpectrumBuilder). Precondition: codes are
  /// strictly ascending and in 2k-bit range, counts parallel and
  /// positive. A size mismatch always throws std::invalid_argument; the
  /// O(n) precondition scan runs only in debug builds (NDEBUG off) —
  /// release callers on the hot path are trusted, and out-of-band
  /// sources (the index loader's verify path) check explicitly through
  /// validate_sorted_counts().
  static KSpectrum from_sorted_counts(std::vector<seq::KmerCode> codes,
                                      std::vector<std::uint32_t> counts,
                                      int k, int prefix_index_bits = -1);

  /// Checks the from_sorted_counts precondition over arbitrary arrays:
  /// equal lengths, strictly ascending codes, every code within 2k bits,
  /// every count positive. Returns a human-readable description of the
  /// first violation, or nullopt when the arrays are a valid spectrum.
  /// index::SpectrumIndex runs this over the mapped payload on `verify`.
  static std::optional<std::string> validate_sorted_counts(
      std::span<const seq::KmerCode> codes,
      std::span<const std::uint32_t> counts, int k);

  /// Zero-copy view over externally owned arrays (an mmap'ed
  /// index::SpectrumIndex payload, an arena, ...). `bucket_starts` is
  /// the prefix-bucket offset table for `prefix_bits` (pass empty + 0 to
  /// run without one; rebuild_prefix_index can add an owned one later).
  /// `total` is the instance count (sum of counts). `keepalive` is
  /// retained for the lifetime of the spectrum and every copy of it, so
  /// the backing memory cannot be unmapped while reachable. The caller
  /// is responsible for the arrays actually satisfying the
  /// from_sorted_counts precondition (see validate_sorted_counts).
  static KSpectrum adopt_external(std::span<const seq::KmerCode> codes,
                                  std::span<const std::uint32_t> counts,
                                  std::span<const std::uint64_t> bucket_starts,
                                  int k, std::uint64_t total, int prefix_bits,
                                  std::shared_ptr<const void> keepalive = {});

  /// Sharded spectrum: a facade over 2^shard_bits per-prefix shards
  /// served lazily by `source` (the out-of-core query path behind
  /// index::SpectrumIndex::load on a sharded file). `shard_starts` is
  /// the cumulative distinct-entry offset table (2^shard_bits + 1
  /// entries, shard_starts[p] = global index of shard p's first code),
  /// so global indices, code_at/count_at, and index_of behave exactly
  /// as on a monolithic spectrum — but only the shards actually touched
  /// are ever materialized. codes()/counts()/bucket_starts() return
  /// empty spans in this mode (there is no single contiguous array),
  /// and the lookup accessors may propagate I/O errors from the source.
  static KSpectrum from_shards(std::shared_ptr<const SpectrumShardSource> source,
                               std::vector<std::uint64_t> shard_starts,
                               int shard_bits, int k,
                               std::uint64_t total_instances);

  /// True when the code/count arrays live in memory this spectrum does
  /// not own (adopt_external).
  bool external() const noexcept { return external_; }

  /// True when lookups route through a SpectrumShardSource (from_shards).
  bool sharded() const noexcept { return shard_bits_ > 0; }

  /// Prefix width of the shard routing (0 = not sharded).
  int shard_bits() const noexcept { return shard_bits_; }

  int k() const noexcept { return k_; }
  std::size_t size() const noexcept {
    return shard_bits_ > 0 ? static_cast<std::size_t>(shard_starts_.back())
                           : codes_.size();
  }
  bool empty() const noexcept { return size() == 0; }

  /// Total kmer instances (sum of counts).
  std::uint64_t total_instances() const noexcept { return total_; }

  /// NOTE: on a sharded spectrum the lookup/positional accessors below
  /// may throw (shard materialization is lazy I/O); on in-memory and
  /// external spectra they never do.
  bool contains(seq::KmerCode code) const { return index_of(code) >= 0; }

  /// Multiplicity of `code` in the spectrum (0 if absent).
  std::uint32_t count(seq::KmerCode code) const {
    if (shard_bits_ > 0) return sharded_count(code);
    const auto i = index_of(code);
    return i < 0 ? 0 : counts_[static_cast<std::size_t>(i)];
  }

  /// Index of `code` in the sorted array, or -1. Uses the prefix-bucket
  /// table when present; exact either way.
  std::int64_t index_of(seq::KmerCode code) const;

  /// Batched index_of: out[i] = index_of(probes[i]) for every i, with
  /// results bit-identical to the single-probe path. Groups of probes
  /// advance their binary-search descents in lockstep with software
  /// prefetch (util::interleaved_lower_bound), so the cache misses of
  /// independent probes pipeline instead of serializing.
  /// On a sharded spectrum, probes are grouped per shard prefix first —
  /// each touched shard is resolved once per batch and queried with its
  /// own in-memory batch path. Precondition: probes.size() == out.size().
  void index_of_batch(std::span<const seq::KmerCode> probes,
                      std::span<std::int64_t> out) const;

  /// (Re)builds the prefix-bucket lookup table: 2^bits offsets into the
  /// sorted array, one per top-bits key prefix. -1 = auto width from the
  /// spectrum size, 0 = drop the index. Purely an accessor structure —
  /// never changes lookup results. Valid on external spectra too (the
  /// rebuilt table is owned; the code/count views are untouched).
  void rebuild_prefix_index(int prefix_index_bits = -1);

  /// Width of the active prefix index (0 = disabled).
  int prefix_index_bits() const noexcept { return prefix_bits_; }

  /// Bytes held by the prefix-bucket offset table.
  std::size_t prefix_index_bytes() const noexcept {
    return bucket_starts_.size() * sizeof(std::uint64_t);
  }

  seq::KmerCode code_at(std::size_t i) const {
    return shard_bits_ > 0 ? sharded_code_at(i) : codes_[i];
  }
  std::uint32_t count_at(std::size_t i) const {
    return shard_bits_ > 0 ? sharded_count_at(i) : counts_[i];
  }

  /// Empty on a sharded spectrum (no single contiguous array exists).
  std::span<const seq::KmerCode> codes() const noexcept { return codes_; }
  std::span<const std::uint32_t> counts() const noexcept { return counts_; }

  /// The prefix-bucket offset table (2^prefix_index_bits + 1 entries;
  /// empty when the index is disabled or the spectrum is sharded).
  /// index::write_spectrum_index persists it so a loaded spectrum looks
  /// up at full speed without a rebuild pass.
  std::span<const std::uint64_t> bucket_starts() const noexcept {
    return bucket_starts_;
  }

 private:
  static KSpectrum from_instances(std::vector<seq::KmerCode> instances, int k,
                                  const SpectrumBuildOptions& options);

  /// Points the code/count views at the owned vectors (after they were
  /// filled or moved).
  void rebind_owned() noexcept;
  void move_from(KSpectrum&& other) noexcept;

  // Out-of-line sharded lookup paths (kspectrum.cpp).
  std::int64_t sharded_index_of(seq::KmerCode code) const;
  void sharded_index_of_batch(std::span<const seq::KmerCode> probes,
                              std::span<std::int64_t> out) const;
  std::uint32_t sharded_count(seq::KmerCode code) const;
  seq::KmerCode sharded_code_at(std::size_t i) const;
  std::uint32_t sharded_count_at(std::size_t i) const;
  /// Maps a global index to (shard prefix, local index within shard).
  std::pair<std::uint32_t, std::size_t> locate(std::size_t i) const;

  int k_ = 0;
  std::uint64_t total_ = 0;
  bool external_ = false;  // codes_/counts_ view memory we do not own
  // Owned storage; empty on the external path (bucket_starts_vec_ may
  // still be populated by rebuild_prefix_index on an external spectrum).
  std::vector<seq::KmerCode> codes_vec_;
  std::vector<std::uint32_t> counts_vec_;
  std::vector<std::uint64_t> bucket_starts_vec_;
  // Active views: into the owned vectors or into external memory.
  std::span<const seq::KmerCode> codes_;     // sorted ascending, unique
  std::span<const std::uint32_t> counts_;    // parallel multiplicities
  std::span<const std::uint64_t> bucket_starts_;  // 2^prefix_bits_ + 1
  int prefix_bits_ = 0;  // 0 = no prefix index
  std::shared_ptr<const void> keepalive_;  // owner of external memory
  // Sharded mode (from_shards): lookups route by code >> (2k −
  // shard_bits_) into `shard_source_`; `shard_starts_` (2^shard_bits_+1
  // cumulative distinct offsets) converts between global and per-shard
  // indices. shard_bits_ == 0 means not sharded.
  std::shared_ptr<const SpectrumShardSource> shard_source_;
  std::vector<std::uint64_t> shard_starts_;
  int shard_bits_ = 0;
};

}  // namespace ngs::kspec
