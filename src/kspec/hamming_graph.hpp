#pragma once
// The Hamming graph G_H over the k-spectrum (Sec. 2.3, phase 1b): vertex
// i is spectrum kmer i; an edge joins kmers within Hamming distance d.
// Stored as CSR adjacency over spectrum indices. Edges are recovered with
// the MaskedSortIndex replicas (one pass over the spectrum), which is the
// paper's space/time trade-off; the graph is then shared read-only by
// all correction threads.
//
// REDEEM builds the same graph for its misread neighborhoods N^dmax.

#include <cstdint>
#include <span>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "kspec/neighborhood.hpp"

namespace ngs::kspec {

class HammingGraph {
 public:
  /// Builds adjacency for all spectrum kmers within distance [1, d].
  /// `chunks` is the c of the masked-sort index (0 = auto: d + 3,
  /// clamped to k).
  HammingGraph(const KSpectrum& spectrum, int d, int chunks = 0);

  int d() const noexcept { return d_; }
  std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }
  std::uint64_t num_edges() const noexcept { return neighbors_.size() / 2; }

  /// Spectrum indices adjacent to vertex i (hd in [1, d]).
  std::span<const std::uint32_t> neighbors(std::size_t i) const noexcept {
    return {neighbors_.data() + offsets_[i],
            neighbors_.data() + offsets_[i + 1]};
  }

 private:
  int d_;
  std::vector<std::uint64_t> offsets_;    // size = |spectrum| + 1
  std::vector<std::uint32_t> neighbors_;  // concatenated adjacency
};

}  // namespace ngs::kspec
