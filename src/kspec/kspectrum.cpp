#include "kspec/kspectrum.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/alphabet.hpp"

namespace ngs::kspec {

KSpectrum KSpectrum::from_codes(std::vector<seq::KmerCode> codes, int k) {
  std::sort(codes.begin(), codes.end());
  KSpectrum s;
  s.k_ = k;
  s.total_ = codes.size();
  for (std::size_t i = 0; i < codes.size();) {
    std::size_t j = i;
    while (j < codes.size() && codes[j] == codes[i]) ++j;
    s.codes_.push_back(codes[i]);
    s.counts_.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
  return s;
}

KSpectrum KSpectrum::from_sorted_counts(std::vector<seq::KmerCode> codes,
                                        std::vector<std::uint32_t> counts,
                                        int k) {
  if (codes.size() != counts.size()) {
    throw std::invalid_argument("from_sorted_counts: size mismatch");
  }
  KSpectrum s;
  s.k_ = k;
  s.codes_ = std::move(codes);
  s.counts_ = std::move(counts);
  for (std::size_t i = 0; i < s.codes_.size(); ++i) {
    if (i > 0 && !(s.codes_[i - 1] < s.codes_[i])) {
      throw std::invalid_argument("from_sorted_counts: codes not ascending");
    }
    s.total_ += s.counts_[i];
  }
  return s;
}

KSpectrum KSpectrum::build(const seq::ReadSet& reads, int k,
                           bool both_strands) {
  std::vector<seq::KmerCode> instances;
  instances.reserve(reads.total_bases() * (both_strands ? 2 : 1));
  for (const auto& r : reads.reads) {
    seq::extract_kmer_codes(r.bases, k, instances);
    if (both_strands) {
      const std::string rc = seq::reverse_complement(r.bases);
      seq::extract_kmer_codes(rc, k, instances);
    }
  }
  return from_codes(std::move(instances), k);
}

KSpectrum KSpectrum::build_from_sequence(std::string_view sequence, int k,
                                         bool both_strands) {
  std::vector<seq::KmerCode> instances;
  seq::extract_kmer_codes(sequence, k, instances);
  if (both_strands) {
    const std::string rc = seq::reverse_complement(std::string(sequence));
    seq::extract_kmer_codes(rc, k, instances);
  }
  return from_codes(std::move(instances), k);
}

std::int64_t KSpectrum::index_of(seq::KmerCode code) const noexcept {
  const auto it = std::lower_bound(codes_.begin(), codes_.end(), code);
  if (it == codes_.end() || *it != code) return -1;
  return static_cast<std::int64_t>(it - codes_.begin());
}

}  // namespace ngs::kspec
