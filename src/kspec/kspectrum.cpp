#include "kspec/kspectrum.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <stdexcept>

#include "kspec/radix.hpp"
#include "seq/alphabet.hpp"
#include "util/thread_pool.hpp"

namespace ngs::kspec {

namespace {

/// Auto prefix-index width: ~32 codes per bucket, capped so the offset
/// table stays a few MB and never exceeds the key width.
int auto_prefix_bits(std::size_t size, int k) noexcept {
  if (size < 64) return 0;
  return std::clamp(static_cast<int>(std::bit_width(size / 32)), 1,
                    std::min(2 * k, 20));
}

}  // namespace

KSpectrum KSpectrum::from_instances(std::vector<seq::KmerCode> instances,
                                    int k,
                                    const SpectrumBuildOptions& options) {
  KSpectrum s;
  s.k_ = k;
  s.total_ = instances.size();
  if (options.threads == 1) {
    serial_sort_and_count(std::move(instances), s.codes_, s.counts_);
  } else {
    std::optional<util::ThreadPool> own_pool;
    RadixSortOptions radix;
    radix.radix_bits = options.radix_bits;
    if (options.pool != nullptr) {
      radix.pool = options.pool;
    } else if (options.threads > 1) {
      own_pool.emplace(options.threads);
      radix.pool = &*own_pool;
    }  // else nullptr -> util::default_pool()
    radix_sort_and_count(std::move(instances), k, s.codes_, s.counts_, radix);
  }
  s.rebuild_prefix_index(options.prefix_index_bits);
  return s;
}

KSpectrum KSpectrum::from_codes(std::vector<seq::KmerCode> codes, int k,
                                const SpectrumBuildOptions& options) {
  return from_instances(std::move(codes), k, options);
}

KSpectrum KSpectrum::from_sorted_counts(std::vector<seq::KmerCode> codes,
                                        std::vector<std::uint32_t> counts,
                                        int k, int prefix_index_bits) {
  if (codes.size() != counts.size()) {
    throw std::invalid_argument("from_sorted_counts: size mismatch");
  }
  KSpectrum s;
  s.k_ = k;
  s.codes_ = std::move(codes);
  s.counts_ = std::move(counts);
  for (std::size_t i = 0; i < s.codes_.size(); ++i) {
    if (i > 0 && !(s.codes_[i - 1] < s.codes_[i])) {
      throw std::invalid_argument("from_sorted_counts: codes not ascending");
    }
    s.total_ += s.counts_[i];
  }
  s.rebuild_prefix_index(prefix_index_bits);
  return s;
}

KSpectrum KSpectrum::build(const seq::ReadSet& reads, int k,
                           bool both_strands,
                           const SpectrumBuildOptions& options) {
  std::vector<seq::KmerCode> instances;
  // Reserve the actual window count Σ max(0, len−k+1) per strand — the
  // former total_bases()-based bound over-allocated by ~k bases per read,
  // which dominates peak memory on short-read sets.
  std::size_t windows = 0;
  for (const auto& r : reads.reads) {
    windows += seq::max_kmer_windows(r.bases.size(), k);
  }
  instances.reserve(windows * (both_strands ? 2 : 1));
  for (const auto& r : reads.reads) {
    seq::extract_kmer_codes(r.bases, k, instances);
    if (both_strands) {
      const std::string rc = seq::reverse_complement(r.bases);
      seq::extract_kmer_codes(rc, k, instances);
    }
  }
  return from_instances(std::move(instances), k, options);
}

KSpectrum KSpectrum::build_from_sequence(std::string_view sequence, int k,
                                         bool both_strands,
                                         const SpectrumBuildOptions& options) {
  std::vector<seq::KmerCode> instances;
  instances.reserve(seq::max_kmer_windows(sequence.size(), k) *
                    (both_strands ? 2 : 1));
  seq::extract_kmer_codes(sequence, k, instances);
  if (both_strands) {
    const std::string rc = seq::reverse_complement(std::string(sequence));
    seq::extract_kmer_codes(rc, k, instances);
  }
  return from_instances(std::move(instances), k, options);
}

void KSpectrum::rebuild_prefix_index(int prefix_index_bits) {
  const int bits = prefix_index_bits < 0
                       ? auto_prefix_bits(codes_.size(), k_)
                       : std::min({prefix_index_bits, 2 * k_, 24});
  if (bits <= 0 || codes_.empty()) {
    prefix_bits_ = 0;
    bucket_starts_.clear();
    bucket_starts_.shrink_to_fit();
    return;
  }
  prefix_bits_ = bits;
  const int shift = 2 * k_ - bits;
  const std::size_t buckets = std::size_t{1} << bits;
  bucket_starts_.assign(buckets + 1, 0);
  for (const seq::KmerCode code : codes_) {
    ++bucket_starts_[(code >> shift) + 1];
  }
  for (std::size_t b = 1; b <= buckets; ++b) {
    bucket_starts_[b] += bucket_starts_[b - 1];
  }
}

std::int64_t KSpectrum::index_of(seq::KmerCode code) const noexcept {
  const seq::KmerCode* first = codes_.data();
  const seq::KmerCode* last = first + codes_.size();
  if (prefix_bits_ > 0) {
    const std::size_t b =
        static_cast<std::size_t>(code >> (2 * k_ - prefix_bits_));
    if (b + 1 >= bucket_starts_.size()) return -1;  // key out of range
    first = codes_.data() + bucket_starts_[b];
    last = codes_.data() + bucket_starts_[b + 1];
  }
  const auto* it = std::lower_bound(first, last, code);
  if (it == last || *it != code) return -1;
  return static_cast<std::int64_t>(it - codes_.data());
}

}  // namespace ngs::kspec
