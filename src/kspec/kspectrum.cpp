#include "kspec/kspectrum.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "kspec/radix.hpp"
#include "seq/alphabet.hpp"
#include "util/batch_search.hpp"
#include "util/thread_pool.hpp"

namespace ngs::kspec {

namespace {

/// Auto prefix-index width: ~32 codes per bucket, capped so the offset
/// table stays a few MB and never exceeds the key width.
int auto_prefix_bits(std::size_t size, int k) noexcept {
  if (size < 64) return 0;
  return std::clamp(static_cast<int>(std::bit_width(size / 32)), 1,
                    std::min(2 * k, 20));
}

}  // namespace

void KSpectrum::rebind_owned() noexcept {
  external_ = false;
  codes_ = codes_vec_;
  counts_ = counts_vec_;
  bucket_starts_ = bucket_starts_vec_;
  keepalive_.reset();
}

void KSpectrum::move_from(KSpectrum&& other) noexcept {
  k_ = other.k_;
  total_ = other.total_;
  prefix_bits_ = other.prefix_bits_;
  external_ = other.external_;
  // Whether each view pointed at the owned vectors must be decided
  // before the vectors move (std::vector moves preserve the buffer, but
  // re-deriving the spans keeps this correct without relying on it).
  const bool codes_owned = !other.external_;
  const bool buckets_owned =
      other.bucket_starts_.data() == other.bucket_starts_vec_.data();
  codes_vec_ = std::move(other.codes_vec_);
  counts_vec_ = std::move(other.counts_vec_);
  bucket_starts_vec_ = std::move(other.bucket_starts_vec_);
  keepalive_ = std::move(other.keepalive_);
  codes_ = codes_owned ? std::span<const seq::KmerCode>(codes_vec_)
                       : other.codes_;
  counts_ = codes_owned ? std::span<const std::uint32_t>(counts_vec_)
                        : other.counts_;
  bucket_starts_ = buckets_owned
                       ? std::span<const std::uint64_t>(bucket_starts_vec_)
                       : other.bucket_starts_;
  shard_source_ = std::move(other.shard_source_);
  shard_starts_ = std::move(other.shard_starts_);
  shard_bits_ = other.shard_bits_;
  other.k_ = 0;
  other.total_ = 0;
  other.prefix_bits_ = 0;
  other.external_ = false;
  other.codes_ = {};
  other.counts_ = {};
  other.bucket_starts_ = {};
  other.keepalive_.reset();
  other.shard_source_.reset();
  other.shard_starts_.clear();
  other.shard_bits_ = 0;
}

KSpectrum::KSpectrum(KSpectrum&& other) noexcept { move_from(std::move(other)); }

KSpectrum& KSpectrum::operator=(KSpectrum&& other) noexcept {
  if (this != &other) move_from(std::move(other));
  return *this;
}

KSpectrum::KSpectrum(const KSpectrum& other) { *this = other; }

KSpectrum& KSpectrum::operator=(const KSpectrum& other) {
  if (this == &other) return *this;
  k_ = other.k_;
  total_ = other.total_;
  prefix_bits_ = other.prefix_bits_;
  external_ = other.external_;
  if (other.external_) {
    // Views are cheap to share: both copies alias the same external
    // memory and co-own it through the keepalive.
    codes_vec_.clear();
    counts_vec_.clear();
    codes_ = other.codes_;
    counts_ = other.counts_;
    keepalive_ = other.keepalive_;
  } else {
    codes_vec_ = other.codes_vec_;
    counts_vec_ = other.counts_vec_;
    codes_ = codes_vec_;
    counts_ = counts_vec_;
    keepalive_.reset();
  }
  if (other.bucket_starts_.data() == other.bucket_starts_vec_.data()) {
    bucket_starts_vec_ = other.bucket_starts_vec_;
    bucket_starts_ = bucket_starts_vec_;
  } else {
    bucket_starts_vec_.clear();
    bucket_starts_ = other.bucket_starts_;
  }
  // Sharded copies share the source (it is thread-safe and immutable
  // from the spectrum's point of view).
  shard_source_ = other.shard_source_;
  shard_starts_ = other.shard_starts_;
  shard_bits_ = other.shard_bits_;
  return *this;
}

KSpectrum KSpectrum::from_instances(std::vector<seq::KmerCode> instances,
                                    int k,
                                    const SpectrumBuildOptions& options) {
  KSpectrum s;
  s.k_ = k;
  s.total_ = instances.size();
  if (options.threads == 1) {
    serial_sort_and_count(std::move(instances), s.codes_vec_, s.counts_vec_);
  } else {
    std::optional<util::ThreadPool> own_pool;
    RadixSortOptions radix;
    radix.radix_bits = options.radix_bits;
    if (options.pool != nullptr) {
      radix.pool = options.pool;
    } else if (options.threads > 1) {
      own_pool.emplace(options.threads);
      radix.pool = &*own_pool;
    }  // else nullptr -> util::default_pool()
    radix_sort_and_count(std::move(instances), k, s.codes_vec_, s.counts_vec_,
                         radix);
  }
  s.rebind_owned();
  s.rebuild_prefix_index(options.prefix_index_bits);
  return s;
}

KSpectrum KSpectrum::from_codes(std::vector<seq::KmerCode> codes, int k,
                                const SpectrumBuildOptions& options) {
  return from_instances(std::move(codes), k, options);
}

std::optional<std::string> KSpectrum::validate_sorted_counts(
    std::span<const seq::KmerCode> codes, std::span<const std::uint32_t> counts,
    int k) {
  const auto fail = [](std::size_t i, const char* what) {
    std::ostringstream os;
    os << what << " at index " << i;
    return os.str();
  };
  if (codes.size() != counts.size()) {
    std::ostringstream os;
    os << "codes/counts size mismatch (" << codes.size() << " vs "
       << counts.size() << ")";
    return os.str();
  }
  const seq::KmerCode max_code =
      k >= seq::kMaxK ? ~seq::KmerCode{0}
                      : (seq::KmerCode{1} << (2 * k)) - 1;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] > max_code) return fail(i, "code exceeds 2k-bit range");
    if (counts[i] == 0) return fail(i, "zero count");
    if (i > 0 && !(codes[i - 1] < codes[i])) {
      return fail(i, "codes not strictly ascending");
    }
  }
  return std::nullopt;
}

KSpectrum KSpectrum::from_sorted_counts(std::vector<seq::KmerCode> codes,
                                        std::vector<std::uint32_t> counts,
                                        int k, int prefix_index_bits) {
  if (codes.size() != counts.size()) {
    throw std::invalid_argument("from_sorted_counts: size mismatch");
  }
#ifndef NDEBUG
  if (const auto err = validate_sorted_counts(codes, counts, k)) {
    throw std::invalid_argument("from_sorted_counts: " + *err);
  }
#endif
  KSpectrum s;
  s.k_ = k;
  s.codes_vec_ = std::move(codes);
  s.counts_vec_ = std::move(counts);
  s.total_ = std::accumulate(s.counts_vec_.begin(), s.counts_vec_.end(),
                             std::uint64_t{0});
  s.rebind_owned();
  s.rebuild_prefix_index(prefix_index_bits);
  return s;
}

KSpectrum KSpectrum::adopt_external(std::span<const seq::KmerCode> codes,
                                    std::span<const std::uint32_t> counts,
                                    std::span<const std::uint64_t> bucket_starts,
                                    int k, std::uint64_t total, int prefix_bits,
                                    std::shared_ptr<const void> keepalive) {
  if (codes.size() != counts.size()) {
    throw std::invalid_argument("adopt_external: size mismatch");
  }
  if (prefix_bits > 0 &&
      bucket_starts.size() != (std::size_t{1} << prefix_bits) + 1) {
    throw std::invalid_argument(
        "adopt_external: bucket table size does not match prefix_bits");
  }
  KSpectrum s;
  s.k_ = k;
  s.total_ = total;
  s.external_ = true;
  s.codes_ = codes;
  s.counts_ = counts;
  s.bucket_starts_ = prefix_bits > 0 ? bucket_starts
                                     : std::span<const std::uint64_t>{};
  s.prefix_bits_ = prefix_bits > 0 ? prefix_bits : 0;
  s.keepalive_ = std::move(keepalive);
  return s;
}

KSpectrum KSpectrum::build(const seq::ReadSet& reads, int k,
                           bool both_strands,
                           const SpectrumBuildOptions& options) {
  std::vector<seq::KmerCode> instances;
  // Reserve the actual window count Σ max(0, len−k+1) per strand — the
  // former total_bases()-based bound over-allocated by ~k bases per read,
  // which dominates peak memory on short-read sets.
  std::size_t windows = 0;
  for (const auto& r : reads.reads) {
    windows += seq::max_kmer_windows(r.bases.size(), k);
  }
  instances.reserve(windows * (both_strands ? 2 : 1));
  for (const auto& r : reads.reads) {
    seq::extract_kmer_codes(r.bases, k, instances);
    if (both_strands) {
      const std::string rc = seq::reverse_complement(r.bases);
      seq::extract_kmer_codes(rc, k, instances);
    }
  }
  return from_instances(std::move(instances), k, options);
}

KSpectrum KSpectrum::build_from_sequence(std::string_view sequence, int k,
                                         bool both_strands,
                                         const SpectrumBuildOptions& options) {
  std::vector<seq::KmerCode> instances;
  instances.reserve(seq::max_kmer_windows(sequence.size(), k) *
                    (both_strands ? 2 : 1));
  seq::extract_kmer_codes(sequence, k, instances);
  if (both_strands) {
    const std::string rc = seq::reverse_complement(std::string(sequence));
    seq::extract_kmer_codes(rc, k, instances);
  }
  return from_instances(std::move(instances), k, options);
}

void KSpectrum::rebuild_prefix_index(int prefix_index_bits) {
  if (shard_bits_ > 0) return;  // shards carry their own bucket tables
  const int bits = prefix_index_bits < 0
                       ? auto_prefix_bits(codes_.size(), k_)
                       : std::min({prefix_index_bits, 2 * k_, 24});
  if (bits <= 0 || codes_.empty()) {
    prefix_bits_ = 0;
    bucket_starts_vec_.clear();
    bucket_starts_vec_.shrink_to_fit();
    bucket_starts_ = {};
    return;
  }
  prefix_bits_ = bits;
  const int shift = 2 * k_ - bits;
  const std::size_t buckets = std::size_t{1} << bits;
  bucket_starts_vec_.assign(buckets + 1, 0);
  for (const seq::KmerCode code : codes_) {
    ++bucket_starts_vec_[(code >> shift) + 1];
  }
  for (std::size_t b = 1; b <= buckets; ++b) {
    bucket_starts_vec_[b] += bucket_starts_vec_[b - 1];
  }
  bucket_starts_ = bucket_starts_vec_;
}

std::int64_t KSpectrum::index_of(seq::KmerCode code) const {
  if (shard_bits_ > 0) return sharded_index_of(code);
  const seq::KmerCode* first = codes_.data();
  const seq::KmerCode* last = first + codes_.size();
  if (prefix_bits_ > 0) {
    const std::size_t b =
        static_cast<std::size_t>(code >> (2 * k_ - prefix_bits_));
    if (b + 1 >= bucket_starts_.size()) return -1;  // key out of range
    first = codes_.data() + bucket_starts_[b];
    last = codes_.data() + bucket_starts_[b + 1];
  }
  const auto* it = std::lower_bound(first, last, code);
  if (it == last || *it != code) return -1;
  return static_cast<std::int64_t>(it - codes_.data());
}

void KSpectrum::index_of_batch(std::span<const seq::KmerCode> probes,
                               std::span<std::int64_t> out) const {
  if (probes.size() != out.size()) {
    throw std::invalid_argument("index_of_batch: probes/out size mismatch");
  }
  if (shard_bits_ > 0) {
    sharded_index_of_batch(probes, out);
    return;
  }
  // Groups of kProbeGroup descents advance in lockstep (stack scratch
  // only); each probe is independent, so original order is preserved
  // with no pre-sort.
  for (std::size_t g = 0; g < probes.size(); g += util::kProbeGroup) {
    const std::size_t gn = std::min(util::kProbeGroup, probes.size() - g);
    std::uint64_t keys[util::kProbeGroup];
    std::size_t lo[util::kProbeGroup];
    std::size_t len[util::kProbeGroup];
    std::size_t hi[util::kProbeGroup];
    for (std::size_t j = 0; j < gn; ++j) {
      const seq::KmerCode code = probes[g + j];
      keys[j] = code;
      lo[j] = 0;
      hi[j] = codes_.size();
      if (prefix_bits_ > 0) {
        const std::size_t b =
            static_cast<std::size_t>(code >> (2 * k_ - prefix_bits_));
        if (b + 1 >= bucket_starts_.size()) {  // key out of range
          hi[j] = 0;
        } else {
          lo[j] = bucket_starts_[b];
          hi[j] = bucket_starts_[b + 1];
        }
      }
      len[j] = hi[j] - lo[j];
    }
    util::interleaved_lower_bound(codes_.data(), keys, lo, len, gn);
    for (std::size_t j = 0; j < gn; ++j) {
      const std::size_t r = lo[j];
      out[g + j] = (r < hi[j] && codes_[r] == keys[j])
                       ? static_cast<std::int64_t>(r)
                       : -1;
    }
  }
}

void KSpectrum::sharded_index_of_batch(std::span<const seq::KmerCode> probes,
                                       std::span<std::int64_t> out) const {
  // Sort probe indices by code so probes landing in the same shard are
  // consecutive; each touched shard is then resolved exactly once and
  // queried through its own in-memory batch path. Heap scratch is fine
  // here — the sharded mode is mmap/IO bound, not probe-latency bound.
  const std::size_t n = probes.size();
  std::vector<std::uint32_t> ord(n);
  std::iota(ord.begin(), ord.end(), 0u);
  std::sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
    return probes[a] < probes[b];
  });
  std::vector<seq::KmerCode> group_codes;
  std::vector<std::int64_t> group_out;
  const int shift = 2 * k_ - shard_bits_;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t p = static_cast<std::size_t>(probes[ord[i]] >> shift);
    std::size_t j = i + 1;
    while (j < n && static_cast<std::size_t>(probes[ord[j]] >> shift) == p) {
      ++j;
    }
    const KSpectrum* shard =
        p + 1 < shard_starts_.size()
            ? shard_source_->shard(static_cast<std::uint32_t>(p))
            : nullptr;
    if (shard == nullptr) {  // key out of range or empty bin
      for (std::size_t t = i; t < j; ++t) out[ord[t]] = -1;
      i = j;
      continue;
    }
    group_codes.resize(j - i);
    group_out.resize(j - i);
    for (std::size_t t = i; t < j; ++t) group_codes[t - i] = probes[ord[t]];
    shard->index_of_batch(group_codes, group_out);
    const auto offset = static_cast<std::int64_t>(shard_starts_[p]);
    for (std::size_t t = i; t < j; ++t) {
      const std::int64_t local = group_out[t - i];
      out[ord[t]] = local < 0 ? -1 : offset + local;
    }
    i = j;
  }
}

KSpectrum KSpectrum::from_shards(
    std::shared_ptr<const SpectrumShardSource> source,
    std::vector<std::uint64_t> shard_starts, int shard_bits, int k,
    std::uint64_t total_instances) {
  if (source == nullptr) {
    throw std::invalid_argument("from_shards: null shard source");
  }
  if (shard_bits < 1 || shard_bits > 2 * k) {
    throw std::invalid_argument("from_shards: shard_bits out of range");
  }
  if (shard_starts.size() != (std::size_t{1} << shard_bits) + 1 ||
      shard_starts.front() != 0 ||
      !std::is_sorted(shard_starts.begin(), shard_starts.end())) {
    throw std::invalid_argument("from_shards: malformed shard_starts table");
  }
  KSpectrum s;
  s.k_ = k;
  s.total_ = total_instances;
  s.shard_source_ = std::move(source);
  s.shard_starts_ = std::move(shard_starts);
  s.shard_bits_ = shard_bits;
  return s;
}

std::int64_t KSpectrum::sharded_index_of(seq::KmerCode code) const {
  const std::size_t p = static_cast<std::size_t>(code >> (2 * k_ - shard_bits_));
  if (p + 1 >= shard_starts_.size()) return -1;  // key out of range
  const KSpectrum* shard =
      shard_source_->shard(static_cast<std::uint32_t>(p));
  if (shard == nullptr) return -1;  // empty bin
  const std::int64_t local = shard->index_of(code);
  if (local < 0) return -1;
  return static_cast<std::int64_t>(shard_starts_[p]) + local;
}

std::uint32_t KSpectrum::sharded_count(seq::KmerCode code) const {
  const std::size_t p = static_cast<std::size_t>(code >> (2 * k_ - shard_bits_));
  if (p + 1 >= shard_starts_.size()) return 0;
  const KSpectrum* shard =
      shard_source_->shard(static_cast<std::uint32_t>(p));
  return shard == nullptr ? 0 : shard->count(code);
}

std::pair<std::uint32_t, std::size_t> KSpectrum::locate(std::size_t i) const {
  if (i >= shard_starts_.back()) {
    throw std::out_of_range("KSpectrum: sharded index out of range");
  }
  // First shard whose start exceeds i; its predecessor holds i.
  const auto it = std::upper_bound(shard_starts_.begin(), shard_starts_.end(),
                                   static_cast<std::uint64_t>(i));
  const std::size_t p =
      static_cast<std::size_t>(it - shard_starts_.begin()) - 1;
  return {static_cast<std::uint32_t>(p),
          i - static_cast<std::size_t>(shard_starts_[p])};
}

seq::KmerCode KSpectrum::sharded_code_at(std::size_t i) const {
  const auto [p, local] = locate(i);
  return shard_source_->shard(p)->code_at(local);
}

std::uint32_t KSpectrum::sharded_count_at(std::size_t i) const {
  const auto [p, local] = locate(i);
  return shard_source_->shard(p)->count_at(local);
}

}  // namespace ngs::kspec
