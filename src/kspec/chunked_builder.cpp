#include "kspec/chunked_builder.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "kspec/radix.hpp"
#include "seq/alphabet.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ngs::kspec {

ChunkedSpectrumBuilder::ChunkedSpectrumBuilder(int k, bool both_strands,
                                               std::size_t batch_instances,
                                               util::ThreadPool* pool,
                                               SpillOptions spill)
    : k_(k),
      both_strands_(both_strands),
      batch_instances_(std::max<std::size_t>(1024, batch_instances)),
      pool_(pool),
      memory_budget_(spill.memory_budget_bytes) {
  if (memory_budget_ > 0) {
    spill_shard_bits_ = std::clamp(spill.shard_bits, 1, std::min(8, 2 * k));
    // A third of the budget buffers raw instances; the spill-bin
    // buffers take ~a sixth; the rest covers one bin's finish-phase
    // read + sort + count arrays (see note_tracked).
    spill_threshold_ = std::max<std::size_t>(
        4096, memory_budget_ / (3 * sizeof(seq::KmerCode)));
    if (!spill.spill_dir.empty()) {
      spill_dir_ = spill.spill_dir;
    } else {
      std::error_code ec;
      const auto tmp = std::filesystem::temp_directory_path(ec);
      spill_dir_ = ec ? std::string(".") : tmp.string();
    }
  }
}

ChunkedSpectrumBuilder::~ChunkedSpectrumBuilder() = default;

void ChunkedSpectrumBuilder::note_tracked(std::size_t finish_phase_bytes) {
  if (memory_budget_ == 0) return;
  std::size_t current = buffer_.capacity() * sizeof(seq::KmerCode);
  if (partitioner_ != nullptr) current += partitioner_->buffer_bytes();
  current += finish_phase_bytes;
  peak_tracked_bytes_ = std::max(peak_tracked_bytes_, current);
}

void ChunkedSpectrumBuilder::add_read(std::string_view bases) {
  if (finish_pending_reset_) {
    peak_tracked_bytes_ = 0;
    spill_bytes_ = 0;
    ingest_seconds_ = 0.0;
    finish_pending_reset_ = false;
  }
  if (memory_budget_ > 0 && buffer_.capacity() == 0) {
    // One up-front reservation so growth never doubles past the
    // threshold; the slack absorbs the final read's windows.
    buffer_.reserve(spill_threshold_ + 4096);
  }
  seq::extract_kmer_codes(bases, k_, buffer_);
  if (both_strands_) {
    const std::string rc = seq::reverse_complement(bases);
    seq::extract_kmer_codes(rc, k_, buffer_);
  }
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  if (memory_budget_ > 0) {
    note_tracked(0);
    if (buffer_.size() >= spill_threshold_) spill_buffer();
  } else if (buffer_.size() >= batch_instances_) {
    flush_batch();
  }
}

void ChunkedSpectrumBuilder::spill_buffer() {
  if (partitioner_ == nullptr) {
    const std::size_t bins = std::size_t{1} << spill_shard_bits_;
    // Bin buffers together take ~a sixth of the budget.
    const std::size_t per_bin = std::clamp<std::size_t>(
        memory_budget_ / (6 * bins * sizeof(seq::KmerCode)), 64, 4096);
    partitioner_ = std::make_unique<SpillPartitioner>(
        k_, spill_shard_bits_, spill_dir_, per_bin);
  }
  partitioner_->add(buffer_);
  spilled_ = true;
  note_tracked(0);
  buffer_.clear();  // capacity is kept for the next fill
}

void ChunkedSpectrumBuilder::add_reads(const seq::ReadSet& reads) {
  for (const auto& r : reads.reads) add_read(r.bases);
}

void ChunkedSpectrumBuilder::add_read_batch(std::span<const seq::Read> reads) {
  const util::Timer batch_timer;
  for (const auto& r : reads) add_read(r.bases);
  ingest_seconds_ += batch_timer.seconds();
}

void ChunkedSpectrumBuilder::add_fastq(std::istream& fastq) {
  // Record-at-a-time FASTQ scan; malformed records raise as in io::.
  std::string header, bases, plus, qual;
  while (std::getline(fastq, header)) {
    if (header.empty()) continue;
    if (!std::getline(fastq, bases) || !std::getline(fastq, plus) ||
        !std::getline(fastq, qual)) {
      throw std::runtime_error("ChunkedSpectrumBuilder: truncated FASTQ");
    }
    if (!bases.empty() && bases.back() == '\r') bases.pop_back();
    add_read(bases);
  }
}

void ChunkedSpectrumBuilder::flush_batch() {
  if (buffer_.empty()) return;
  Run run;
  RadixSortOptions radix;
  radix.pool = pool_;  // nullptr -> default pool
  radix_sort_and_count(std::move(buffer_), k_, run.codes, run.counts, radix);
  buffer_ = {};

  // Binary-counter merging: a new run cascades into equal-or-smaller
  // predecessors, keeping O(log batches) live runs.
  while (!runs_.empty() && runs_.back().size() <= run.size()) {
    run = merge_runs(runs_.back(), run);
    runs_.pop_back();
    ++merge_rounds_;
  }
  runs_.push_back(std::move(run));
}

ChunkedSpectrumBuilder::Run ChunkedSpectrumBuilder::merge_runs(const Run& a,
                                                               const Run& b) {
  Run out;
  out.codes.reserve(a.size() + b.size());
  out.counts.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.codes[i] < b.codes[j]) {
      out.codes.push_back(a.codes[i]);
      out.counts.push_back(a.counts[i]);
      ++i;
    } else if (b.codes[j] < a.codes[i]) {
      out.codes.push_back(b.codes[j]);
      out.counts.push_back(b.counts[j]);
      ++j;
    } else {
      out.codes.push_back(a.codes[i]);
      out.counts.push_back(a.counts[i] + b.counts[j]);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) {
    out.codes.push_back(a.codes[i]);
    out.counts.push_back(a.counts[i]);
  }
  for (; j < b.size(); ++j) {
    out.codes.push_back(b.codes[j]);
    out.counts.push_back(b.counts[j]);
  }
  return out;
}

void ChunkedSpectrumBuilder::flush_spill() {
  if (!spilled_ || spill_flushed_) return;
  if (!buffer_.empty()) {
    partitioner_->add(buffer_);
    buffer_.clear();
  }
  partitioner_->close_writes();
  spill_bytes_ = partitioner_->spilled_bytes();
  spill_flushed_ = true;
  // NB: `buffer_ = {}` would assign an empty initializer_list and keep
  // the capacity; move-assigning a fresh vector actually releases it.
  buffer_ = std::vector<seq::KmerCode>();
}

std::size_t ChunkedSpectrumBuilder::spill_nonempty_bins() const noexcept {
  return partitioner_ != nullptr ? partitioner_->nonempty_bins() : 0;
}

void ChunkedSpectrumBuilder::reset_spill_state() {
  partitioner_.reset();  // removes the bin files
  spilled_ = false;
  spill_flushed_ = false;
  finish_pending_reset_ = true;
}

void ChunkedSpectrumBuilder::finish_spilled(
    const std::function<void(SortedRun&&)>& consume) {
  if (!spilled_) {
    throw std::logic_error(
        "ChunkedSpectrumBuilder::finish_spilled: nothing was spilled "
        "(use finish())");
  }
  flush_spill();
  try {
    for (std::size_t b = 0; b < partitioner_->bin_count(); ++b) {
      if (partitioner_->bin_instances(b) == 0) continue;
      std::vector<seq::KmerCode> codes = partitioner_->read_bin(b);
      // Bins are a fraction of the multiset, so the in-place serial
      // sort (no partition copy) is the memory-lean choice: the bin's
      // 8n code bytes plus its 12n output bytes, and nothing else.
      std::sort(codes.begin(), codes.end());
      SortedRun run;
      run.prefix = static_cast<std::uint32_t>(b);
      run.codes.reserve(codes.size());
      run.counts.reserve(codes.size());
      for (std::size_t i = 0; i < codes.size();) {
        std::size_t j = i;
        while (j < codes.size() && codes[j] == codes[i]) ++j;
        run.codes.push_back(codes[i]);
        run.counts.push_back(static_cast<std::uint32_t>(j - i));
        i = j;
      }
      note_tracked(codes.capacity() * sizeof(seq::KmerCode) +
                   run.codes.capacity() * sizeof(seq::KmerCode) +
                   run.counts.capacity() * sizeof(std::uint32_t));
      codes = std::vector<seq::KmerCode>();  // free before handing off
      consume(std::move(run));
    }
  } catch (...) {
    reset_spill_state();
    peak_buffered_ = 0;
    throw;
  }
  reset_spill_state();
  peak_buffered_ = 0;
}

KSpectrum ChunkedSpectrumBuilder::finish(int* merge_rounds) {
  if (spilled_) {
    // Concatenating disjoint ascending prefix bins yields the globally
    // sorted arrays directly (no merging) — identical to what the
    // in-memory path would have produced.
    Run all;
    finish_spilled([&all](SortedRun&& run) {
      all.codes.insert(all.codes.end(), run.codes.begin(), run.codes.end());
      all.counts.insert(all.counts.end(), run.counts.begin(),
                        run.counts.end());
    });
    if (merge_rounds != nullptr) *merge_rounds = 0;
    merge_rounds_ = 0;
    return KSpectrum::from_sorted_counts(std::move(all.codes),
                                         std::move(all.counts), k_);
  }
  flush_batch();
  // Tree reduction: merge disjoint run pairs concurrently per round
  // (counts over equal keys are associative and commutative, so any
  // merge order yields the identical final arrays).
  util::ThreadPool& pool =
      pool_ != nullptr ? *pool_ : util::default_pool();
  while (runs_.size() > 1) {
    const std::size_t pairs = runs_.size() / 2;
    std::vector<Run> next(pairs + runs_.size() % 2);
    pool.parallel_for(0, pairs, [&](std::size_t p) {
      next[p] = merge_runs(runs_[2 * p], runs_[2 * p + 1]);
    });
    if (runs_.size() % 2 != 0) next.back() = std::move(runs_.back());
    merge_rounds_ += static_cast<int>(pairs);
    runs_ = std::move(next);
  }
  Run all = runs_.empty() ? Run{} : std::move(runs_.front());
  runs_.clear();
  if (merge_rounds != nullptr) *merge_rounds = merge_rounds_;
  merge_rounds_ = 0;
  peak_buffered_ = 0;
  finish_pending_reset_ = true;

  return KSpectrum::from_sorted_counts(std::move(all.codes),
                                       std::move(all.counts), k_);
}

}  // namespace ngs::kspec
