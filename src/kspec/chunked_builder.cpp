#include "kspec/chunked_builder.hpp"

#include <algorithm>

#include "seq/alphabet.hpp"

namespace ngs::kspec {

ChunkedSpectrumBuilder::ChunkedSpectrumBuilder(int k, bool both_strands,
                                               std::size_t batch_instances)
    : k_(k),
      both_strands_(both_strands),
      batch_instances_(std::max<std::size_t>(1024, batch_instances)) {}

void ChunkedSpectrumBuilder::add_read(std::string_view bases) {
  seq::extract_kmer_codes(bases, k_, buffer_);
  if (both_strands_) {
    const std::string rc = seq::reverse_complement(bases);
    seq::extract_kmer_codes(rc, k_, buffer_);
  }
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  if (buffer_.size() >= batch_instances_) flush_batch();
}

void ChunkedSpectrumBuilder::add_reads(const seq::ReadSet& reads) {
  for (const auto& r : reads.reads) add_read(r.bases);
}

void ChunkedSpectrumBuilder::add_fastq(std::istream& fastq) {
  // Record-at-a-time FASTQ scan; malformed records raise as in io::.
  std::string header, bases, plus, qual;
  while (std::getline(fastq, header)) {
    if (header.empty()) continue;
    if (!std::getline(fastq, bases) || !std::getline(fastq, plus) ||
        !std::getline(fastq, qual)) {
      throw std::runtime_error("ChunkedSpectrumBuilder: truncated FASTQ");
    }
    if (!bases.empty() && bases.back() == '\r') bases.pop_back();
    add_read(bases);
  }
}

void ChunkedSpectrumBuilder::flush_batch() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> run;
  for (std::size_t i = 0; i < buffer_.size();) {
    std::size_t j = i;
    while (j < buffer_.size() && buffer_[j] == buffer_[i]) ++j;
    run.emplace_back(buffer_[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
  buffer_.clear();

  // Binary-counter merging: a new run cascades into equal-or-smaller
  // predecessors, keeping O(log batches) live runs.
  while (!runs_.empty() && runs_.back().size() <= run.size()) {
    run = merge_runs(runs_.back(), run);
    runs_.pop_back();
    ++merge_rounds_;
  }
  runs_.push_back(std::move(run));
}

std::vector<std::pair<seq::KmerCode, std::uint32_t>>
ChunkedSpectrumBuilder::merge_runs(
    const std::vector<std::pair<seq::KmerCode, std::uint32_t>>& a,
    const std::vector<std::pair<seq::KmerCode, std::uint32_t>>& b) {
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out.push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
  return out;
}

KSpectrum ChunkedSpectrumBuilder::finish(int* merge_rounds) {
  flush_batch();
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> all;
  for (auto& run : runs_) {
    all = all.empty() ? std::move(run) : merge_runs(all, run);
    ++merge_rounds_;
  }
  runs_.clear();
  if (merge_rounds != nullptr) *merge_rounds = merge_rounds_;
  merge_rounds_ = 0;
  peak_buffered_ = 0;

  // Expand into the KSpectrum representation without re-sorting: feed
  // from_codes pre-aggregated counts via its raw arrays. KSpectrum only
  // exposes from_codes(instances), so rebuild through a compact path:
  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  codes.reserve(all.size());
  counts.reserve(all.size());
  for (const auto& [code, count] : all) {
    codes.push_back(code);
    counts.push_back(count);
  }
  return KSpectrum::from_sorted_counts(std::move(codes), std::move(counts),
                                       k_);
}

}  // namespace ngs::kspec
