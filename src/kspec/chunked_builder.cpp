#include "kspec/chunked_builder.hpp"

#include <algorithm>

#include "kspec/radix.hpp"
#include "seq/alphabet.hpp"
#include "util/thread_pool.hpp"

namespace ngs::kspec {

ChunkedSpectrumBuilder::ChunkedSpectrumBuilder(int k, bool both_strands,
                                               std::size_t batch_instances,
                                               util::ThreadPool* pool)
    : k_(k),
      both_strands_(both_strands),
      batch_instances_(std::max<std::size_t>(1024, batch_instances)),
      pool_(pool) {}

void ChunkedSpectrumBuilder::add_read(std::string_view bases) {
  seq::extract_kmer_codes(bases, k_, buffer_);
  if (both_strands_) {
    const std::string rc = seq::reverse_complement(bases);
    seq::extract_kmer_codes(rc, k_, buffer_);
  }
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  if (buffer_.size() >= batch_instances_) flush_batch();
}

void ChunkedSpectrumBuilder::add_reads(const seq::ReadSet& reads) {
  for (const auto& r : reads.reads) add_read(r.bases);
}

void ChunkedSpectrumBuilder::add_fastq(std::istream& fastq) {
  // Record-at-a-time FASTQ scan; malformed records raise as in io::.
  std::string header, bases, plus, qual;
  while (std::getline(fastq, header)) {
    if (header.empty()) continue;
    if (!std::getline(fastq, bases) || !std::getline(fastq, plus) ||
        !std::getline(fastq, qual)) {
      throw std::runtime_error("ChunkedSpectrumBuilder: truncated FASTQ");
    }
    if (!bases.empty() && bases.back() == '\r') bases.pop_back();
    add_read(bases);
  }
}

void ChunkedSpectrumBuilder::flush_batch() {
  if (buffer_.empty()) return;
  Run run;
  RadixSortOptions radix;
  radix.pool = pool_;  // nullptr -> default pool
  radix_sort_and_count(std::move(buffer_), k_, run.codes, run.counts, radix);
  buffer_ = {};

  // Binary-counter merging: a new run cascades into equal-or-smaller
  // predecessors, keeping O(log batches) live runs.
  while (!runs_.empty() && runs_.back().size() <= run.size()) {
    run = merge_runs(runs_.back(), run);
    runs_.pop_back();
    ++merge_rounds_;
  }
  runs_.push_back(std::move(run));
}

ChunkedSpectrumBuilder::Run ChunkedSpectrumBuilder::merge_runs(const Run& a,
                                                               const Run& b) {
  Run out;
  out.codes.reserve(a.size() + b.size());
  out.counts.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.codes[i] < b.codes[j]) {
      out.codes.push_back(a.codes[i]);
      out.counts.push_back(a.counts[i]);
      ++i;
    } else if (b.codes[j] < a.codes[i]) {
      out.codes.push_back(b.codes[j]);
      out.counts.push_back(b.counts[j]);
      ++j;
    } else {
      out.codes.push_back(a.codes[i]);
      out.counts.push_back(a.counts[i] + b.counts[j]);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) {
    out.codes.push_back(a.codes[i]);
    out.counts.push_back(a.counts[i]);
  }
  for (; j < b.size(); ++j) {
    out.codes.push_back(b.codes[j]);
    out.counts.push_back(b.counts[j]);
  }
  return out;
}

KSpectrum ChunkedSpectrumBuilder::finish(int* merge_rounds) {
  flush_batch();
  // Tree reduction: merge disjoint run pairs concurrently per round
  // (counts over equal keys are associative and commutative, so any
  // merge order yields the identical final arrays).
  util::ThreadPool& pool =
      pool_ != nullptr ? *pool_ : util::default_pool();
  while (runs_.size() > 1) {
    const std::size_t pairs = runs_.size() / 2;
    std::vector<Run> next(pairs + runs_.size() % 2);
    pool.parallel_for(0, pairs, [&](std::size_t p) {
      next[p] = merge_runs(runs_[2 * p], runs_[2 * p + 1]);
    });
    if (runs_.size() % 2 != 0) next.back() = std::move(runs_.back());
    merge_rounds_ += static_cast<int>(pairs);
    runs_ = std::move(next);
  }
  Run all = runs_.empty() ? Run{} : std::move(runs_.front());
  runs_.clear();
  if (merge_rounds != nullptr) *merge_rounds = merge_rounds_;
  merge_rounds_ = 0;
  peak_buffered_ = 0;

  return KSpectrum::from_sorted_counts(std::move(all.codes),
                                       std::move(all.counts), k_);
}

}  // namespace ngs::kspec
