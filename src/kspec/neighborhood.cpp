#include "kspec/neighborhood.hpp"

#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace ngs::kspec {

void CandidateEnumerator::for_each_neighbor(seq::KmerCode code, int d,
                                            const NeighborVisitor& visit) const {
  // Thin wrapper: dispatch through the template overload so both paths
  // share one implementation.
  for_each_neighbor(code, d,
                    [&visit](seq::KmerCode cand, std::size_t idx) {
                      visit(cand, idx);
                    },
                    scratch_);
}

namespace {

/// Bitmask covering 2-bit groups of positions [begin, end) of a k-mer
/// (position 0 = 5'-most = most significant pair).
seq::KmerCode positions_mask(int k, int begin, int end) {
  seq::KmerCode mask = 0;
  for (int i = begin; i < end; ++i) {
    mask |= seq::KmerCode{3} << (2 * (k - 1 - i));
  }
  return mask;
}

/// Enumerates all subsets of size `d` of {0..c-1}, invoking fn(subset).
void for_each_subset(int c, int d,
                     const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> subset(static_cast<std::size_t>(d));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == d) {
      fn(subset);
      return;
    }
    for (int i = start; i <= c - (d - depth); ++i) {
      subset[static_cast<std::size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

}  // namespace

MaskedSortIndex::MaskedSortIndex(const KSpectrum& spectrum, int c, int d,
                                 util::ThreadPool* pool)
    : spectrum_(&spectrum), d_(d) {
  const int k = spectrum.k();
  if (!(d < c && c <= k)) {
    throw std::invalid_argument("MaskedSortIndex: requires d < c <= k");
  }
  // Chunk boundaries: the first (k mod c) chunks get ceil(k/c) positions.
  std::vector<std::pair<int, int>> chunks;
  const int base = k / c;
  const int extra = k % c;
  int pos = 0;
  for (int j = 0; j < c; ++j) {
    const int len = base + (j < extra ? 1 : 0);
    chunks.emplace_back(pos, pos + len);
    pos += len;
  }

  // Materialize the replica masks first, then sort every replica's
  // permutation concurrently — the C(c,d) sorts are independent and
  // dominate construction time.
  for_each_subset(c, d, [&](const std::vector<int>& subset) {
    Replica rep;
    for (int j : subset) {
      rep.mask |= positions_mask(k, chunks[static_cast<std::size_t>(j)].first,
                                 chunks[static_cast<std::size_t>(j)].second);
    }
    replicas_.push_back(std::move(rep));
  });

  util::ThreadPool& sort_pool =
      pool != nullptr ? *pool : util::default_pool();
  sort_pool.parallel_for(0, replicas_.size(), [&](std::size_t r) {
    Replica& rep = replicas_[r];
    rep.order.resize(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) {
      rep.order[i] = static_cast<std::uint32_t>(i);
    }
    const seq::KmerCode keep = ~rep.mask;
    std::sort(rep.order.begin(), rep.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const seq::KmerCode ma = spectrum.code_at(a) & keep;
                const seq::KmerCode mb = spectrum.code_at(b) & keep;
                return ma != mb ? ma < mb : a < b;
              });
  });
}

void MaskedSortIndex::for_each_neighbor(seq::KmerCode code,
                                        const NeighborVisitor& visit) const {
  std::vector<std::uint32_t> hits;
  for_each_neighbor(code,
                    [&visit](seq::KmerCode cand, std::size_t idx) {
                      visit(cand, idx);
                    },
                    hits);
}

std::size_t MaskedSortIndex::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& rep : replicas_) {
    bytes += rep.order.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace ngs::kspec
