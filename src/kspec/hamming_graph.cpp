#include "kspec/hamming_graph.hpp"

#include <algorithm>

namespace ngs::kspec {

HammingGraph::HammingGraph(const KSpectrum& spectrum, int d, int chunks)
    : d_(d) {
  const int k = spectrum.k();
  int c = chunks == 0 ? std::min(k, d + 3) : chunks;
  c = std::max(c, d + 1);
  const MaskedSortIndex index(spectrum, c, d);

  const std::size_t n = spectrum.size();
  offsets_.assign(n + 1, 0);
  // Vertices are visited in spectrum order, so adjacency lists append in
  // CSR order directly. The template visitor + reused dedup scratch keep
  // the n queries free of std::function dispatch and per-query
  // allocation.
  std::vector<std::uint32_t> hits;
  for (std::size_t i = 0; i < n; ++i) {
    index.for_each_neighbor(
        spectrum.code_at(i),
        [this](seq::KmerCode, std::size_t j) {
          neighbors_.push_back(static_cast<std::uint32_t>(j));
        },
        hits);
    offsets_[i + 1] = neighbors_.size();
  }
}

}  // namespace ngs::kspec
