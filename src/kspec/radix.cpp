#include "kspec/radix.hpp"

#include <algorithm>
#include <bit>

#include "util/thread_pool.hpp"

namespace ngs::kspec {

namespace {

/// Shift that maps a code to its bucket: bucket = code >> shift. The key
/// occupies the low 2k bits of the word, so the top `bits` of the key
/// start at bit 2k - bits.
inline int bucket_shift(int k, int bits) noexcept { return 2 * k - bits; }

struct Partition {
  std::vector<seq::KmerCode> sorted;    // bucket-major, each bucket sorted
  std::vector<std::size_t> offsets;     // size 2^bits + 1
};

/// Stable two-pass counting partition by the top `bits` key bits, then
/// per-bucket sorts on the pool. Buckets cover disjoint ascending key
/// ranges, so `sorted` is globally sorted on return.
Partition partition_and_sort(std::vector<seq::KmerCode>&& codes, int k,
                             int bits, util::ThreadPool& pool) {
  const std::size_t n = codes.size();
  const std::size_t buckets = std::size_t{1} << bits;
  const int shift = bucket_shift(k, bits);

  // Pass 1: per-block histograms (blocks = contiguous input slices, one
  // task each), so the scatter below needs no atomics.
  const std::size_t num_blocks =
      std::min<std::size_t>(std::max<std::size_t>(1, pool.size() * 4),
                            std::max<std::size_t>(1, n / 4096));
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::vector<std::size_t>> histograms(
      num_blocks, std::vector<std::size_t>(buckets, 0));
  pool.parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    auto& h = histograms[b];
    for (std::size_t i = lo; i < hi; ++i) ++h[codes[i] >> shift];
  });

  // Exclusive prefix sums: offsets[bucket] plus each block's start within
  // its bucket. Block-major order within a bucket keeps the partition
  // stable (input order preserved), hence deterministic.
  Partition part;
  part.offsets.assign(buckets + 1, 0);
  std::size_t running = 0;
  for (std::size_t q = 0; q < buckets; ++q) {
    part.offsets[q] = running;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t c = histograms[b][q];
      histograms[b][q] = running;  // becomes this block's write cursor
      running += c;
    }
  }
  part.offsets[buckets] = running;

  // Pass 2: scatter. Each block owns disjoint write cursors.
  part.sorted.resize(n);
  seq::KmerCode* out = part.sorted.data();
  pool.parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    auto& cursors = histograms[b];
    for (std::size_t i = lo; i < hi; ++i) {
      out[cursors[codes[i] >> shift]++] = codes[i];
    }
  });
  codes.clear();
  codes.shrink_to_fit();

  // Per-bucket sorts; each bucket is small enough to be cache-friendly.
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::sort(out + part.offsets[q], out + part.offsets[q + 1]);
  });
  return part;
}

}  // namespace

int choose_radix_bits(std::size_t n, int k) noexcept {
  if (n < 8192) return 0;
  // Aim for ~8k codes per bucket; clamp to [4, 14] and to the key width
  // so the per-block histograms (2^bits words each) stay cheap.
  const int target = std::bit_width(n / 8192);
  return std::clamp(target, 4, std::min(2 * k, 14));
}

void radix_sort_codes(std::vector<seq::KmerCode>& codes, int k,
                      const RadixSortOptions& options) {
  const int bits = options.radix_bits < 0
                       ? choose_radix_bits(codes.size(), k)
                       : std::min(options.radix_bits, 2 * k);
  if (bits <= 0 || codes.size() < 2) {
    std::sort(codes.begin(), codes.end());
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  Partition part = partition_and_sort(std::move(codes), k, bits, pool);
  codes = std::move(part.sorted);
}

void serial_sort_and_count(std::vector<seq::KmerCode>&& codes,
                           std::vector<seq::KmerCode>& out_codes,
                           std::vector<std::uint32_t>& out_counts) {
  std::sort(codes.begin(), codes.end());
  out_codes.clear();
  out_counts.clear();
  for (std::size_t i = 0; i < codes.size();) {
    std::size_t j = i;
    while (j < codes.size() && codes[j] == codes[i]) ++j;
    out_codes.push_back(codes[i]);
    out_counts.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
}

void radix_sort_and_count(std::vector<seq::KmerCode>&& codes, int k,
                          std::vector<seq::KmerCode>& out_codes,
                          std::vector<std::uint32_t>& out_counts,
                          const RadixSortOptions& options) {
  const int bits = options.radix_bits < 0
                       ? choose_radix_bits(codes.size(), k)
                       : std::min(options.radix_bits, 2 * k);
  if (bits <= 0) {
    serial_sort_and_count(std::move(codes), out_codes, out_counts);
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  const Partition part = partition_and_sort(std::move(codes), k, bits, pool);
  const std::size_t buckets = part.offsets.size() - 1;
  const seq::KmerCode* sorted = part.sorted.data();

  // Aggregate per bucket: count distinct runs, prefix-sum into output
  // offsets, then run-length encode each bucket straight into its slice.
  // A run never crosses a bucket boundary (equal codes share a prefix).
  std::vector<std::size_t> distinct(buckets + 1, 0);
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::size_t runs = 0;
    for (std::size_t i = part.offsets[q]; i < part.offsets[q + 1]; ++i) {
      runs += (i == part.offsets[q] || sorted[i] != sorted[i - 1]);
    }
    distinct[q + 1] = runs;
  });
  for (std::size_t q = 0; q < buckets; ++q) distinct[q + 1] += distinct[q];

  out_codes.resize(distinct[buckets]);
  out_counts.resize(distinct[buckets]);
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::size_t w = distinct[q];
    for (std::size_t i = part.offsets[q]; i < part.offsets[q + 1];) {
      std::size_t j = i;
      while (j < part.offsets[q + 1] && sorted[j] == sorted[i]) ++j;
      out_codes[w] = sorted[i];
      out_counts[w] = static_cast<std::uint32_t>(j - i);
      ++w;
      i = j;
    }
  });
}

}  // namespace ngs::kspec
