#include "kspec/radix.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "fault/fault.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ngs::kspec {

namespace {

/// Shift that maps a code to its bucket: bucket = code >> shift. The key
/// occupies the low 2k bits of the word, so the top `bits` of the key
/// start at bit 2k - bits.
inline int bucket_shift(int k, int bits) noexcept { return 2 * k - bits; }

struct Partition {
  std::vector<seq::KmerCode> sorted;    // bucket-major, each bucket sorted
  std::vector<std::size_t> offsets;     // size 2^bits + 1
};

/// Stable two-pass counting partition by the top `bits` key bits, then
/// per-bucket sorts on the pool. Buckets cover disjoint ascending key
/// ranges, so `sorted` is globally sorted on return.
Partition partition_and_sort(std::vector<seq::KmerCode>&& codes, int k,
                             int bits, util::ThreadPool& pool) {
  const std::size_t n = codes.size();
  const std::size_t buckets = std::size_t{1} << bits;
  const int shift = bucket_shift(k, bits);

  // Pass 1: per-block histograms (blocks = contiguous input slices, one
  // task each), so the scatter below needs no atomics.
  const std::size_t num_blocks =
      std::min<std::size_t>(std::max<std::size_t>(1, pool.size() * 4),
                            std::max<std::size_t>(1, n / 4096));
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::vector<std::size_t>> histograms(
      num_blocks, std::vector<std::size_t>(buckets, 0));
  pool.parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    auto& h = histograms[b];
    for (std::size_t i = lo; i < hi; ++i) ++h[codes[i] >> shift];
  });

  // Exclusive prefix sums: offsets[bucket] plus each block's start within
  // its bucket. Block-major order within a bucket keeps the partition
  // stable (input order preserved), hence deterministic.
  Partition part;
  part.offsets.assign(buckets + 1, 0);
  std::size_t running = 0;
  for (std::size_t q = 0; q < buckets; ++q) {
    part.offsets[q] = running;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t c = histograms[b][q];
      histograms[b][q] = running;  // becomes this block's write cursor
      running += c;
    }
  }
  part.offsets[buckets] = running;

  // Pass 2: scatter. Each block owns disjoint write cursors.
  part.sorted.resize(n);
  seq::KmerCode* out = part.sorted.data();
  pool.parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    auto& cursors = histograms[b];
    for (std::size_t i = lo; i < hi; ++i) {
      out[cursors[codes[i] >> shift]++] = codes[i];
    }
  });
  codes.clear();
  codes.shrink_to_fit();

  // Per-bucket sorts; each bucket is small enough to be cache-friendly.
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::sort(out + part.offsets[q], out + part.offsets[q + 1]);
  });
  return part;
}

}  // namespace

int choose_radix_bits(std::size_t n, int k) noexcept {
  if (n < 8192) return 0;
  // Aim for ~8k codes per bucket; clamp to [4, 14] and to the key width
  // so the per-block histograms (2^bits words each) stay cheap.
  const int target = std::bit_width(n / 8192);
  return std::clamp(target, 4, std::min(2 * k, 14));
}

void radix_sort_codes(std::vector<seq::KmerCode>& codes, int k,
                      const RadixSortOptions& options) {
  const int bits = options.radix_bits < 0
                       ? choose_radix_bits(codes.size(), k)
                       : std::min(options.radix_bits, 2 * k);
  if (bits <= 0 || codes.size() < 2) {
    std::sort(codes.begin(), codes.end());
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  Partition part = partition_and_sort(std::move(codes), k, bits, pool);
  codes = std::move(part.sorted);
}

void serial_sort_and_count(std::vector<seq::KmerCode>&& codes,
                           std::vector<seq::KmerCode>& out_codes,
                           std::vector<std::uint32_t>& out_counts) {
  std::sort(codes.begin(), codes.end());
  out_codes.clear();
  out_counts.clear();
  for (std::size_t i = 0; i < codes.size();) {
    std::size_t j = i;
    while (j < codes.size() && codes[j] == codes[i]) ++j;
    out_codes.push_back(codes[i]);
    out_counts.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
}

void radix_sort_and_count(std::vector<seq::KmerCode>&& codes, int k,
                          std::vector<seq::KmerCode>& out_codes,
                          std::vector<std::uint32_t>& out_counts,
                          const RadixSortOptions& options) {
  const int bits = options.radix_bits < 0
                       ? choose_radix_bits(codes.size(), k)
                       : std::min(options.radix_bits, 2 * k);
  if (bits <= 0) {
    serial_sort_and_count(std::move(codes), out_codes, out_counts);
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  const Partition part = partition_and_sort(std::move(codes), k, bits, pool);
  const std::size_t buckets = part.offsets.size() - 1;
  const seq::KmerCode* sorted = part.sorted.data();

  // Aggregate per bucket: count distinct runs, prefix-sum into output
  // offsets, then run-length encode each bucket straight into its slice.
  // A run never crosses a bucket boundary (equal codes share a prefix).
  std::vector<std::size_t> distinct(buckets + 1, 0);
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::size_t runs = 0;
    for (std::size_t i = part.offsets[q]; i < part.offsets[q + 1]; ++i) {
      runs += (i == part.offsets[q] || sorted[i] != sorted[i - 1]);
    }
    distinct[q + 1] = runs;
  });
  for (std::size_t q = 0; q < buckets; ++q) distinct[q + 1] += distinct[q];

  out_codes.resize(distinct[buckets]);
  out_counts.resize(distinct[buckets]);
  pool.parallel_for(0, buckets, [&](std::size_t q) {
    std::size_t w = distinct[q];
    for (std::size_t i = part.offsets[q]; i < part.offsets[q + 1];) {
      std::size_t j = i;
      while (j < part.offsets[q + 1] && sorted[j] == sorted[i]) ++j;
      out_codes[w] = sorted[i];
      out_counts[w] = static_cast<std::uint32_t>(j - i);
      ++w;
      i = j;
    }
  });
}

namespace {

/// Unique-per-process spill-file stem so concurrent builders (or a
/// crashed predecessor's leftovers) never collide in a shared spill dir.
std::string spill_stem(const std::string& dir) {
  static std::atomic<std::uint64_t> seq{0};
  std::string stem = dir;
  if (!stem.empty() && stem.back() != '/') stem += '/';
  stem += "ngs_spill_";
#if defined(__unix__) || defined(__APPLE__)
  stem += std::to_string(static_cast<long>(::getpid()));
  stem += '_';
#endif
  stem += std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  return stem;
}

}  // namespace

SpillPartitioner::SpillPartitioner(int k, int shard_bits, std::string dir,
                                   std::size_t buffer_codes_per_bin)
    : k_(k),
      shard_bits_(shard_bits),
      shift_(2 * k - shard_bits),
      dir_(std::move(dir)),
      buffer_codes_per_bin_(std::max<std::size_t>(16, buffer_codes_per_bin)) {
  if (shard_bits < 1 || shard_bits > 2 * k) {
    throw Error(ErrorKind::kInternal, fault::sites::kSpillWrite,
                "SpillPartitioner: shard_bits out of range");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; the
  // first bin open fails with a clear message if the dir is unusable
  const std::string stem = spill_stem(dir_);
  bins_.resize(std::size_t{1} << shard_bits);
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    bins_[b].path = stem + "_bin" + std::to_string(b) + ".spill";
  }
}

SpillPartitioner::~SpillPartitioner() {
  for (auto& bin : bins_) {
    bin.file.reset();  // unlinks an uncommitted temp
    std::remove(bin.path.c_str());
  }
}

void SpillPartitioner::flush_bin(Bin& bin) {
  if (bin.buffer.empty()) return;
  if (fault::should_fire(fault::sites::kSpillWrite)) {
    throw Error(ErrorKind::kIo, fault::sites::kSpillWrite,
                bin.path + ": write failed: injected fault at " +
                    fault::sites::kSpillWrite);
  }
  if (bin.file == nullptr) {
    util::AtomicFileOptions options;
    options.error_site = fault::sites::kSpillWrite;
    bin.file = std::make_unique<util::AtomicFile>(bin.path, options);
  }
  bin.file->write(bin.buffer.data(),
                  bin.buffer.size() * sizeof(seq::KmerCode));
  spilled_bytes_ += bin.buffer.size() * sizeof(seq::KmerCode);
  bin.buffer.clear();
}

void SpillPartitioner::add(std::span<const seq::KmerCode> codes) {
  if (!writable_) {
    throw Error(ErrorKind::kInternal, fault::sites::kSpillWrite,
                "SpillPartitioner: add after close_writes");
  }
  for (const seq::KmerCode code : codes) {
    Bin& bin = bins_[static_cast<std::size_t>(code >> shift_)];
    if (bin.buffer.capacity() == 0) bin.buffer.reserve(buffer_codes_per_bin_);
    bin.buffer.push_back(code);
    ++bin.instances;
    if (bin.buffer.size() >= buffer_codes_per_bin_) flush_bin(bin);
  }
}

void SpillPartitioner::close_writes() {
  if (!writable_) return;
  writable_ = false;
  for (auto& bin : bins_) {
    flush_bin(bin);
    // `= {}` would keep the capacity (initializer_list assignment);
    // move-assign a fresh vector to actually release the buffer.
    bin.buffer = std::vector<seq::KmerCode>();
    if (bin.file != nullptr) bin.file->commit();
  }
}

std::size_t SpillPartitioner::nonempty_bins() const noexcept {
  std::size_t n = 0;
  for (const auto& bin : bins_) n += bin.instances > 0;
  return n;
}

std::size_t SpillPartitioner::buffer_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& bin : bins_) {
    bytes += bin.buffer.capacity() * sizeof(seq::KmerCode);
  }
  return bytes;
}

std::vector<seq::KmerCode> SpillPartitioner::read_bin(std::size_t bin) const {
  if (writable_) {
    throw Error(ErrorKind::kInternal, fault::sites::kSpillRead,
                "SpillPartitioner: read_bin before close_writes");
  }
  const Bin& b = bins_[bin];
  std::vector<seq::KmerCode> codes;
  if (b.instances == 0) return codes;
  if (fault::should_fire(fault::sites::kSpillRead)) {
    throw Error(ErrorKind::kIo, fault::sites::kSpillRead,
                b.path + ": read failed: injected fault at " +
                    fault::sites::kSpillRead);
  }
  std::FILE* f = std::fopen(b.path.c_str(), "rb");
  if (f == nullptr) {
    throw Error(ErrorKind::kIo, fault::sites::kSpillRead,
                b.path + ": open failed: " + std::strerror(errno));
  }
  codes.resize(static_cast<std::size_t>(b.instances));
  const std::size_t got =
      std::fread(codes.data(), sizeof(seq::KmerCode), codes.size(), f);
  std::fclose(f);
  if (got != codes.size()) {
    throw Error(ErrorKind::kIo, fault::sites::kSpillRead,
                b.path + ": short read (spill bin truncated)");
  }
  return codes;
}

}  // namespace ngs::kspec
