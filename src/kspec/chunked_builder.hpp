#pragma once
// Bounded-memory spectrum construction — the divide-and-merge strategy
// of Sec. 2.3 ("when the collection of input short reads R does not fit
// in main memory, ... R is partitioned into chunks small enough to
// occupy just a portion of main memory. For each chunk, we stream
// through each read and record the k-spectrum and tile information,
// merging it with the data from previous chunks.").
//
// The builder consumes reads in batches (from any source: an in-memory
// ReadSet, a FASTQ stream, a generator), keeps each batch's sorted
// (code, count) run, and merges runs pairwise so peak memory stays
// proportional to the *distinct*-kmer volume plus one batch — never the
// full instance multiset that KSpectrum::build materializes.
//
// Batch sorts go through the radix-partitioned parallel path
// (kspec/radix.hpp) and the final cascade merges independent run pairs
// concurrently on the same pool, so pass 1 of the correction pipeline
// scales with cores while producing byte-identical spectra.

#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "kspec/tile_table.hpp"
#include "seq/read.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

class SpillPartitioner;

/// Out-of-core controls for the bounded-memory (KMC/RECKONER-style)
/// build path. With a non-zero budget the builder buffers raw instances
/// up to roughly a third of the budget, then routes everything through
/// a SpillPartitioner: prefix bins on disk, each small enough to sort
/// and count independently, delivered in ascending prefix order by
/// finish_spilled(). With budget 0 (the default) nothing here is used
/// and the builder behaves exactly as before.
struct SpillOptions {
  /// Peak bytes the build may hold in its own tracked structures
  /// (instance buffer + spill-bin buffers + per-bin finish arrays);
  /// 0 = unlimited (never spill). See peak_tracked_bytes() for what is
  /// counted — thread-pool stacks and malloc overhead are not.
  std::size_t memory_budget_bytes = 0;
  /// Directory for the per-bin spill files; "" = the system temp dir.
  std::string spill_dir;
  /// Prefix width of the disk partition: 2^shard_bits bins, clamped to
  /// [1, min(8, 2k)]. 64 bins keeps per-bin memory ~1/64 of the
  /// instance volume on uniform data while the shard table stays tiny.
  int shard_bits = 6;
};

class ChunkedSpectrumBuilder {
 public:
  /// `batch_instances` bounds the number of kmer instances buffered
  /// before a batch is sorted and merged (the "portion of main memory").
  /// `pool` runs batch sorts and run merges; nullptr = the shared
  /// default pool. A non-zero `spill.memory_budget_bytes` switches to
  /// the out-of-core path (batch_instances is then superseded by the
  /// budget-derived spill threshold).
  explicit ChunkedSpectrumBuilder(int k, bool both_strands = true,
                                  std::size_t batch_instances = 1 << 20,
                                  util::ThreadPool* pool = nullptr,
                                  SpillOptions spill = {});
  ~ChunkedSpectrumBuilder();

  /// Streams one read's kmers into the current batch.
  void add_read(std::string_view bases);

  /// Adds every read of a set.
  void add_reads(const seq::ReadSet& reads);

  /// Batch ingest for the overlapped pass-1 path: adds every read of
  /// one streamed batch and accounts the wall time into
  /// ingest_seconds(), so the pipeline can report how busy the build
  /// stage was versus stalled waiting on the reader.
  void add_read_batch(std::span<const seq::Read> reads);

  /// Adds every read of a FASTQ stream without materializing the set.
  void add_fastq(std::istream& fastq);

  /// Finalizes: flushes the last batch and returns the spectrum.
  /// The builder is left empty and reusable. On a spilled build this
  /// concatenates the finish_spilled() runs into one owned spectrum —
  /// memory then scales with the distinct volume again; callers that
  /// need the bounded-memory guarantee end-to-end stream through
  /// finish_spilled() into an index::ShardedIndexWriter instead.
  KSpectrum finish(int* merge_rounds = nullptr);

  /// One finished prefix bin: the top shard_bits of every code equal
  /// `prefix`, and codes are strictly ascending within the run.
  struct SortedRun {
    std::uint32_t prefix = 0;
    std::vector<seq::KmerCode> codes;
    std::vector<std::uint32_t> counts;
  };

  /// Flushes any still-buffered instances to the spill bins and seals
  /// them. Idempotent; only valid once spilled() is true. Called
  /// implicitly by finish()/finish_spilled(), exposed so callers can
  /// inspect spill_nonempty_bins() before choosing an output format.
  void flush_spill();

  /// Out-of-core finalization: reads each non-empty spill bin back,
  /// sorts and counts it in isolation, and hands the runs to `consume`
  /// in ascending prefix order. Peak memory is one bin at a time — the
  /// full spectrum never exists in this process unless the consumer
  /// accumulates it. The builder is left empty and reusable.
  void finish_spilled(const std::function<void(SortedRun&&)>& consume);

  /// Peak number of buffered instances observed (for tests/telemetry).
  std::size_t peak_buffered() const noexcept { return peak_buffered_; }

  /// Cumulative wall time spent inside add_read_batch() — the ingest
  /// stage's busy time (sorts, merges, and spill writes triggered by
  /// those batches included).
  double ingest_seconds() const noexcept { return ingest_seconds_; }

  // --- Budget-mode observability (all zero/false without a budget) ---
  /// True once at least one instance was written to a spill bin.
  bool spilled() const noexcept { return spilled_; }
  /// Disk-partition width actually in use (after clamping).
  int spill_shard_bits() const noexcept { return spill_shard_bits_; }
  /// Non-empty spill bins (the shard count of a sharded index written
  /// from this build). Requires flush_spill().
  std::size_t spill_nonempty_bins() const noexcept;
  /// Total bytes written to spill files.
  std::uint64_t spill_bytes() const noexcept { return spill_bytes_; }
  /// Directory the spill files live in (resolved from SpillOptions).
  const std::string& spill_dir() const noexcept { return spill_dir_; }
  /// The builder's own memory accounting, maxed over the whole build:
  /// instance-buffer capacity + spill-bin buffer capacity + the
  /// per-bin read/sort/count arrays of the finish phase. This is the
  /// number the bounded-memory acceptance test asserts against the
  /// budget; it survives finish() so callers can read it afterwards
  /// (reset by the next add_read on a reused builder).
  std::size_t peak_tracked_bytes() const noexcept {
    return peak_tracked_bytes_;
  }

 private:
  /// One sorted distinct-(code, count) run, stored as parallel arrays so
  /// the last surviving run hands straight to KSpectrum::from_sorted_counts.
  struct Run {
    std::vector<seq::KmerCode> codes;
    std::vector<std::uint32_t> counts;
    std::size_t size() const noexcept { return codes.size(); }
  };

  void flush_batch();
  static Run merge_runs(const Run& a, const Run& b);
  void spill_buffer();
  void note_tracked(std::size_t finish_phase_bytes);
  void reset_spill_state();

  int k_;
  bool both_strands_;
  std::size_t batch_instances_;
  util::ThreadPool* pool_;
  std::vector<seq::KmerCode> buffer_;
  /// Sorted distinct runs awaiting the final merge; run i holds ~2^i
  /// merged batches (binary-counter merging, so each instance is merged
  /// O(log batches) times).
  std::vector<Run> runs_;
  std::size_t peak_buffered_ = 0;
  double ingest_seconds_ = 0.0;
  int merge_rounds_ = 0;

  // --- Out-of-core (budget) state; inert when memory_budget_ == 0 ---
  std::size_t memory_budget_ = 0;
  std::string spill_dir_;
  int spill_shard_bits_ = 0;
  /// Instances buffered before routing everything through the spill
  /// partition (~budget/3 worth of 8-byte codes).
  std::size_t spill_threshold_ = 0;
  std::unique_ptr<SpillPartitioner> partitioner_;
  bool spilled_ = false;
  bool spill_flushed_ = false;
  std::uint64_t spill_bytes_ = 0;
  std::size_t peak_tracked_bytes_ = 0;
  /// finish() keeps the telemetry fields readable; the next add_read on
  /// a reused builder zeroes them for the new build.
  bool finish_pending_reset_ = false;
};

}  // namespace ngs::kspec
