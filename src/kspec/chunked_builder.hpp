#pragma once
// Bounded-memory spectrum construction — the divide-and-merge strategy
// of Sec. 2.3 ("when the collection of input short reads R does not fit
// in main memory, ... R is partitioned into chunks small enough to
// occupy just a portion of main memory. For each chunk, we stream
// through each read and record the k-spectrum and tile information,
// merging it with the data from previous chunks.").
//
// The builder consumes reads in batches (from any source: an in-memory
// ReadSet, a FASTQ stream, a generator), keeps each batch's sorted
// (code, count) run, and merges runs pairwise so peak memory stays
// proportional to the *distinct*-kmer volume plus one batch — never the
// full instance multiset that KSpectrum::build materializes.
//
// Batch sorts go through the radix-partitioned parallel path
// (kspec/radix.hpp) and the final cascade merges independent run pairs
// concurrently on the same pool, so pass 1 of the correction pipeline
// scales with cores while producing byte-identical spectra.

#include <cstdint>
#include <functional>
#include <istream>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "kspec/tile_table.hpp"
#include "seq/read.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

class ChunkedSpectrumBuilder {
 public:
  /// `batch_instances` bounds the number of kmer instances buffered
  /// before a batch is sorted and merged (the "portion of main memory").
  /// `pool` runs batch sorts and run merges; nullptr = the shared
  /// default pool.
  explicit ChunkedSpectrumBuilder(int k, bool both_strands = true,
                                  std::size_t batch_instances = 1 << 20,
                                  util::ThreadPool* pool = nullptr);

  /// Streams one read's kmers into the current batch.
  void add_read(std::string_view bases);

  /// Adds every read of a set.
  void add_reads(const seq::ReadSet& reads);

  /// Adds every read of a FASTQ stream without materializing the set.
  void add_fastq(std::istream& fastq);

  /// Finalizes: flushes the last batch and returns the spectrum.
  /// The builder is left empty and reusable.
  KSpectrum finish(int* merge_rounds = nullptr);

  /// Peak number of buffered instances observed (for tests/telemetry).
  std::size_t peak_buffered() const noexcept { return peak_buffered_; }

 private:
  /// One sorted distinct-(code, count) run, stored as parallel arrays so
  /// the last surviving run hands straight to KSpectrum::from_sorted_counts.
  struct Run {
    std::vector<seq::KmerCode> codes;
    std::vector<std::uint32_t> counts;
    std::size_t size() const noexcept { return codes.size(); }
  };

  void flush_batch();
  static Run merge_runs(const Run& a, const Run& b);

  int k_;
  bool both_strands_;
  std::size_t batch_instances_;
  util::ThreadPool* pool_;
  std::vector<seq::KmerCode> buffer_;
  /// Sorted distinct runs awaiting the final merge; run i holds ~2^i
  /// merged batches (binary-counter merging, so each instance is merged
  /// O(log batches) times).
  std::vector<Run> runs_;
  std::size_t peak_buffered_ = 0;
  int merge_rounds_ = 0;
};

}  // namespace ngs::kspec
