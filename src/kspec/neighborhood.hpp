#pragma once
// Retrieval of the d-neighborhood N^d of a kmer within the spectrum —
// the central data-structure question of Sec. 2.3. Two exact strategies:
//
// 1. CandidateEnumerator: enumerate the complete d-neighborhood N^dc
//    (sum_{e<=d} C(k,e)3^e candidates) and binary-search each in the
//    sorted spectrum. O(C(k,d) 4^d log |R^k|) per query, zero extra
//    memory.
//
// 2. MaskedSortIndex: the paper's replica structure. Split the k
//    positions into c > d chunks; for each of the C(c,d) chunk subsets,
//    keep the spectrum order sorted by the code with those chunks masked
//    to zero. Any kmer within Hamming distance d differs in at most d
//    positions, which fall inside at most d chunks, so it collides with
//    the query in at least one replica. A query is C(c,d) binary searches
//    plus a Hamming filter over the collision runs; with typical spectrum
//    densities each run is O(1), giving the paper's ~constant expected
//    time per neighbor.
//
// bench_ablation_neighborhood measures the trade-off between the two.

#include <cstdint>
#include <functional>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/kmer.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

/// Visitor receives (neighbor_code, spectrum_index).
using NeighborVisitor =
    std::function<void(seq::KmerCode, std::size_t)>;

/// Strategy 1: complete-neighborhood enumeration + binary search.
class CandidateEnumerator {
 public:
  explicit CandidateEnumerator(const KSpectrum& spectrum)
      : spectrum_(&spectrum) {}

  /// Visits every kmer in the spectrum within Hamming distance [1, d] of
  /// `code` (the kmer itself is not visited).
  void for_each_neighbor(seq::KmerCode code, int d,
                         const NeighborVisitor& visit) const;

 private:
  const KSpectrum* spectrum_;
  mutable std::vector<seq::KmerCode> scratch_;
};

/// Strategy 2: masked-sort replicas (Sec. 2.3, steps a-c).
class MaskedSortIndex {
 public:
  /// Builds C(c,d) sorted replicas over the spectrum, one pool task per
  /// replica (they are independent permutations). Requires d < c <= k.
  /// nullptr pool = the shared default pool. Replica contents are
  /// deterministic regardless of thread count (ties in the masked key
  /// break by spectrum index).
  MaskedSortIndex(const KSpectrum& spectrum, int c, int d,
                  util::ThreadPool* pool = nullptr);

  int d() const noexcept { return d_; }
  std::size_t num_replicas() const noexcept { return replicas_.size(); }

  /// Visits every spectrum kmer within Hamming distance [1, d] of `code`.
  /// Exact: each neighbor is reported exactly once.
  void for_each_neighbor(seq::KmerCode code,
                         const NeighborVisitor& visit) const;

  /// Memory consumed by the replica permutations, in bytes.
  std::size_t memory_bytes() const noexcept;

 private:
  struct Replica {
    seq::KmerCode mask = 0;  // bits cleared before comparison
    std::vector<std::uint32_t> order;  // spectrum indices sorted by masked code
  };

  const KSpectrum* spectrum_;
  int d_;
  std::vector<Replica> replicas_;
};

}  // namespace ngs::kspec
