#pragma once
// Retrieval of the d-neighborhood N^d of a kmer within the spectrum —
// the central data-structure question of Sec. 2.3. Two exact strategies:
//
// 1. CandidateEnumerator: enumerate the complete d-neighborhood N^dc
//    (sum_{e<=d} C(k,e)3^e candidates) and binary-search each in the
//    sorted spectrum. O(C(k,d) 4^d log |R^k|) per query, zero extra
//    memory.
//
// 2. MaskedSortIndex: the paper's replica structure. Split the k
//    positions into c > d chunks; for each of the C(c,d) chunk subsets,
//    keep the spectrum order sorted by the code with those chunks masked
//    to zero. Any kmer within Hamming distance d differs in at most d
//    positions, which fall inside at most d chunks, so it collides with
//    the query in at least one replica. A query is C(c,d) binary searches
//    plus a Hamming filter over the collision runs; with typical spectrum
//    densities each run is O(1), giving the paper's ~constant expected
//    time per neighbor.
//
// Both expose template visitor overloads — the hot paths (Hamming-graph
// construction, per-tile neighborhood queries) instantiate the visitor
// inline with zero std::function dispatch or capture allocation — plus
// caller-supplied scratch overloads so batch loops reuse one buffer per
// worker. The std::function forms remain as thin wrappers for
// non-critical call sites. bench_ablation_neighborhood measures the
// trade-off between the two strategies.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/kmer.hpp"
#include "util/simd.hpp"

namespace ngs::util {
class ThreadPool;
}

namespace ngs::kspec {

/// Visitor receives (neighbor_code, spectrum_index).
using NeighborVisitor =
    std::function<void(seq::KmerCode, std::size_t)>;

/// Strategy 1: complete-neighborhood enumeration + binary search.
class CandidateEnumerator {
 public:
  explicit CandidateEnumerator(const KSpectrum& spectrum)
      : spectrum_(&spectrum) {}

  /// Visits every kmer in the spectrum within Hamming distance [1, d] of
  /// `code` (the kmer itself is not visited). `scratch` holds the
  /// enumerated candidates; reuse one vector per worker to keep batch
  /// queries allocation-free. Thread-safe for concurrent callers with
  /// distinct scratch vectors.
  template <typename Visitor>
  void for_each_neighbor(seq::KmerCode code, int d, Visitor&& visit,
                         std::vector<seq::KmerCode>& scratch) const {
    scratch.clear();
    seq::enumerate_neighbors(code, spectrum_->k(), d, scratch);
    // Probe the spectrum in batches so independent binary-search descents
    // overlap their cache misses; visit order stays enumeration order.
    constexpr std::size_t kChunk = 64;
    std::int64_t idx[kChunk];
    for (std::size_t base = 0; base < scratch.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, scratch.size() - base);
      spectrum_->index_of_batch({scratch.data() + base, n}, {idx, n});
      for (std::size_t i = 0; i < n; ++i) {
        if (idx[i] >= 0) {
          visit(scratch[base + i], static_cast<std::size_t>(idx[i]));
        }
      }
    }
  }

  /// As above, using the enumerator's own scratch (single-threaded use).
  template <typename Visitor>
  void for_each_neighbor(seq::KmerCode code, int d, Visitor&& visit) const {
    for_each_neighbor(code, d, std::forward<Visitor>(visit), scratch_);
  }

  /// Type-erased form (thin wrapper over the template overload).
  void for_each_neighbor(seq::KmerCode code, int d,
                         const NeighborVisitor& visit) const;

 private:
  const KSpectrum* spectrum_;
  mutable std::vector<seq::KmerCode> scratch_;
};

/// Strategy 2: masked-sort replicas (Sec. 2.3, steps a-c).
class MaskedSortIndex {
 public:
  /// Builds C(c,d) sorted replicas over the spectrum, one pool task per
  /// replica (they are independent permutations). Requires d < c <= k.
  /// nullptr pool = the shared default pool. Replica contents are
  /// deterministic regardless of thread count (ties in the masked key
  /// break by spectrum index).
  MaskedSortIndex(const KSpectrum& spectrum, int c, int d,
                  util::ThreadPool* pool = nullptr);

  int d() const noexcept { return d_; }
  std::size_t num_replicas() const noexcept { return replicas_.size(); }

  /// Visits every spectrum kmer within Hamming distance [1, d] of `code`.
  /// Exact: each neighbor is reported exactly once. `hits` is dedup
  /// scratch (a neighbor whose mutated positions span fewer than d
  /// chunks collides in several replicas); reuse one vector per worker.
  /// Thread-safe for concurrent callers with distinct scratch vectors.
  template <typename Visitor>
  void for_each_neighbor(seq::KmerCode code, Visitor&& visit,
                         std::vector<std::uint32_t>& hits) const {
    hits.clear();
    // Fast path: a flat (in-memory or mmap-external) spectrum exposes its
    // code array as a contiguous span, so the collision-run scan runs as
    // a fused gather + XOR/popcount kernel (util::simd). A sharded
    // spectrum has no such span — its code_at goes through the shard
    // source — so it keeps the generic per-element loop.
    const std::span<const seq::KmerCode> codes = spectrum_->codes();
    const bool flat = codes.size() == spectrum_->size();
    for (const auto& rep : replicas_) {
      const seq::KmerCode keep = ~rep.mask;
      const seq::KmerCode key = code & keep;
      auto cmp_lo = [&](std::uint32_t idx, seq::KmerCode value) {
        return (spectrum_->code_at(idx) & keep) < value;
      };
      auto it = std::lower_bound(rep.order.begin(), rep.order.end(), key,
                                 cmp_lo);
      if (flat) {
        // Blocked so the stack buffer stays small: a block consumed in
        // full means the collision run may continue into the next block.
        constexpr std::size_t kRunBlock = 128;
        std::size_t off = static_cast<std::size_t>(it - rep.order.begin());
        while (off < rep.order.size()) {
          const std::size_t avail =
              std::min(kRunBlock, rep.order.size() - off);
          std::uint32_t buf[kRunBlock];
          std::size_t out_n = 0;
          const std::size_t consumed = util::simd::masked_run_filter(
              codes.data(), rep.order.data() + off, avail, keep, key, code,
              d_, buf, &out_n);
          hits.insert(hits.end(), buf, buf + out_n);
          if (consumed < avail) break;
          off += consumed;
        }
      } else {
        for (; it != rep.order.end() &&
               (spectrum_->code_at(*it) & keep) == key;
             ++it) {
          const seq::KmerCode cand = spectrum_->code_at(*it);
          const int hd = seq::kmer_hamming(cand, code);
          if (hd >= 1 && hd <= d_) hits.push_back(*it);
        }
      }
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    for (const std::uint32_t idx : hits) {
      visit(spectrum_->code_at(idx), idx);
    }
  }

  /// As above with call-local scratch.
  template <typename Visitor>
  void for_each_neighbor(seq::KmerCode code, Visitor&& visit) const {
    std::vector<std::uint32_t> hits;
    for_each_neighbor(code, std::forward<Visitor>(visit), hits);
  }

  /// Type-erased form (thin wrapper over the template overload).
  void for_each_neighbor(seq::KmerCode code,
                         const NeighborVisitor& visit) const;

  /// Memory consumed by the replica permutations, in bytes.
  std::size_t memory_bytes() const noexcept;

 private:
  struct Replica {
    seq::KmerCode mask = 0;  // bits cleared before comparison
    std::vector<std::uint32_t> order;  // spectrum indices sorted by masked code
  };

  const KSpectrum* spectrum_;
  int d_;
  std::vector<Replica> replicas_;
};

}  // namespace ngs::kspec
