#pragma once
// A miniature in-process MapReduce runtime (Sec. 1.3.1 / 4.4): typed
// map and reduce functions, hash partitioning, a sort-based shuffle,
// thread-pool execution, per-stage counters/timings, and Hadoop-style
// task retry under (simulated) task failure.
//
// CLOSET's eight tasks (Sec. 4.4) run on this engine; the per-stage
// wall times populate Table 4.3 and the record counters Table 4.2.
//
// Semantics mirror Hadoop:
//  - map(key, value, emitter) runs once per input record; tasks are
//    independent and idempotent (a failed task is re-executed from its
//    input split, discarding partial output);
//  - all values sharing a key are passed to one reduce(key, values,
//    emitter) call, with keys processed in sorted order within each
//    reducer partition;
//  - output order is deterministic: reducer partitions in index order,
//    keys sorted within each.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ngs::mapreduce {

struct JobCounters {
  std::uint64_t map_input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t reduce_input_groups = 0;
  std::uint64_t reduce_output_records = 0;
  std::uint64_t map_task_attempts = 0;
  std::uint64_t map_task_failures = 0;
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;

  void merge(const JobCounters& o) {
    map_input_records += o.map_input_records;
    map_output_records += o.map_output_records;
    reduce_input_groups += o.reduce_input_groups;
    reduce_output_records += o.reduce_output_records;
    map_task_attempts += o.map_task_attempts;
    map_task_failures += o.map_task_failures;
    map_seconds += o.map_seconds;
    shuffle_seconds += o.shuffle_seconds;
    reduce_seconds += o.reduce_seconds;
  }
};

struct JobConfig {
  std::size_t num_map_tasks = 0;  // 0 = 4x pool size
  std::size_t num_reducers = 8;
  /// Simulated per-map-task failure probability (Hadoop fault tolerance
  /// demonstration; failed tasks are retried from their split).
  double task_failure_rate = 0.0;
  int max_task_attempts = 3;
  std::uint64_t failure_seed = 0x5eed;
  /// Pool to run on; nullptr = the shared default pool. Injected faults
  /// are keyed to (failure_seed, task index), so the same config yields
  /// the same failures — and the same output — on any pool size.
  util::ThreadPool* pool = nullptr;
};

/// Raised when a map task exhausts its retry budget (ErrorKind::kTask,
/// site mapreduce.map_task).
class TaskFailedError : public ngs::Error {
 public:
  explicit TaskFailedError(const std::string& what)
      : ngs::Error(ngs::ErrorKind::kTask, fault::sites::kMapTask, what) {}
};

/// Collects intermediate (K, V) pairs from a mapper or reducer.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Simulated task failure signal (distinct from user exceptions so retry
/// logic only retries injected faults, not bugs). Alias of the process-wide
/// fault registry's marker so NGS_FAULT_SPEC=mapreduce.map_task=... and
/// JobConfig::task_failure_rate share one retry path.
using InjectedTaskFault = fault::InjectedFault;

template <typename IK, typename IV, typename MK, typename MV, typename OK,
          typename OV, typename Hash = std::hash<MK>>
class Job {
 public:
  using MapFn = std::function<void(const IK&, const IV&, Emitter<MK, MV>&)>;
  using ReduceFn =
      std::function<void(const MK&, std::span<const MV>, Emitter<OK, OV>&)>;

  /// Runs the job over `input`; returns the reduce output.
  static std::vector<std::pair<OK, OV>> run(
      const std::vector<std::pair<IK, IV>>& input, const MapFn& map_fn,
      const ReduceFn& reduce_fn, const JobConfig& config = {},
      JobCounters* counters = nullptr) {
    JobCounters local;
    const std::size_t R = std::max<std::size_t>(1, config.num_reducers);
    auto& pool =
        config.pool != nullptr ? *config.pool : util::default_pool();
    const std::size_t T =
        config.num_map_tasks != 0
            ? config.num_map_tasks
            : std::max<std::size_t>(1, pool.size() * 4);

    // ---- Map phase: each task maps one input split into R partitions.
    util::Timer map_timer;
    const std::size_t num_tasks = std::min(T, std::max<std::size_t>(1, input.size()));
    std::vector<std::vector<std::vector<std::pair<MK, MV>>>> task_parts(
        num_tasks);
    std::atomic<std::uint64_t> attempts{0}, failures{0},
        out_records{0};
    const std::size_t split =
        (input.size() + num_tasks - 1) / std::max<std::size_t>(1, num_tasks);

    pool.parallel_for(0, num_tasks, [&](std::size_t task) {
      const std::size_t lo = task * split;
      const std::size_t hi = std::min(input.size(), lo + split);
      util::Rng fault_rng(config.failure_seed ^ (task * 0x9e3779b9ULL));
      for (int attempt = 0;; ++attempt) {
        attempts.fetch_add(1, std::memory_order_relaxed);
        try {
          std::vector<std::vector<std::pair<MK, MV>>> parts(R);
          Emitter<MK, MV> emitter;
          // Inject a fault for this attempt before doing the work, so the
          // retry reproduces the full split deterministically. Both the
          // job-config rate and the process-wide registry site feed the
          // same retry path.
          if ((config.task_failure_rate > 0.0 &&
               fault_rng.bernoulli(config.task_failure_rate)) ||
              fault::should_fire(fault::sites::kMapTask)) {
            throw InjectedTaskFault{};
          }
          for (std::size_t i = lo; i < hi; ++i) {
            map_fn(input[i].first, input[i].second, emitter);
          }
          Hash hasher;
          for (auto& kv : emitter.pairs()) {
            parts[hasher(kv.first) % R].push_back(std::move(kv));
          }
          out_records.fetch_add(emitter.pairs().size(),
                                std::memory_order_relaxed);
          task_parts[task] = std::move(parts);
          return;
        } catch (const InjectedTaskFault&) {
          failures.fetch_add(1, std::memory_order_relaxed);
          if (attempt + 1 >= config.max_task_attempts) {
            throw TaskFailedError(
                "map task " + std::to_string(task) + " failed " +
                std::to_string(attempt + 1) + " attempts (records [" +
                std::to_string(lo) + ", " + std::to_string(hi) +
                ")); retry budget exhausted");
          }
        }
      }
    });
    local.map_seconds = map_timer.seconds();
    local.map_input_records = input.size();
    local.map_output_records = out_records.load();
    local.map_task_attempts = attempts.load();
    local.map_task_failures = failures.load();

    // ---- Shuffle: gather per-reducer partitions and sort by key.
    util::Timer shuffle_timer;
    std::vector<std::vector<std::pair<MK, MV>>> buckets(R);
    {
      // Pre-size to avoid reallocation churn.
      std::vector<std::size_t> sizes(R, 0);
      for (const auto& parts : task_parts) {
        for (std::size_t r = 0; r < parts.size(); ++r) {
          sizes[r] += parts[r].size();
        }
      }
      for (std::size_t r = 0; r < R; ++r) buckets[r].reserve(sizes[r]);
      for (auto& parts : task_parts) {
        for (std::size_t r = 0; r < parts.size(); ++r) {
          for (auto& kv : parts[r]) buckets[r].push_back(std::move(kv));
        }
        parts.clear();
      }
    }
    pool.parallel_for(0, R, [&](std::size_t r) {
      std::stable_sort(buckets[r].begin(), buckets[r].end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
    });
    local.shuffle_seconds = shuffle_timer.seconds();

    // ---- Reduce phase.
    util::Timer reduce_timer;
    std::vector<std::vector<std::pair<OK, OV>>> outputs(R);
    std::atomic<std::uint64_t> groups{0};
    pool.parallel_for(0, R, [&](std::size_t r) {
      Emitter<OK, OV> emitter;
      auto& bucket = buckets[r];
      std::vector<MV> values;
      std::size_t i = 0;
      while (i < bucket.size()) {
        std::size_t j = i;
        values.clear();
        while (j < bucket.size() && !(bucket[i].first < bucket[j].first) &&
               !(bucket[j].first < bucket[i].first)) {
          values.push_back(std::move(bucket[j].second));
          ++j;
        }
        reduce_fn(bucket[i].first, values, emitter);
        groups.fetch_add(1, std::memory_order_relaxed);
        i = j;
      }
      outputs[r] = std::move(emitter.pairs());
    });
    local.reduce_seconds = reduce_timer.seconds();
    local.reduce_input_groups = groups.load();

    std::vector<std::pair<OK, OV>> result;
    std::size_t total = 0;
    for (const auto& o : outputs) total += o.size();
    result.reserve(total);
    for (auto& o : outputs) {
      for (auto& kv : o) result.push_back(std::move(kv));
    }
    local.reduce_output_records = result.size();
    if (counters != nullptr) counters->merge(local);
    return result;
  }
};

}  // namespace ngs::mapreduce
