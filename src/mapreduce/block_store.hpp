#pragma once
// HDFS-lite (Sec. 1.3.1): an in-memory block store that splits files into
// fixed-size blocks, replicates each block across distinct simulated
// DataNodes, and keeps the block map in a NameNode-style index. Node
// failure drops all replicas on that node; a read succeeds while at
// least one live replica of every block remains.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ngs::mapreduce {

class BlockStore {
 public:
  BlockStore(std::size_t num_nodes, std::size_t replication,
             std::size_t block_size);

  /// Writes (or overwrites) a file; blocks are placed round-robin with
  /// replicas on distinct nodes.
  void write(const std::string& name, std::string_view data);

  bool exists(const std::string& name) const;

  /// Reassembles a file from live replicas. Throws std::runtime_error if
  /// any block has lost all replicas.
  std::string read(const std::string& name) const;

  void remove(const std::string& name);

  /// Marks a DataNode dead (its replicas become unavailable).
  void fail_node(std::size_t node);

  /// Re-replicates under-replicated blocks onto live nodes, as the HDFS
  /// NameNode does after detecting a dead DataNode. Returns the number of
  /// new replicas created.
  std::size_t rereplicate();

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t live_nodes() const;
  std::size_t total_blocks() const noexcept { return blocks_.size(); }
  std::uint64_t bytes_stored(std::size_t node) const;

 private:
  struct Block {
    std::string data;
    std::vector<std::size_t> replicas;  // node ids
  };
  struct Node {
    bool alive = true;
    std::uint64_t bytes = 0;
  };

  std::size_t pick_node(const std::vector<std::size_t>& exclude) const;

  std::size_t replication_;
  std::size_t block_size_;
  std::vector<Node> nodes_;
  std::vector<Block> blocks_;
  std::unordered_map<std::string, std::vector<std::size_t>> files_;
  mutable std::size_t cursor_ = 0;  // round-robin placement
};

}  // namespace ngs::mapreduce
