#include "mapreduce/block_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace ngs::mapreduce {

BlockStore::BlockStore(std::size_t num_nodes, std::size_t replication,
                       std::size_t block_size)
    : replication_(std::min(replication, num_nodes)),
      block_size_(block_size) {
  if (num_nodes == 0 || replication == 0 || block_size == 0) {
    throw std::invalid_argument("BlockStore: zero-sized configuration");
  }
  nodes_.resize(num_nodes);
}

std::size_t BlockStore::pick_node(
    const std::vector<std::size_t>& exclude) const {
  for (std::size_t probe = 0; probe < nodes_.size(); ++probe) {
    cursor_ = (cursor_ + 1) % nodes_.size();
    if (!nodes_[cursor_].alive) continue;
    if (std::find(exclude.begin(), exclude.end(), cursor_) != exclude.end()) {
      continue;
    }
    return cursor_;
  }
  throw std::runtime_error("BlockStore: no eligible live node");
}

void BlockStore::write(const std::string& name, std::string_view data) {
  remove(name);
  std::vector<std::size_t> block_ids;
  for (std::size_t off = 0; off < data.size() || block_ids.empty();
       off += block_size_) {
    Block block;
    block.data = std::string(data.substr(off, block_size_));
    for (std::size_t r = 0; r < replication_; ++r) {
      const std::size_t node = pick_node(block.replicas);
      block.replicas.push_back(node);
      nodes_[node].bytes += block.data.size();
    }
    block_ids.push_back(blocks_.size());
    blocks_.push_back(std::move(block));
    if (data.empty()) break;
  }
  files_[name] = std::move(block_ids);
}

bool BlockStore::exists(const std::string& name) const {
  return files_.count(name) != 0;
}

std::string BlockStore::read(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("BlockStore: no such file: " + name);
  }
  std::string out;
  for (const std::size_t b : it->second) {
    const Block& block = blocks_[b];
    const bool live = std::any_of(
        block.replicas.begin(), block.replicas.end(),
        [&](std::size_t node) { return nodes_[node].alive; });
    if (!live) {
      throw std::runtime_error("BlockStore: block lost (all replicas dead)");
    }
    out += block.data;
  }
  return out;
}

void BlockStore::remove(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return;
  for (const std::size_t b : it->second) {
    for (const std::size_t node : blocks_[b].replicas) {
      nodes_[node].bytes -= blocks_[b].data.size();
    }
    blocks_[b].replicas.clear();
    blocks_[b].data.clear();
  }
  files_.erase(it);
}

void BlockStore::fail_node(std::size_t node) {
  nodes_.at(node).alive = false;
  nodes_[node].bytes = 0;
}

std::size_t BlockStore::rereplicate() {
  std::size_t created = 0;
  for (auto& block : blocks_) {
    if (block.data.empty() && block.replicas.empty()) continue;
    // Drop dead replicas.
    std::vector<std::size_t> live;
    for (const std::size_t node : block.replicas) {
      if (nodes_[node].alive) live.push_back(node);
    }
    if (live.empty()) continue;  // unrecoverable
    while (live.size() < replication_ && live.size() < live_nodes()) {
      const std::size_t node = pick_node(live);
      live.push_back(node);
      nodes_[node].bytes += block.data.size();
      ++created;
    }
    block.replicas = std::move(live);
  }
  return created;
}

std::size_t BlockStore::live_nodes() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.alive;
  return n;
}

std::uint64_t BlockStore::bytes_stored(std::size_t node) const {
  return nodes_.at(node).bytes;
}

}  // namespace ngs::mapreduce
