#pragma once
// On-disk layout of the persistent spectrum index (format versions 1
// and 2).
//
//   [0, 128)              IndexHeader (fixed 128 bytes)
//   [128, 128 + 32*S)     section table: S × SectionEntry
//   [aligned offsets...]  payload sections, each 64-byte aligned,
//                         zero-padded between sections
//
// Version 1 (monolithic): one codes section (sorted u64 LE), one
// parallel counts section (u32 LE), and — when a prefix-bucket lookup
// table was built — the 2^prefix_bits + 1 bucket offsets (u64 LE).
//
// Version 2 (sharded, the out-of-core build output): the spectrum is
// split into `shard_count` prefix-range shards — shard p holds exactly
// the codes whose top `shard_bits` bits equal p, so the shards cover
// disjoint ascending key ranges and their concatenation is the
// monolithic spectrum. Each shard contributes its own codes/counts
// (and optional bucket-starts) sections, tagged with the shard's
// prefix in SectionEntry::shard_prefix and individually checksummed,
// so a reader can map and verify one shard without touching the rest.
// A kShardTable section (shard_count × ShardEntry, ascending prefix)
// records each shard's entry counts. The header's distinct/total are
// the sums over shards; prefix_bits is 0 (per-shard tables replace the
// global one). Writers emit version 2 only when shard_count > 1 — a
// single-bin build falls back to the byte-identical version-1 layout.
//
// Every section carries an FNV-1a 64 checksum of its payload bytes;
// the header carries a checksum of the header + section table (with
// the checksum field zeroed), so any metadata corruption — including a
// tampered section checksum — is caught on load without touching the
// payload pages, and `verify` extends the check to the payloads.
//
// All integers are little-endian native; `endian_tag` rejects a file
// written on a foreign-endian host instead of serving garbage.
// Compatibility policy: the magic pins the file family, format_version
// is bumped on any layout change (readers reject unknown versions —
// there are no silent partial reads), and unknown section ids are
// ignored so minor versions can append sections without breaking old
// readers of the same format_version.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace ngs::index {

inline constexpr char kIndexMagic[8] = {'N', 'G', 'S', 'S',
                                        'I', 'D', 'X', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kFormatVersionSharded = 2;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kSectionAlignment = 64;
/// Version-2 shard ceiling (shard_bits ≤ 8). Bounds the section table
/// so the metadata head read stays one bounded pread.
inline constexpr std::uint32_t kMaxShards = 256;
/// Section-count caps per version: v1 keeps the original 64; v2 allows
/// three sections per shard plus the shard table.
inline constexpr std::uint32_t kMaxSectionsV1 = 64;
inline constexpr std::uint32_t kMaxSectionsV2 = 3 * kMaxShards + 1;

/// Payload section identifiers.
enum class SectionId : std::uint32_t {
  kCodes = 1,         // sorted distinct kmer codes, u64[distinct]
  kCounts = 2,        // parallel multiplicities, u32[distinct]
  kBucketStarts = 3,  // prefix-bucket offsets, u64[2^prefix_bits + 1]
  kShardTable = 4,    // v2 only: shard_count × ShardEntry, ascending
};

/// Fixed 128-byte file header. Trivially copyable; parsed via memcpy so
/// a short or misaligned mapping can never fault.
struct IndexHeader {
  char magic[8];                  // kIndexMagic
  std::uint32_t format_version;   // kFormatVersion
  std::uint32_t header_bytes;     // sizeof(IndexHeader)
  std::uint32_t k;                // kmer length of the spectrum
  std::uint32_t flags;            // bit 0: both_strands
  std::uint64_t distinct;         // spectrum entries (codes/counts length)
  std::uint64_t total_instances;  // sum of counts
  std::uint32_t prefix_bits;      // 0 = no bucket section
  std::uint32_t section_count;
  std::uint64_t input_reads;      // provenance: reads the spectrum was
  std::uint64_t input_bases;      //   built from (InputSummary persisted
  std::uint32_t max_read_length;  //   so --load-index can skip pass 1)
  std::uint32_t endian_tag;       // kEndianTag
  std::uint64_t file_bytes;       // total file size (truncation check)
  std::uint64_t header_checksum;  // fnv1a64(header w/ this field = 0 ||
                                  //         section table)
  std::uint32_t shard_count;      // v2: shards in the file; v1: 0
  std::uint32_t shard_bits;       // v2: prefix width of the split; v1: 0
  std::uint8_t reserved[32];      // zeros; room for future fields
};
static_assert(sizeof(IndexHeader) == 128);
static_assert(std::is_trivially_copyable_v<IndexHeader>);

inline constexpr std::uint32_t kFlagBothStrands = 1u << 0;

/// One section-table row (32 bytes).
struct SectionEntry {
  std::uint32_t id;            // SectionId
  std::uint32_t shard_prefix;  // v2 per-shard sections: the shard's
                               // prefix key; zero otherwise
  std::uint64_t offset;        // from file start; kSectionAlignment-aligned
  std::uint64_t bytes;         // payload length (no padding)
  std::uint64_t checksum;      // fnv1a64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// One row of the v2 shard table (24 bytes): the shard's prefix key,
/// the width of its embedded prefix-bucket table (0 = none), and its
/// entry counts. Rows are ascending by prefix; Σ distinct and Σ
/// total_instances must equal the header fields.
struct ShardEntry {
  std::uint32_t prefix;
  std::uint32_t prefix_index_bits;
  std::uint64_t distinct;
  std::uint64_t total_instances;
};
static_assert(sizeof(ShardEntry) == 24);
static_assert(std::is_trivially_copyable_v<ShardEntry>);

/// FNV-1a 64-bit over a byte range; chainable via `state`.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t state = kFnv1aOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnv1aPrime;
  }
  return state;
}

/// Rounds `offset` up to the next kSectionAlignment boundary.
inline constexpr std::uint64_t align_up(std::uint64_t offset) noexcept {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace ngs::index
