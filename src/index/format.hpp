#pragma once
// On-disk layout of the persistent spectrum index (format version 1).
//
//   [0, 128)              IndexHeader (fixed 128 bytes)
//   [128, 128 + 32*S)     section table: S × SectionEntry
//   [aligned offsets...]  payload sections, each 64-byte aligned,
//                         zero-padded between sections
//
// Sections (ids in SectionId): the sorted code array (u64 LE), the
// parallel count array (u32 LE), and — when a prefix-bucket lookup
// table was built — the 2^prefix_bits + 1 bucket offsets (u64 LE).
// Every section carries an FNV-1a 64 checksum of its payload bytes;
// the header carries a checksum of the header + section table (with
// the checksum field zeroed), so any metadata corruption — including a
// tampered section checksum — is caught on load without touching the
// payload pages, and `verify` extends the check to the payloads.
//
// All integers are little-endian native; `endian_tag` rejects a file
// written on a foreign-endian host instead of serving garbage.
// Compatibility policy: the magic pins the file family, format_version
// is bumped on any layout change (readers reject unknown versions —
// there are no silent partial reads), and unknown section ids are
// ignored so minor versions can append sections without breaking old
// readers of the same format_version.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace ngs::index {

inline constexpr char kIndexMagic[8] = {'N', 'G', 'S', 'S',
                                        'I', 'D', 'X', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kSectionAlignment = 64;

/// Payload section identifiers.
enum class SectionId : std::uint32_t {
  kCodes = 1,         // sorted distinct kmer codes, u64[distinct]
  kCounts = 2,        // parallel multiplicities, u32[distinct]
  kBucketStarts = 3,  // prefix-bucket offsets, u64[2^prefix_bits + 1]
};

/// Fixed 128-byte file header. Trivially copyable; parsed via memcpy so
/// a short or misaligned mapping can never fault.
struct IndexHeader {
  char magic[8];                  // kIndexMagic
  std::uint32_t format_version;   // kFormatVersion
  std::uint32_t header_bytes;     // sizeof(IndexHeader)
  std::uint32_t k;                // kmer length of the spectrum
  std::uint32_t flags;            // bit 0: both_strands
  std::uint64_t distinct;         // spectrum entries (codes/counts length)
  std::uint64_t total_instances;  // sum of counts
  std::uint32_t prefix_bits;      // 0 = no bucket section
  std::uint32_t section_count;
  std::uint64_t input_reads;      // provenance: reads the spectrum was
  std::uint64_t input_bases;      //   built from (InputSummary persisted
  std::uint32_t max_read_length;  //   so --load-index can skip pass 1)
  std::uint32_t endian_tag;       // kEndianTag
  std::uint64_t file_bytes;       // total file size (truncation check)
  std::uint64_t header_checksum;  // fnv1a64(header w/ this field = 0 ||
                                  //         section table)
  std::uint8_t reserved[40];      // zeros; room for future fields
};
static_assert(sizeof(IndexHeader) == 128);
static_assert(std::is_trivially_copyable_v<IndexHeader>);

inline constexpr std::uint32_t kFlagBothStrands = 1u << 0;

/// One section-table row (32 bytes).
struct SectionEntry {
  std::uint32_t id;        // SectionId
  std::uint32_t reserved;  // zero
  std::uint64_t offset;    // from file start; kSectionAlignment-aligned
  std::uint64_t bytes;     // payload length (no padding)
  std::uint64_t checksum;  // fnv1a64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// FNV-1a 64-bit over a byte range; chainable via `state`.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t state = kFnv1aOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnv1aPrime;
  }
  return state;
}

/// Rounds `offset` up to the next kSectionAlignment boundary.
inline constexpr std::uint64_t align_up(std::uint64_t offset) noexcept {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace ngs::index
