#include "index/sharded_view.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "index/format.hpp"
#include "index/spectrum_index.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NGS_SHARDED_VIEW_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace ngs::index {

namespace {

using Kind = IndexError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& path,
                       const std::string& detail) {
  throw IndexError(kind, path + ": " + detail);
}

}  // namespace

/// One prefix bin's lazily built state. `ready` flips exactly once,
/// after `spectrum` (and whichever backing store it views) is fully
/// constructed, so readers on the fast path never see a partial shard.
struct ShardedSpectrumView::Slot {
  std::atomic<const kspec::KSpectrum*> ready{nullptr};
  std::mutex mu;
  std::unique_ptr<kspec::KSpectrum> spectrum;
  // Backing storage: a private per-shard mapping, or owned buffers on
  // the fallback path.
  void* mmap_base = nullptr;
  std::size_t mmap_len = 0;
  std::vector<seq::KmerCode> owned_codes;
  std::vector<std::uint32_t> owned_counts;
  std::vector<std::uint64_t> owned_buckets;

  ~Slot() {
#if NGS_SHARDED_VIEW_POSIX
    if (mmap_base != nullptr) ::munmap(mmap_base, mmap_len);
#endif
  }
};

ShardedSpectrumView::ShardedSpectrumView(std::string path, int k,
                                         int shard_bits,
                                         std::vector<ShardRegion> shards,
                                         bool use_mmap)
    : path_(std::move(path)),
      k_(k),
      shard_bits_(shard_bits),
      use_mmap_(use_mmap),
      shards_(std::move(shards)) {
  const std::size_t prefixes = std::size_t{1} << shard_bits_;
  region_of_prefix_.assign(prefixes, -1);
  slots_.resize(prefixes);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint32_t p = shards_[i].prefix;
    if (p >= prefixes || region_of_prefix_[p] >= 0 ||
        (i > 0 && shards_[i - 1].prefix >= p)) {
      fail(Kind::kBadLayout, path_, "malformed shard table");
    }
    region_of_prefix_[p] = static_cast<std::int32_t>(i);
    slots_[p] = std::make_unique<Slot>();
  }
#if NGS_SHARDED_VIEW_POSIX
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    fail(Kind::kIo, path_,
         std::string("open failed: ") + std::strerror(errno));
  }
#endif
}

ShardedSpectrumView::~ShardedSpectrumView() {
#if NGS_SHARDED_VIEW_POSIX
  if (fd_ >= 0) ::close(fd_);
#endif
}

std::vector<std::uint64_t> ShardedSpectrumView::shard_starts() const {
  std::vector<std::uint64_t> starts(region_of_prefix_.size() + 1, 0);
  for (std::size_t p = 0; p < region_of_prefix_.size(); ++p) {
    const std::int32_t r = region_of_prefix_[p];
    starts[p + 1] = starts[p] + (r < 0 ? 0 : shards_[r].distinct);
  }
  return starts;
}

void ShardedSpectrumView::materialize(Slot& slot,
                                      const ShardRegion& region) const {
  const std::uint64_t codes_bytes = region.distinct * sizeof(seq::KmerCode);
  const std::uint64_t counts_bytes = region.distinct * sizeof(std::uint32_t);
  const std::uint64_t region_begin = region.codes_offset;
  const std::uint64_t region_end =
      std::max({region.codes_offset + codes_bytes,
                region.counts_offset + counts_bytes,
                region.buckets_bytes > 0
                    ? region.buckets_offset + region.buckets_bytes
                    : std::uint64_t{0}});

  const seq::KmerCode* codes_ptr = nullptr;
  const std::uint32_t* counts_ptr = nullptr;
  const std::uint64_t* buckets_ptr = nullptr;

  // An injected fault (or a real mmap failure) must not fail the query:
  // the owned-buffer read below serves the identical bytes.
  bool try_mmap = use_mmap_ && region_end > region_begin;
  if (try_mmap && fault::should_fire(fault::sites::kShardMmap)) {
    try_mmap = false;
  }
#if NGS_SHARDED_VIEW_POSIX
  if (try_mmap) {
    const std::uint64_t page =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t map_begin = region_begin & ~(page - 1);
    const std::size_t len = static_cast<std::size_t>(region_end - map_begin);
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd_,
                        static_cast<::off_t>(map_begin));
    if (base != MAP_FAILED) {
      slot.mmap_base = base;
      slot.mmap_len = len;
      const auto* bytes = static_cast<const unsigned char*>(base);
      codes_ptr = reinterpret_cast<const seq::KmerCode*>(
          bytes + (region.codes_offset - map_begin));
      counts_ptr = reinterpret_cast<const std::uint32_t*>(
          bytes + (region.counts_offset - map_begin));
      if (region.buckets_bytes > 0) {
        buckets_ptr = reinterpret_cast<const std::uint64_t*>(
            bytes + (region.buckets_offset - map_begin));
      }
    }
  }
  if (codes_ptr == nullptr) {
    const auto read_at = [&](void* dst, std::uint64_t bytes,
                             std::uint64_t offset) {
      auto* p = static_cast<unsigned char*>(dst);
      while (bytes > 0) {
        const ::ssize_t r =
            ::pread(fd_, p, static_cast<std::size_t>(bytes),
                    static_cast<::off_t>(offset));
        if (r < 0) {
          if (errno == EINTR) continue;
          fail(Kind::kIo, path_,
               std::string("shard read failed: ") + std::strerror(errno));
        }
        if (r == 0) {
          fail(Kind::kTruncated, path_,
               "unexpected end of file reading a shard");
        }
        p += r;
        offset += static_cast<std::uint64_t>(r);
        bytes -= static_cast<std::uint64_t>(r);
      }
    };
    slot.owned_codes.resize(static_cast<std::size_t>(region.distinct));
    slot.owned_counts.resize(static_cast<std::size_t>(region.distinct));
    read_at(slot.owned_codes.data(), codes_bytes, region.codes_offset);
    read_at(slot.owned_counts.data(), counts_bytes, region.counts_offset);
    if (region.buckets_bytes > 0) {
      slot.owned_buckets.resize(
          static_cast<std::size_t>(region.buckets_bytes / sizeof(std::uint64_t)));
      read_at(slot.owned_buckets.data(), region.buckets_bytes,
              region.buckets_offset);
    }
    codes_ptr = slot.owned_codes.data();
    counts_ptr = slot.owned_counts.data();
    buckets_ptr =
        slot.owned_buckets.empty() ? nullptr : slot.owned_buckets.data();
  }
#else
  {
    std::ifstream is(path_, std::ios::binary);
    if (!is) fail(Kind::kIo, path_, "open failed");
    const auto read_at = [&](void* dst, std::uint64_t bytes,
                             std::uint64_t offset) {
      is.seekg(static_cast<std::streamoff>(offset));
      is.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
      if (!is) fail(Kind::kIo, path_, "shard read failed");
    };
    slot.owned_codes.resize(static_cast<std::size_t>(region.distinct));
    slot.owned_counts.resize(static_cast<std::size_t>(region.distinct));
    read_at(slot.owned_codes.data(), codes_bytes, region.codes_offset);
    read_at(slot.owned_counts.data(), counts_bytes, region.counts_offset);
    if (region.buckets_bytes > 0) {
      slot.owned_buckets.resize(
          static_cast<std::size_t>(region.buckets_bytes / sizeof(std::uint64_t)));
      read_at(slot.owned_buckets.data(), region.buckets_bytes,
              region.buckets_offset);
    }
    codes_ptr = slot.owned_codes.data();
    counts_ptr = slot.owned_counts.data();
    buckets_ptr =
        slot.owned_buckets.empty() ? nullptr : slot.owned_buckets.data();
  }
#endif

  const auto codes = std::span<const seq::KmerCode>(
      codes_ptr, static_cast<std::size_t>(region.distinct));
  const auto counts = std::span<const std::uint32_t>(
      counts_ptr, static_cast<std::size_t>(region.distinct));
  std::span<const std::uint64_t> buckets;
  if (buckets_ptr != nullptr && region.prefix_index_bits > 0) {
    buckets = std::span<const std::uint64_t>(
        buckets_ptr,
        (std::size_t{1} << region.prefix_index_bits) + 1);
  }
  // No keepalive: the slot (and the view that owns it) outlives every
  // use of the spectrum — from_shards holds the view via shared_ptr.
  slot.spectrum = std::make_unique<kspec::KSpectrum>(
      kspec::KSpectrum::adopt_external(
          codes, counts, buckets, k_, region.total_instances,
          buckets.empty() ? 0 : static_cast<int>(region.prefix_index_bits)));
  materialized_.fetch_add(1, std::memory_order_relaxed);
  slot.ready.store(slot.spectrum.get(), std::memory_order_release);
}

const kspec::KSpectrum* ShardedSpectrumView::shard(
    std::uint32_t prefix) const {
  if (prefix >= region_of_prefix_.size()) {
    std::ostringstream os;
    os << "shard prefix " << prefix << " out of range";
    fail(Kind::kBadLayout, path_, os.str());
  }
  const std::int32_t r = region_of_prefix_[prefix];
  if (r < 0) return nullptr;  // empty bin
  Slot& slot = *slots_[prefix];
  const kspec::KSpectrum* ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr) return ready;
  std::lock_guard<std::mutex> lock(slot.mu);
  ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr) return ready;
  materialize(slot, shards_[static_cast<std::size_t>(r)]);
  return slot.ready.load(std::memory_order_acquire);
}

}  // namespace ngs::index
