#pragma once
// ngs::index — the persistent, mmap-able k-spectrum index subsystem.
//
// Pass 1 of the correction pipeline (Sec. 2.1 k-spectrum construction)
// is a pure function of the read set, yet the seed recomputed it on
// every invocation. For a serving system running repeated correction
// jobs against the same reads, the spectrum is a static artifact:
// RECKONER builds its k-mer database out-of-band with KMC and loads it
// per run, and BFC treats the k-mer structure as an independently built,
// reusable index. This module gives the repository the same decoupling:
//
//   write_spectrum_index — serializes a KSpectrum (+ build provenance)
//       into the versioned binary format of format.hpp, atomically
//       (util::AtomicFile: write to tmp + fsync + rename), so readers
//       never observe a torn file;
//   ShardedIndexWriter — the out-of-core writer: streams finished
//       prefix-bin runs (ChunkedSpectrumBuilder::finish_spilled) into a
//       version-2 sharded file one shard at a time, so the full
//       spectrum never exists in memory on the write side either;
//   SpectrumIndex::load — maps the file and serves a zero-copy
//       KSpectrum view straight out of the mapped pages (no
//       deserialization: the code/count/bucket arrays are spans over
//       the mapping, 64-byte aligned by construction), falling back to
//       an owned read() buffer when mmap is unavailable or declined.
//       A sharded file loads as a lazy facade (ShardedSpectrumView):
//       shards are mapped individually on first query.
//
// Loaded views share ownership of the mapping through the spectrum's
// keepalive handle, so a KSpectrum obtained here can be moved into a
// corrector and outlive the SpectrumIndex object itself.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/format.hpp"
#include "kspec/kspectrum.hpp"
#include "util/error.hpp"

namespace ngs::index {

/// Loader/verifier failure with a machine-checkable kind. Every kind
/// maps to a distinct, actionable message (which file, what was
/// expected, what was found) — a short mmap is rejected up front, never
/// dereferenced. Derives from ngs::Error with ErrorKind::kIndex, so the
/// tools map any index failure to exit code 4 through the shared
/// taxonomy while callers that care can still switch on the fine-
/// grained corruption mode.
class IndexError : public ngs::Error {
 public:
  enum class Kind {
    kIo,             // open/stat/read/write/rename failure
    kBadMagic,       // not a spectrum index file
    kVersionSkew,    // format_version this reader does not understand
    kEndianMismatch, // written on a foreign-endian host
    kTruncated,      // file shorter than the metadata claims
    kBadLayout,      // internally inconsistent metadata (bad sizes,
                     // overlapping/unaligned sections, missing section)
    kChecksum,       // header/section checksum mismatch
    kInvalidPayload, // payload violates the spectrum invariants
  };

  IndexError(Kind kind, const std::string& what)
      : ngs::Error(ngs::ErrorKind::kIndex, "index", what), kind_(kind) {}

  /// The corruption mode; named index_kind() so the taxonomy-level
  /// ngs::Error::kind() stays visible on this type.
  Kind index_kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Build provenance persisted in the header: the spectrum parameters
/// plus the InputSummary of the read set it was built from, so a
/// --load-index run reproduces a fresh run's input accounting without
/// re-streaming pass 1.
struct IndexBuildInfo {
  int k = 0;
  bool both_strands = true;
  std::uint64_t input_reads = 0;
  std::uint64_t input_bases = 0;
  std::uint32_t max_read_length = 0;
};

/// Parsed metadata of an index file (everything `ngs-index info` shows).
struct IndexInfo {
  std::uint32_t format_version = 0;
  IndexBuildInfo build;
  std::uint64_t distinct = 0;
  std::uint64_t total_instances = 0;
  int prefix_bits = 0;
  std::uint64_t file_bytes = 0;
  /// Header+section-table checksum — changes whenever any payload
  /// changes (section checksums are part of the covered bytes), so it
  /// serves as the whole-file fingerprint surfaced as `index_checksum`.
  std::uint64_t checksum = 0;

  /// Version-2 shard split (0/0 on a monolithic version-1 file).
  std::uint32_t shard_count = 0;
  std::uint32_t shard_bits = 0;

  struct Section {
    SectionId id;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    /// Owning shard's prefix key (per-shard sections of a v2 file).
    std::uint32_t shard_prefix = 0;
  };
  std::vector<Section> sections;

  /// Per-shard rows of a version-2 file, ascending by prefix.
  struct Shard {
    std::uint32_t prefix = 0;
    std::uint32_t prefix_index_bits = 0;
    std::uint64_t distinct = 0;
    std::uint64_t total_instances = 0;
  };
  std::vector<Shard> shards;

  /// True when the payload is served from an mmap (zero-copy), false on
  /// the owned-buffer fallback path. On a sharded load this reports the
  /// mapping intent — each shard maps lazily on first touch (with a
  /// per-shard owned-read fallback).
  bool mapped = false;
};

/// Serializes `spectrum` to `path` atomically: the bytes are written to
/// a sibling temp file, fsync'ed, then renamed over `path` (and the
/// directory entry flushed), so a concurrent or crashed writer can
/// never leave a torn index behind. `build.k`/`build.both_strands` must
/// describe the spectrum ("k" is cross-checked). Throws IndexError on
/// any I/O failure. Returns the file's checksum fingerprint.
std::uint64_t write_spectrum_index(const std::string& path,
                                   const kspec::KSpectrum& spectrum,
                                   const IndexBuildInfo& build);

/// Streaming writer for the version-2 sharded format: shards (disjoint
/// ascending prefix-bin (code, count) runs, e.g. straight out of
/// ChunkedSpectrumBuilder::finish_spilled) are appended one at a time
/// and written to disk immediately, so peak memory is one shard — the
/// full spectrum never exists on the write side. The file is built in a
/// util::AtomicFile temp and renamed into place by finish(); dropping
/// the writer without finish() removes the temp. Requires
/// shard_count >= 2 (a single bin should be written as a monolithic
/// version-1 file via write_spectrum_index — byte-identical to a
/// non-spilled build). Throws IndexError on any failure.
class ShardedIndexWriter {
 public:
  /// `shard_count` must equal the number of append_shard calls to come;
  /// `shard_bits` the prefix width the codes were split by.
  ShardedIndexWriter(const std::string& path, const IndexBuildInfo& build,
                     int shard_bits, std::size_t shard_count);
  ~ShardedIndexWriter();
  ShardedIndexWriter(const ShardedIndexWriter&) = delete;
  ShardedIndexWriter& operator=(const ShardedIndexWriter&) = delete;

  /// Writes one shard: `codes` strictly ascending, all with top
  /// shard_bits equal to `prefix`, prefixes strictly ascending across
  /// calls. Builds the shard's own prefix-bucket table en route.
  void append_shard(std::uint32_t prefix,
                    std::vector<seq::KmerCode> codes,
                    std::vector<std::uint32_t> counts);

  /// Seals the file: writes the shard table and the final header, then
  /// atomically renames into place. Returns the file's checksum
  /// fingerprint. Must follow exactly shard_count append_shard calls.
  std::uint64_t finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct LoadOptions {
  /// Map the file read-only and serve the spectrum zero-copy from the
  /// mapped pages. When false (or on platforms without mmap) the file
  /// is read into an owned buffer instead — same parsing, same view
  /// semantics, just private memory.
  bool use_mmap = true;
  /// Recompute every section checksum against the stored values. Off by
  /// default: it touches every payload page, which defeats the lazy
  /// page-fault load the subsystem exists for. Structural validation
  /// (magic, version, endianness, bounds, header checksum) always runs.
  bool verify_checksums = false;
  /// Additionally run KSpectrum::validate_sorted_counts over the
  /// payload and cross-check total_instances (`ngs-index verify`).
  bool validate_payload = false;
};

class SpectrumIndex {
 public:
  /// Opens, validates, and (by default) maps `path`. Throws IndexError
  /// with a distinct kind/message for every corruption mode; on return
  /// the spectrum view is ready.
  static SpectrumIndex load(const std::string& path,
                            const LoadOptions& options = {});

  /// Parses and validates only the metadata (header + section table) —
  /// the cheap path behind `ngs-index info`.
  static IndexInfo read_info(const std::string& path);

  const IndexInfo& info() const noexcept { return info_; }
  const std::string& path() const noexcept { return path_; }

  /// The zero-copy spectrum view. Valid for the lifetime of this object.
  const kspec::KSpectrum& spectrum() const noexcept { return spectrum_; }

  /// A self-contained copy of the view: shares the mapping via the
  /// spectrum keepalive, so it remains valid after this SpectrumIndex
  /// is destroyed (the mapping is released when the last view goes).
  kspec::KSpectrum share_spectrum() const { return spectrum_; }

 private:
  SpectrumIndex() = default;

  std::string path_;
  IndexInfo info_;
  kspec::KSpectrum spectrum_;
};

}  // namespace ngs::index
