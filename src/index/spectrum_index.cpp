#include "index/spectrum_index.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "fault/fault.hpp"
#include "index/sharded_view.hpp"
#include "util/atomic_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NGS_INDEX_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace ngs::index {

namespace {

using Kind = IndexError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& path,
                       const std::string& detail) {
  throw IndexError(kind, path + ": " + detail);
}

[[noreturn]] void fail_errno(const std::string& path,
                             const std::string& action) {
  fail(Kind::kIo, path, action + " failed: " + std::strerror(errno));
}

const char* section_name(SectionId id) {
  switch (id) {
    case SectionId::kCodes: return "codes";
    case SectionId::kCounts: return "counts";
    case SectionId::kBucketStarts: return "bucket_starts";
    case SectionId::kShardTable: return "shard_table";
  }
  return "unknown";
}

/// Header + section-table fingerprint: the header bytes with the
/// checksum field zeroed, chained with the raw table rows. Because the
/// rows embed the per-payload checksums, this value changes whenever
/// any byte of the file changes.
std::uint64_t meta_checksum(IndexHeader header,
                            const std::vector<SectionEntry>& table) {
  header.header_checksum = 0;
  std::uint64_t state = fnv1a64(&header, sizeof(header));
  for (const auto& entry : table) {
    state = fnv1a64(&entry, sizeof(entry), state);
  }
  return state;
}

/// The backing bytes of a loaded index: an mmap (released on
/// destruction) or an owned buffer. Shared with every KSpectrum view
/// through the spectrum keepalive, so unmapping is deferred until the
/// last view is gone.
struct Mapping {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  void* mmap_base = nullptr;  // non-null => munmap on destruction
  std::vector<unsigned char> owned;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
#if NGS_INDEX_POSIX
    if (mmap_base != nullptr) ::munmap(mmap_base, size);
#endif
  }
};

#if NGS_INDEX_POSIX

struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

void read_exact_at(int fd, void* data, std::size_t n, std::uint64_t offset,
                   const std::string& path) {
  if (fault::should_fire(fault::sites::kIndexShortRead)) {
    fail(Kind::kTruncated, path,
         "unexpected end of file: injected fault at index.short_read");
  }
  auto* p = static_cast<unsigned char*>(data);
  while (n > 0) {
    const ::ssize_t r = ::pread(fd, p, n, static_cast<::off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "read");
    }
    if (r == 0) fail(Kind::kTruncated, path, "unexpected end of file");
    p += r;
    offset += static_cast<std::uint64_t>(r);
    n -= static_cast<std::size_t>(r);
  }
}

#endif  // NGS_INDEX_POSIX

struct Metadata {
  IndexHeader header;
  std::vector<SectionEntry> table;
  std::vector<ShardEntry> shards;  // v2 only
  std::uint64_t file_size = 0;
};

/// Validates everything that can be checked without touching payload
/// pages: magic, version, endianness, declared vs actual size, table
/// bounds, and the header checksum.
Metadata parse_metadata(const unsigned char* head, std::size_t head_bytes,
                        std::uint64_t file_size, const std::string& path) {
  Metadata meta;
  meta.file_size = file_size;
  if (file_size < sizeof(IndexHeader) || head_bytes < sizeof(IndexHeader)) {
    std::ostringstream os;
    os << "truncated index: file is " << file_size
       << " bytes, a version-" << kFormatVersion << " header needs "
       << sizeof(IndexHeader);
    fail(Kind::kTruncated, path, os.str());
  }
  std::memcpy(&meta.header, head, sizeof(IndexHeader));
  const IndexHeader& h = meta.header;
  if (std::memcmp(h.magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    fail(Kind::kBadMagic, path,
         "bad magic — not an ngs spectrum index file");
  }
  if (h.format_version != kFormatVersion &&
      h.format_version != kFormatVersionSharded) {
    std::ostringstream os;
    os << "unsupported index format version " << h.format_version
       << " (this build reads versions " << kFormatVersion << " and "
       << kFormatVersionSharded
       << "; rebuild the index with this binary's ngs-index)";
    fail(Kind::kVersionSkew, path, os.str());
  }
  const bool sharded = h.format_version == kFormatVersionSharded;
  if (h.endian_tag != kEndianTag) {
    fail(Kind::kEndianMismatch, path,
         "endianness mismatch — the index was written on a host with "
         "different byte order");
  }
  if (h.header_bytes != sizeof(IndexHeader)) {
    std::ostringstream os;
    os << "header size mismatch (" << h.header_bytes << " declared, "
       << sizeof(IndexHeader) << " expected)";
    fail(Kind::kBadLayout, path, os.str());
  }
  if (h.file_bytes != file_size) {
    std::ostringstream os;
    os << "truncated index: header declares " << h.file_bytes
       << " bytes but the file has " << file_size;
    fail(Kind::kTruncated, path, os.str());
  }
  if (h.section_count > (sharded ? kMaxSectionsV2 : kMaxSectionsV1)) {
    std::ostringstream os;
    os << "implausible section count " << h.section_count;
    fail(Kind::kBadLayout, path, os.str());
  }
  if (!sharded) {
    if (h.shard_count != 0 || h.shard_bits != 0) {
      fail(Kind::kBadLayout, path,
           "version-1 index carries nonzero shard fields");
    }
  } else {
    if (h.shard_count < 2 || h.shard_count > kMaxShards ||
        h.shard_bits < 1 || h.shard_bits > 8 ||
        h.shard_bits > 2 * h.k ||
        h.shard_count > (std::uint64_t{1} << h.shard_bits)) {
      std::ostringstream os;
      os << "implausible shard split (" << h.shard_count << " shards, "
         << h.shard_bits << " shard bits, k=" << h.k << ")";
      fail(Kind::kBadLayout, path, os.str());
    }
    if (h.prefix_bits != 0) {
      fail(Kind::kBadLayout, path,
           "sharded index carries a global prefix table (per-shard "
           "tables are required)");
    }
  }
  const std::uint64_t table_end =
      sizeof(IndexHeader) +
      std::uint64_t{h.section_count} * sizeof(SectionEntry);
  if (table_end > file_size) {
    std::ostringstream os;
    os << "truncated index: section table needs " << table_end
       << " bytes, file has " << file_size;
    fail(Kind::kTruncated, path, os.str());
  }
  if (head_bytes < table_end) {
    fail(Kind::kIo, path, "internal error: metadata read too short");
  }
  meta.table.resize(h.section_count);
  std::memcpy(meta.table.data(), head + sizeof(IndexHeader),
              meta.table.size() * sizeof(SectionEntry));
  const std::uint64_t expect = meta_checksum(meta.header, meta.table);
  if (fault::should_fire(fault::sites::kIndexChecksum)) {
    fail(Kind::kChecksum, path,
         "header checksum mismatch: injected fault at index.checksum");
  }
  if (expect != h.header_checksum) {
    std::ostringstream os;
    os << "header checksum mismatch (stored " << std::hex
       << h.header_checksum << ", computed " << expect
       << ") — the metadata is corrupt";
    fail(Kind::kChecksum, path, os.str());
  }
  return meta;
}

/// Bounds/shape validation of one known section against the header.
void check_section(const SectionEntry& entry, std::uint64_t expected_bytes,
                   const Metadata& meta, const std::string& path) {
  const char* name = section_name(static_cast<SectionId>(entry.id));
  if (entry.offset % kSectionAlignment != 0) {
    std::ostringstream os;
    os << "section '" << name << "' offset " << entry.offset << " is not "
       << kSectionAlignment << "-byte aligned";
    fail(Kind::kBadLayout, path, os.str());
  }
  if (entry.offset > meta.file_size ||
      entry.bytes > meta.file_size - entry.offset) {
    std::ostringstream os;
    os << "truncated index: section '" << name << "' spans ["
       << entry.offset << ", " << entry.offset + entry.bytes
       << ") but the file has only " << meta.file_size << " bytes";
    fail(Kind::kTruncated, path, os.str());
  }
  if (entry.bytes != expected_bytes) {
    std::ostringstream os;
    os << "section '" << name << "' holds " << entry.bytes
       << " bytes where the header implies " << expected_bytes;
    fail(Kind::kBadLayout, path, os.str());
  }
}

const SectionEntry* find_section(const Metadata& meta, SectionId id) {
  for (const auto& entry : meta.table) {
    if (entry.id == static_cast<std::uint32_t>(id)) return &entry;
  }
  return nullptr;
}

/// v2: the section of `id` belonging to shard `prefix`.
const SectionEntry& require_shard_section(const Metadata& meta, SectionId id,
                                          std::uint32_t prefix,
                                          const std::string& path) {
  for (const auto& entry : meta.table) {
    if (entry.id == static_cast<std::uint32_t>(id) &&
        entry.shard_prefix == prefix) {
      return entry;
    }
  }
  std::ostringstream os;
  os << "missing section '" << section_name(id) << "' for shard " << prefix;
  fail(Kind::kBadLayout, path, os.str());
}

/// Streaming whole-section checksum verification for files that are not
/// mapped in one piece (the sharded load): every section is re-read in
/// bounded chunks and checked against its table row.
void verify_sections_streaming(const Metadata& meta, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(Kind::kIo, path,
         std::string("open failed: ") + std::strerror(errno));
  }
  std::vector<unsigned char> buf(1 << 20);
  for (const auto& entry : meta.table) {
    if (std::fseek(f, static_cast<long>(entry.offset), SEEK_SET) != 0) {
      std::fclose(f);
      fail(Kind::kIo, path, "seek failed");
    }
    std::uint64_t state = kFnv1aOffset;
    std::uint64_t left = entry.bytes;
    while (left > 0) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uint64_t>(left, buf.size()));
      if (std::fread(buf.data(), 1, want, f) != want) {
        std::fclose(f);
        fail(Kind::kTruncated, path, "unexpected end of file verifying "
             "section checksums");
      }
      state = fnv1a64(buf.data(), want, state);
      left -= want;
    }
    if (state != entry.checksum) {
      std::ostringstream os;
      os << "checksum mismatch in section '"
         << section_name(static_cast<SectionId>(entry.id)) << "' (shard "
         << entry.shard_prefix << ", stored " << std::hex << entry.checksum
         << ", computed " << state
         << ") — the payload is corrupt; rebuild the index";
      std::fclose(f);
      fail(Kind::kChecksum, path, os.str());
    }
  }
  std::fclose(f);
}

const SectionEntry& require_section(const Metadata& meta, SectionId id,
                                    const std::string& path) {
  const auto* entry = find_section(meta, id);
  if (entry == nullptr) {
    fail(Kind::kBadLayout, path,
         std::string("missing required section '") + section_name(id) + "'");
  }
  return *entry;
}

IndexInfo make_info(const Metadata& meta) {
  IndexInfo info;
  const IndexHeader& h = meta.header;
  info.format_version = h.format_version;
  info.build.k = static_cast<int>(h.k);
  info.build.both_strands = (h.flags & kFlagBothStrands) != 0;
  info.build.input_reads = h.input_reads;
  info.build.input_bases = h.input_bases;
  info.build.max_read_length = h.max_read_length;
  info.distinct = h.distinct;
  info.total_instances = h.total_instances;
  info.prefix_bits = static_cast<int>(h.prefix_bits);
  info.file_bytes = h.file_bytes;
  info.checksum = h.header_checksum;
  info.shard_count = h.shard_count;
  info.shard_bits = h.shard_bits;
  for (const auto& entry : meta.table) {
    info.sections.push_back({static_cast<SectionId>(entry.id), entry.offset,
                             entry.bytes, entry.checksum,
                             entry.shard_prefix});
  }
  for (const auto& shard : meta.shards) {
    info.shards.push_back({shard.prefix, shard.prefix_index_bits,
                           shard.distinct, shard.total_instances});
  }
  return info;
}

/// Structural validation of the v2 shard rows against the header: the
/// rows must partition the key space ascending and their entry counts
/// must sum to the header's totals.
void validate_shard_rows(const Metadata& meta, const std::string& path) {
  const IndexHeader& h = meta.header;
  std::uint64_t distinct = 0, total = 0;
  for (std::size_t i = 0; i < meta.shards.size(); ++i) {
    const ShardEntry& s = meta.shards[i];
    if (s.prefix >= (std::uint64_t{1} << h.shard_bits) ||
        (i > 0 && meta.shards[i - 1].prefix >= s.prefix)) {
      fail(Kind::kBadLayout, path,
           "shard table prefixes are not ascending within the shard "
           "split range");
    }
    if (s.prefix_index_bits > std::min<std::uint32_t>(2 * h.k, 24)) {
      std::ostringstream os;
      os << "shard " << s.prefix << " declares implausible "
         << "prefix_index_bits " << s.prefix_index_bits;
      fail(Kind::kBadLayout, path, os.str());
    }
    if (s.distinct == 0) {
      std::ostringstream os;
      os << "shard " << s.prefix << " is empty (empty bins must be "
         << "omitted from the shard table)";
      fail(Kind::kBadLayout, path, os.str());
    }
    distinct += s.distinct;
    total += s.total_instances;
  }
  if (distinct != h.distinct || total != h.total_instances) {
    std::ostringstream os;
    os << "shard table sums (" << distinct << " distinct, " << total
       << " instances) do not match the header (" << h.distinct << ", "
       << h.total_instances << ")";
    fail(Kind::kBadLayout, path, os.str());
  }
}

/// Reads and verifies the v2 shard-table payload (tiny: ≤ kMaxShards
/// rows) via `read_at(dst, bytes, offset)`.
template <typename ReadAt>
void load_shard_table(Metadata& meta, const std::string& path,
                      const ReadAt& read_at) {
  if (meta.header.format_version != kFormatVersionSharded) return;
  const SectionEntry& st =
      require_section(meta, SectionId::kShardTable, path);
  check_section(st, std::uint64_t{meta.header.shard_count} * sizeof(ShardEntry),
                meta, path);
  meta.shards.resize(meta.header.shard_count);
  read_at(meta.shards.data(), static_cast<std::size_t>(st.bytes), st.offset);
  // The table is metadata in all but placement — always verify it, so a
  // load can never route queries through corrupt shard geometry.
  const std::uint64_t actual =
      fnv1a64(meta.shards.data(), static_cast<std::size_t>(st.bytes));
  if (actual != st.checksum) {
    std::ostringstream os;
    os << "checksum mismatch in section 'shard_table' (stored " << std::hex
       << st.checksum << ", computed " << actual
       << ") — the shard table is corrupt";
    fail(Kind::kChecksum, path, os.str());
  }
  validate_shard_rows(meta, path);
}

Metadata read_metadata_from_file(const std::string& path) {
  if (fault::should_fire(fault::sites::kIndexOpen)) {
    fail(Kind::kIo, path, "open failed: injected fault at index.open");
  }
  // One bounded read covers the header and the (validated-size) table —
  // sized for the larger v2 cap; v1 files are typically smaller than
  // even the v1 bound.
  const std::uint64_t head_cap =
      sizeof(IndexHeader) + kMaxSectionsV2 * sizeof(SectionEntry);
#if NGS_INDEX_POSIX
  FdGuard fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) fail_errno(path, "open");
  struct ::stat st{};
  if (::fstat(fd.fd, &st) != 0) fail_errno(path, "stat");
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  std::vector<unsigned char> head(static_cast<std::size_t>(
      std::min<std::uint64_t>(file_size, head_cap)));
  if (!head.empty()) read_exact_at(fd.fd, head.data(), head.size(), 0, path);
  Metadata meta = parse_metadata(head.data(), head.size(), file_size, path);
  load_shard_table(meta, path,
                   [&](void* dst, std::size_t bytes, std::uint64_t offset) {
                     read_exact_at(fd.fd, dst, bytes, offset, path);
                   });
  return meta;
#else
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(Kind::kIo, path, "open failed");
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0);
  std::vector<unsigned char> head(static_cast<std::size_t>(
      std::min<std::uint64_t>(file_size, head_cap)));
  is.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  if (!is) fail(Kind::kIo, path, "read failed");
  Metadata meta = parse_metadata(head.data(), head.size(), file_size, path);
  load_shard_table(meta, path,
                   [&](void* dst, std::size_t bytes, std::uint64_t offset) {
                     is.clear();
                     is.seekg(static_cast<std::streamoff>(offset));
                     is.read(static_cast<char*>(dst),
                             static_cast<std::streamsize>(bytes));
                     if (!is) fail(Kind::kIo, path, "read failed");
                   });
  return meta;
#endif
}

std::shared_ptr<Mapping> map_file(const std::string& path,
                                  std::uint64_t file_size, bool use_mmap,
                                  bool* mapped) {
  auto mapping = std::make_shared<Mapping>();
  mapping->size = static_cast<std::size_t>(file_size);
  *mapped = false;
#if NGS_INDEX_POSIX
  FdGuard fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) fail_errno(path, "open");
  // Injected mmap failure exercises the owned-buffer fallback: the load
  // must still succeed, just without zero-copy pages.
  if (fault::should_fire(fault::sites::kIndexMmap)) use_mmap = false;
  if (use_mmap && file_size > 0) {
    void* base = ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE,
                        fd.fd, 0);
    if (base != MAP_FAILED) {
      mapping->mmap_base = base;
      mapping->data = static_cast<const unsigned char*>(base);
      *mapped = true;
      return mapping;
    }
    // Fall through to the owned-buffer path on any mmap failure.
  }
  mapping->owned.resize(mapping->size);
  if (!mapping->owned.empty()) {
    read_exact_at(fd.fd, mapping->owned.data(), mapping->owned.size(), 0,
                  path);
  }
  mapping->data = mapping->owned.data();
  return mapping;
#else
  (void)use_mmap;
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(Kind::kIo, path, "open failed");
  mapping->owned.resize(mapping->size);
  is.read(reinterpret_cast<char*>(mapping->owned.data()),
          static_cast<std::streamsize>(mapping->owned.size()));
  if (!is) fail(Kind::kIo, path, "read failed");
  mapping->data = mapping->owned.data();
  return mapping;
#endif
}

/// Fault gate + AtomicFile append, with the shared ngs::Error(kIo) the
/// file raises rewrapped as IndexError so index writers keep their
/// taxonomy (exit code 4) end to end.
void emit_through(util::AtomicFile& file, const void* data,
                  std::uint64_t bytes) {
  if (fault::should_fire(fault::sites::kIndexWrite)) {
    fail(Kind::kIo, file.temp_path(),
         "write failed: injected fault at index.write");
  }
  try {
    file.write(data, static_cast<std::size_t>(bytes));
  } catch (const ngs::Error& e) {
    throw IndexError(Kind::kIo, e.what());
  }
}

util::AtomicFile make_index_file(const std::string& path) {
  util::AtomicFileOptions options;
  options.fsync_file = true;
  options.fsync_dir = true;
  options.error_site = "index.write";
  return util::AtomicFile(path, options);
}

}  // namespace

std::uint64_t write_spectrum_index(const std::string& path,
                                   const kspec::KSpectrum& spectrum,
                                   const IndexBuildInfo& build) {
  if (build.k != spectrum.k()) {
    fail(Kind::kBadLayout, path,
         "build info k does not match the spectrum's k");
  }
  if (spectrum.sharded()) {
    fail(Kind::kBadLayout, path,
         "cannot serialize a sharded spectrum view monolithically — "
         "the shards live in an index file already");
  }
  const auto codes = spectrum.codes();
  const auto counts = spectrum.counts();
  const auto buckets = spectrum.bucket_starts();
  const int prefix_bits = spectrum.prefix_index_bits();

  std::vector<SectionEntry> table;
  const auto add_section = [&table](SectionId id, const void* data,
                                    std::uint64_t bytes) {
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(id);
    entry.bytes = bytes;
    entry.checksum = fnv1a64(data, static_cast<std::size_t>(bytes));
    table.push_back(entry);
  };
  add_section(SectionId::kCodes, codes.data(), codes.size_bytes());
  add_section(SectionId::kCounts, counts.data(), counts.size_bytes());
  if (prefix_bits > 0) {
    add_section(SectionId::kBucketStarts, buckets.data(),
                buckets.size_bytes());
  }
  std::uint64_t offset = align_up(sizeof(IndexHeader) +
                                  table.size() * sizeof(SectionEntry));
  for (auto& entry : table) {
    entry.offset = offset;
    offset = align_up(offset + entry.bytes);
  }

  IndexHeader header{};
  std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
  header.format_version = kFormatVersion;
  header.header_bytes = sizeof(IndexHeader);
  header.k = static_cast<std::uint32_t>(spectrum.k());
  header.flags = build.both_strands ? kFlagBothStrands : 0;
  header.distinct = spectrum.size();
  header.total_instances = spectrum.total_instances();
  header.prefix_bits = static_cast<std::uint32_t>(prefix_bits);
  header.section_count = static_cast<std::uint32_t>(table.size());
  header.input_reads = build.input_reads;
  header.input_bases = build.input_bases;
  header.max_read_length = build.max_read_length;
  header.endian_tag = kEndianTag;
  header.file_bytes = offset;
  header.header_checksum = meta_checksum(header, table);

  util::AtomicFile file = make_index_file(path);
  static constexpr unsigned char kZeros[kSectionAlignment] = {};
  emit_through(file, &header, sizeof(header));
  emit_through(file, table.data(), table.size() * sizeof(SectionEntry));
  const std::span<const unsigned char> payloads[] = {
      {reinterpret_cast<const unsigned char*>(codes.data()),
       codes.size_bytes()},
      {reinterpret_cast<const unsigned char*>(counts.data()),
       counts.size_bytes()},
      {reinterpret_cast<const unsigned char*>(buckets.data()),
       buckets.size_bytes()},
  };
  for (std::size_t i = 0; i < table.size(); ++i) {
    emit_through(file, kZeros, table[i].offset - file.offset());
    emit_through(file, payloads[i].data(), payloads[i].size());
  }
  emit_through(file, kZeros, header.file_bytes - file.offset());
  try {
    file.commit();
  } catch (const ngs::Error& e) {
    throw IndexError(Kind::kIo, e.what());
  }
  return header.header_checksum;
}

// --- ShardedIndexWriter ----------------------------------------------

struct ShardedIndexWriter::Impl {
  util::AtomicFile file;
  IndexBuildInfo build;
  int shard_bits = 0;
  std::size_t shard_count = 0;
  std::uint64_t metadata_region = 0;  // aligned header + table capacity
  std::vector<SectionEntry> table;
  std::vector<ShardEntry> shards;
  bool finished = false;

  explicit Impl(const std::string& path) : file(make_index_file(path)) {}
};

ShardedIndexWriter::ShardedIndexWriter(const std::string& path,
                                       const IndexBuildInfo& build,
                                       int shard_bits,
                                       std::size_t shard_count)
    : impl_(std::make_unique<Impl>(path)) {
  if (shard_count < 2 || shard_count > kMaxShards) {
    fail(Kind::kBadLayout, path,
         "sharded writer needs 2..256 shards (write a single bin as a "
         "version-1 index)");
  }
  if (shard_bits < 1 || shard_bits > 8 || shard_bits > 2 * build.k ||
      shard_count > (std::size_t{1} << shard_bits)) {
    fail(Kind::kBadLayout, path, "invalid shard split parameters");
  }
  impl_->build = build;
  impl_->shard_bits = shard_bits;
  impl_->shard_count = shard_count;
  impl_->shards.reserve(shard_count);
  impl_->table.reserve(3 * shard_count + 1);
  // Reserve the worst-case metadata region (header + three sections per
  // shard + the shard table) and fill it with zeros; finish() overwrites
  // it in place once every offset and checksum is known.
  impl_->metadata_region =
      align_up(sizeof(IndexHeader) +
               (3 * std::uint64_t{shard_count} + 1) * sizeof(SectionEntry));
  std::vector<unsigned char> zeros(
      static_cast<std::size_t>(impl_->metadata_region), 0);
  emit_through(impl_->file, zeros.data(), zeros.size());
}

ShardedIndexWriter::~ShardedIndexWriter() = default;

void ShardedIndexWriter::append_shard(std::uint32_t prefix,
                                      std::vector<seq::KmerCode> codes,
                                      std::vector<std::uint32_t> counts) {
  Impl& im = *impl_;
  const std::string& path = im.file.target_path();
  if (im.finished) fail(Kind::kBadLayout, path, "writer already finished");
  if (!im.shards.empty() && im.shards.back().prefix >= prefix) {
    fail(Kind::kBadLayout, path, "shard prefixes must be appended ascending");
  }
  if (prefix >= (std::uint64_t{1} << im.shard_bits)) {
    fail(Kind::kBadLayout, path, "shard prefix out of split range");
  }
  if (im.shards.size() >= im.shard_count) {
    fail(Kind::kBadLayout, path, "more shards appended than declared");
  }
  if (codes.empty()) {
    fail(Kind::kBadLayout, path,
         "empty shard appended (omit empty bins and lower shard_count)");
  }
  // Route through from_sorted_counts: it builds the shard's own
  // prefix-bucket table and (in debug builds) re-checks the sorted-
  // unique invariant the concatenation identity rests on.
  kspec::KSpectrum shard = kspec::KSpectrum::from_sorted_counts(
      std::move(codes), std::move(counts), im.build.k);
  const int shift = 2 * im.build.k - im.shard_bits;
  if (!shard.empty() &&
      ((shard.codes().front() >> shift) != prefix ||
       (shard.codes().back() >> shift) != prefix)) {
    fail(Kind::kBadLayout, path,
         "shard codes fall outside the declared prefix range");
  }

  const auto emit_section = [&](SectionId id, const void* data,
                                std::uint64_t bytes) {
    static constexpr unsigned char kZeros[kSectionAlignment] = {};
    const std::uint64_t offset = align_up(im.file.offset());
    emit_through(im.file, kZeros, offset - im.file.offset());
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(id);
    entry.shard_prefix = prefix;
    entry.offset = offset;
    entry.bytes = bytes;
    entry.checksum = fnv1a64(data, static_cast<std::size_t>(bytes));
    emit_through(im.file, data, bytes);
    im.table.push_back(entry);
  };
  emit_section(SectionId::kCodes, shard.codes().data(),
               shard.codes().size_bytes());
  emit_section(SectionId::kCounts, shard.counts().data(),
               shard.counts().size_bytes());
  if (shard.prefix_index_bits() > 0) {
    emit_section(SectionId::kBucketStarts, shard.bucket_starts().data(),
                 shard.bucket_starts().size_bytes());
  }
  ShardEntry row{};
  row.prefix = prefix;
  row.prefix_index_bits =
      static_cast<std::uint32_t>(shard.prefix_index_bits());
  row.distinct = shard.size();
  row.total_instances = shard.total_instances();
  im.shards.push_back(row);
}

std::uint64_t ShardedIndexWriter::finish() {
  Impl& im = *impl_;
  const std::string& path = im.file.target_path();
  if (im.finished) fail(Kind::kBadLayout, path, "writer already finished");
  if (im.shards.size() != im.shard_count) {
    std::ostringstream os;
    os << "finish after " << im.shards.size() << " shards, " << im.shard_count
       << " declared";
    fail(Kind::kBadLayout, path, os.str());
  }
  static constexpr unsigned char kZeros[kSectionAlignment] = {};
  {
    const std::uint64_t offset = align_up(im.file.offset());
    emit_through(im.file, kZeros, offset - im.file.offset());
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(SectionId::kShardTable);
    entry.offset = offset;
    entry.bytes = im.shards.size() * sizeof(ShardEntry);
    entry.checksum = fnv1a64(im.shards.data(),
                             static_cast<std::size_t>(entry.bytes));
    emit_through(im.file, im.shards.data(), entry.bytes);
    im.table.push_back(entry);
  }
  const std::uint64_t file_bytes = align_up(im.file.offset());
  emit_through(im.file, kZeros, file_bytes - im.file.offset());

  IndexHeader header{};
  std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
  header.format_version = kFormatVersionSharded;
  header.header_bytes = sizeof(IndexHeader);
  header.k = static_cast<std::uint32_t>(im.build.k);
  header.flags = im.build.both_strands ? kFlagBothStrands : 0;
  for (const auto& s : im.shards) {
    header.distinct += s.distinct;
    header.total_instances += s.total_instances;
  }
  header.prefix_bits = 0;  // per-shard tables only
  header.section_count = static_cast<std::uint32_t>(im.table.size());
  header.input_reads = im.build.input_reads;
  header.input_bases = im.build.input_bases;
  header.max_read_length = im.build.max_read_length;
  header.endian_tag = kEndianTag;
  header.file_bytes = file_bytes;
  header.shard_count = static_cast<std::uint32_t>(im.shards.size());
  header.shard_bits = static_cast<std::uint32_t>(im.shard_bits);
  header.header_checksum = meta_checksum(header, im.table);

  try {
    im.file.write_at(0, &header, sizeof(header));
    im.file.write_at(sizeof(header), im.table.data(),
                     im.table.size() * sizeof(SectionEntry));
    im.file.commit();
  } catch (const IndexError&) {
    throw;
  } catch (const ngs::Error& e) {
    throw IndexError(Kind::kIo, e.what());
  }
  im.finished = true;
  return header.header_checksum;
}

IndexInfo SpectrumIndex::read_info(const std::string& path) {
  return make_info(read_metadata_from_file(path));
}

SpectrumIndex SpectrumIndex::load(const std::string& path,
                                  const LoadOptions& options) {
  const Metadata meta = read_metadata_from_file(path);
  const IndexHeader& h = meta.header;

  if (h.format_version == kFormatVersionSharded) {
    // Sharded file: validate each shard's section geometry up front,
    // then hand the (unread) payload regions to a lazy view.
    std::vector<ShardRegion> regions;
    regions.reserve(meta.shards.size());
    for (const auto& shard : meta.shards) {
      const SectionEntry& codes_sec = require_shard_section(
          meta, SectionId::kCodes, shard.prefix, path);
      const SectionEntry& counts_sec = require_shard_section(
          meta, SectionId::kCounts, shard.prefix, path);
      check_section(codes_sec, shard.distinct * sizeof(seq::KmerCode), meta,
                    path);
      check_section(counts_sec, shard.distinct * sizeof(std::uint32_t), meta,
                    path);
      ShardRegion region;
      region.prefix = shard.prefix;
      region.prefix_index_bits = shard.prefix_index_bits;
      region.distinct = shard.distinct;
      region.total_instances = shard.total_instances;
      region.codes_offset = codes_sec.offset;
      region.counts_offset = counts_sec.offset;
      if (shard.prefix_index_bits > 0) {
        const SectionEntry& buckets_sec = require_shard_section(
            meta, SectionId::kBucketStarts, shard.prefix, path);
        check_section(buckets_sec,
                      ((std::uint64_t{1} << shard.prefix_index_bits) + 1) *
                          sizeof(std::uint64_t),
                      meta, path);
        region.buckets_offset = buckets_sec.offset;
        region.buckets_bytes = buckets_sec.bytes;
      }
      regions.push_back(region);
    }

    if (options.verify_checksums) verify_sections_streaming(meta, path);

    auto view = std::make_shared<ShardedSpectrumView>(
        path, static_cast<int>(h.k), static_cast<int>(h.shard_bits),
        std::move(regions), options.use_mmap);

    if (options.validate_payload) {
      const int shift = 2 * static_cast<int>(h.k) -
                        static_cast<int>(h.shard_bits);
      for (const auto& shard : meta.shards) {
        const kspec::KSpectrum* s = view->shard(shard.prefix);
        if (s == nullptr || s->size() != shard.distinct) {
          fail(Kind::kInvalidPayload, path,
               "invalid spectrum payload: shard size mismatch");
        }
        if (const auto err = kspec::KSpectrum::validate_sorted_counts(
                s->codes(), s->counts(), static_cast<int>(h.k))) {
          std::ostringstream os;
          os << "invalid spectrum payload in shard " << shard.prefix << ": "
             << *err;
          fail(Kind::kInvalidPayload, path, os.str());
        }
        if ((s->codes().front() >> shift) != shard.prefix ||
            (s->codes().back() >> shift) != shard.prefix) {
          std::ostringstream os;
          os << "invalid spectrum payload: shard " << shard.prefix
             << " holds codes outside its prefix range";
          fail(Kind::kInvalidPayload, path, os.str());
        }
        std::uint64_t total = 0;
        for (const std::uint32_t c : s->counts()) total += c;
        if (total != shard.total_instances) {
          std::ostringstream os;
          os << "invalid spectrum payload: shard " << shard.prefix
             << " counts sum to " << total << " but the shard table "
             << "declares " << shard.total_instances;
          fail(Kind::kInvalidPayload, path, os.str());
        }
        const auto buckets = s->bucket_starts();
        if (!buckets.empty() &&
            (buckets.front() != 0 || buckets.back() != shard.distinct ||
             !std::is_sorted(buckets.begin(), buckets.end()))) {
          std::ostringstream os;
          os << "invalid spectrum payload: shard " << shard.prefix
             << " bucket table does not partition the shard";
          fail(Kind::kInvalidPayload, path, os.str());
        }
      }
    }

    SpectrumIndex index;
    index.path_ = path;
    index.info_ = make_info(meta);
    index.info_.mapped = options.use_mmap;
    index.spectrum_ = kspec::KSpectrum::from_shards(
        view, view->shard_starts(), static_cast<int>(h.shard_bits),
        static_cast<int>(h.k), h.total_instances);
    return index;
  }

  const SectionEntry& codes_sec =
      require_section(meta, SectionId::kCodes, path);
  const SectionEntry& counts_sec =
      require_section(meta, SectionId::kCounts, path);
  check_section(codes_sec, h.distinct * sizeof(seq::KmerCode), meta, path);
  check_section(counts_sec, h.distinct * sizeof(std::uint32_t), meta, path);
  const SectionEntry* buckets_sec = nullptr;
  if (h.prefix_bits > 0) {
    if (h.prefix_bits > 2 * h.k || h.prefix_bits > 63) {
      std::ostringstream os;
      os << "prefix_bits " << h.prefix_bits << " exceeds the 2k-bit key "
         << "width (k=" << h.k << ")";
      fail(Kind::kBadLayout, path, os.str());
    }
    buckets_sec = &require_section(meta, SectionId::kBucketStarts, path);
    check_section(*buckets_sec,
                  ((std::uint64_t{1} << h.prefix_bits) + 1) *
                      sizeof(std::uint64_t),
                  meta, path);
  }

  SpectrumIndex index;
  index.path_ = path;
  index.info_ = make_info(meta);
  auto mapping =
      map_file(path, meta.file_size, options.use_mmap, &index.info_.mapped);

  if (options.verify_checksums) {
    for (const auto& entry : meta.table) {
      const std::uint64_t actual =
          fnv1a64(mapping->data + entry.offset,
                  static_cast<std::size_t>(entry.bytes));
      if (actual != entry.checksum) {
        std::ostringstream os;
        os << "checksum mismatch in section '"
           << section_name(static_cast<SectionId>(entry.id)) << "' (stored "
           << std::hex << entry.checksum << ", computed " << actual
           << ") — the payload is corrupt; rebuild the index";
        fail(Kind::kChecksum, path, os.str());
      }
    }
  }

  const auto codes = std::span<const seq::KmerCode>(
      reinterpret_cast<const seq::KmerCode*>(mapping->data +
                                             codes_sec.offset),
      static_cast<std::size_t>(h.distinct));
  const auto counts = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(mapping->data +
                                             counts_sec.offset),
      static_cast<std::size_t>(h.distinct));
  std::span<const std::uint64_t> buckets;
  if (buckets_sec != nullptr) {
    buckets = std::span<const std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(mapping->data +
                                               buckets_sec->offset),
        static_cast<std::size_t>((std::uint64_t{1} << h.prefix_bits) + 1));
  }

  if (options.validate_payload) {
    if (const auto err = kspec::KSpectrum::validate_sorted_counts(
            codes, counts, static_cast<int>(h.k))) {
      fail(Kind::kInvalidPayload, path, "invalid spectrum payload: " + *err);
    }
    std::uint64_t total = 0;
    for (const std::uint32_t c : counts) total += c;
    if (total != h.total_instances) {
      std::ostringstream os;
      os << "invalid spectrum payload: counts sum to " << total
         << " but the header declares " << h.total_instances
         << " total instances";
      fail(Kind::kInvalidPayload, path, os.str());
    }
    if (!buckets.empty()) {
      // The bucket table must be a monotone partition of [0, distinct].
      if (buckets.front() != 0 || buckets.back() != h.distinct) {
        fail(Kind::kInvalidPayload, path,
             "invalid spectrum payload: bucket table does not span the "
             "code array");
      }
      for (std::size_t b = 1; b < buckets.size(); ++b) {
        if (buckets[b] < buckets[b - 1]) {
          fail(Kind::kInvalidPayload, path,
               "invalid spectrum payload: bucket offsets not monotone");
        }
      }
    }
  }

  index.spectrum_ = kspec::KSpectrum::adopt_external(
      codes, counts, buckets, static_cast<int>(h.k), h.total_instances,
      static_cast<int>(h.prefix_bits), std::move(mapping));
  return index;
}

}  // namespace ngs::index
