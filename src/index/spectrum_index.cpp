#include "index/spectrum_index.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "fault/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NGS_INDEX_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace ngs::index {

namespace {

using Kind = IndexError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& path,
                       const std::string& detail) {
  throw IndexError(kind, path + ": " + detail);
}

[[noreturn]] void fail_errno(const std::string& path,
                             const std::string& action) {
  fail(Kind::kIo, path, action + " failed: " + std::strerror(errno));
}

const char* section_name(SectionId id) {
  switch (id) {
    case SectionId::kCodes: return "codes";
    case SectionId::kCounts: return "counts";
    case SectionId::kBucketStarts: return "bucket_starts";
  }
  return "unknown";
}

/// Header + section-table fingerprint: the header bytes with the
/// checksum field zeroed, chained with the raw table rows. Because the
/// rows embed the per-payload checksums, this value changes whenever
/// any byte of the file changes.
std::uint64_t meta_checksum(IndexHeader header,
                            const std::vector<SectionEntry>& table) {
  header.header_checksum = 0;
  std::uint64_t state = fnv1a64(&header, sizeof(header));
  for (const auto& entry : table) {
    state = fnv1a64(&entry, sizeof(entry), state);
  }
  return state;
}

/// The backing bytes of a loaded index: an mmap (released on
/// destruction) or an owned buffer. Shared with every KSpectrum view
/// through the spectrum keepalive, so unmapping is deferred until the
/// last view is gone.
struct Mapping {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  void* mmap_base = nullptr;  // non-null => munmap on destruction
  std::vector<unsigned char> owned;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
#if NGS_INDEX_POSIX
    if (mmap_base != nullptr) ::munmap(mmap_base, size);
#endif
  }
};

#if NGS_INDEX_POSIX

struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

void write_all(int fd, const void* data, std::size_t n,
               const std::string& path) {
  if (fault::should_fire(fault::sites::kIndexWrite)) {
    fail(Kind::kIo, path, "write failed: injected fault at index.write");
  }
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ::ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_exact_at(int fd, void* data, std::size_t n, std::uint64_t offset,
                   const std::string& path) {
  if (fault::should_fire(fault::sites::kIndexShortRead)) {
    fail(Kind::kTruncated, path,
         "unexpected end of file: injected fault at index.short_read");
  }
  auto* p = static_cast<unsigned char*>(data);
  while (n > 0) {
    const ::ssize_t r = ::pread(fd, p, n, static_cast<::off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "read");
    }
    if (r == 0) fail(Kind::kTruncated, path, "unexpected end of file");
    p += r;
    offset += static_cast<std::uint64_t>(r);
    n -= static_cast<std::size_t>(r);
  }
}

/// Best-effort directory-entry durability after the rename.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

#endif  // NGS_INDEX_POSIX

struct Metadata {
  IndexHeader header;
  std::vector<SectionEntry> table;
  std::uint64_t file_size = 0;
};

/// Validates everything that can be checked without touching payload
/// pages: magic, version, endianness, declared vs actual size, table
/// bounds, and the header checksum.
Metadata parse_metadata(const unsigned char* head, std::size_t head_bytes,
                        std::uint64_t file_size, const std::string& path) {
  Metadata meta;
  meta.file_size = file_size;
  if (file_size < sizeof(IndexHeader) || head_bytes < sizeof(IndexHeader)) {
    std::ostringstream os;
    os << "truncated index: file is " << file_size
       << " bytes, a version-" << kFormatVersion << " header needs "
       << sizeof(IndexHeader);
    fail(Kind::kTruncated, path, os.str());
  }
  std::memcpy(&meta.header, head, sizeof(IndexHeader));
  const IndexHeader& h = meta.header;
  if (std::memcmp(h.magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    fail(Kind::kBadMagic, path,
         "bad magic — not an ngs spectrum index file");
  }
  if (h.format_version != kFormatVersion) {
    std::ostringstream os;
    os << "unsupported index format version " << h.format_version
       << " (this build reads version " << kFormatVersion
       << "; rebuild the index with this binary's ngs-index)";
    fail(Kind::kVersionSkew, path, os.str());
  }
  if (h.endian_tag != kEndianTag) {
    fail(Kind::kEndianMismatch, path,
         "endianness mismatch — the index was written on a host with "
         "different byte order");
  }
  if (h.header_bytes != sizeof(IndexHeader)) {
    std::ostringstream os;
    os << "header size mismatch (" << h.header_bytes << " declared, "
       << sizeof(IndexHeader) << " expected)";
    fail(Kind::kBadLayout, path, os.str());
  }
  if (h.file_bytes != file_size) {
    std::ostringstream os;
    os << "truncated index: header declares " << h.file_bytes
       << " bytes but the file has " << file_size;
    fail(Kind::kTruncated, path, os.str());
  }
  if (h.section_count > 64) {
    std::ostringstream os;
    os << "implausible section count " << h.section_count;
    fail(Kind::kBadLayout, path, os.str());
  }
  const std::uint64_t table_end =
      sizeof(IndexHeader) +
      std::uint64_t{h.section_count} * sizeof(SectionEntry);
  if (table_end > file_size) {
    std::ostringstream os;
    os << "truncated index: section table needs " << table_end
       << " bytes, file has " << file_size;
    fail(Kind::kTruncated, path, os.str());
  }
  if (head_bytes < table_end) {
    fail(Kind::kIo, path, "internal error: metadata read too short");
  }
  meta.table.resize(h.section_count);
  std::memcpy(meta.table.data(), head + sizeof(IndexHeader),
              meta.table.size() * sizeof(SectionEntry));
  const std::uint64_t expect = meta_checksum(meta.header, meta.table);
  if (fault::should_fire(fault::sites::kIndexChecksum)) {
    fail(Kind::kChecksum, path,
         "header checksum mismatch: injected fault at index.checksum");
  }
  if (expect != h.header_checksum) {
    std::ostringstream os;
    os << "header checksum mismatch (stored " << std::hex
       << h.header_checksum << ", computed " << expect
       << ") — the metadata is corrupt";
    fail(Kind::kChecksum, path, os.str());
  }
  return meta;
}

/// Bounds/shape validation of one known section against the header.
void check_section(const SectionEntry& entry, std::uint64_t expected_bytes,
                   const Metadata& meta, const std::string& path) {
  const char* name = section_name(static_cast<SectionId>(entry.id));
  if (entry.offset % kSectionAlignment != 0) {
    std::ostringstream os;
    os << "section '" << name << "' offset " << entry.offset << " is not "
       << kSectionAlignment << "-byte aligned";
    fail(Kind::kBadLayout, path, os.str());
  }
  if (entry.offset > meta.file_size ||
      entry.bytes > meta.file_size - entry.offset) {
    std::ostringstream os;
    os << "truncated index: section '" << name << "' spans ["
       << entry.offset << ", " << entry.offset + entry.bytes
       << ") but the file has only " << meta.file_size << " bytes";
    fail(Kind::kTruncated, path, os.str());
  }
  if (entry.bytes != expected_bytes) {
    std::ostringstream os;
    os << "section '" << name << "' holds " << entry.bytes
       << " bytes where the header implies " << expected_bytes;
    fail(Kind::kBadLayout, path, os.str());
  }
}

const SectionEntry* find_section(const Metadata& meta, SectionId id) {
  for (const auto& entry : meta.table) {
    if (entry.id == static_cast<std::uint32_t>(id)) return &entry;
  }
  return nullptr;
}

const SectionEntry& require_section(const Metadata& meta, SectionId id,
                                    const std::string& path) {
  const auto* entry = find_section(meta, id);
  if (entry == nullptr) {
    fail(Kind::kBadLayout, path,
         std::string("missing required section '") + section_name(id) + "'");
  }
  return *entry;
}

IndexInfo make_info(const Metadata& meta) {
  IndexInfo info;
  const IndexHeader& h = meta.header;
  info.format_version = h.format_version;
  info.build.k = static_cast<int>(h.k);
  info.build.both_strands = (h.flags & kFlagBothStrands) != 0;
  info.build.input_reads = h.input_reads;
  info.build.input_bases = h.input_bases;
  info.build.max_read_length = h.max_read_length;
  info.distinct = h.distinct;
  info.total_instances = h.total_instances;
  info.prefix_bits = static_cast<int>(h.prefix_bits);
  info.file_bytes = h.file_bytes;
  info.checksum = h.header_checksum;
  for (const auto& entry : meta.table) {
    info.sections.push_back({static_cast<SectionId>(entry.id), entry.offset,
                             entry.bytes, entry.checksum});
  }
  return info;
}

Metadata read_metadata_from_file(const std::string& path) {
  if (fault::should_fire(fault::sites::kIndexOpen)) {
    fail(Kind::kIo, path, "open failed: injected fault at index.open");
  }
#if NGS_INDEX_POSIX
  FdGuard fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) fail_errno(path, "open");
  struct ::stat st{};
  if (::fstat(fd.fd, &st) != 0) fail_errno(path, "stat");
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  // One bounded read covers the header and the (validated-size) table.
  std::vector<unsigned char> head(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          file_size, sizeof(IndexHeader) + 64 * sizeof(SectionEntry))));
  if (!head.empty()) read_exact_at(fd.fd, head.data(), head.size(), 0, path);
  return parse_metadata(head.data(), head.size(), file_size, path);
#else
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(Kind::kIo, path, "open failed");
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0);
  std::vector<unsigned char> head(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          file_size, sizeof(IndexHeader) + 64 * sizeof(SectionEntry))));
  is.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  if (!is) fail(Kind::kIo, path, "read failed");
  return parse_metadata(head.data(), head.size(), file_size, path);
#endif
}

std::shared_ptr<Mapping> map_file(const std::string& path,
                                  std::uint64_t file_size, bool use_mmap,
                                  bool* mapped) {
  auto mapping = std::make_shared<Mapping>();
  mapping->size = static_cast<std::size_t>(file_size);
  *mapped = false;
#if NGS_INDEX_POSIX
  FdGuard fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) fail_errno(path, "open");
  // Injected mmap failure exercises the owned-buffer fallback: the load
  // must still succeed, just without zero-copy pages.
  if (fault::should_fire(fault::sites::kIndexMmap)) use_mmap = false;
  if (use_mmap && file_size > 0) {
    void* base = ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE,
                        fd.fd, 0);
    if (base != MAP_FAILED) {
      mapping->mmap_base = base;
      mapping->data = static_cast<const unsigned char*>(base);
      *mapped = true;
      return mapping;
    }
    // Fall through to the owned-buffer path on any mmap failure.
  }
  mapping->owned.resize(mapping->size);
  if (!mapping->owned.empty()) {
    read_exact_at(fd.fd, mapping->owned.data(), mapping->owned.size(), 0,
                  path);
  }
  mapping->data = mapping->owned.data();
  return mapping;
#else
  (void)use_mmap;
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(Kind::kIo, path, "open failed");
  mapping->owned.resize(mapping->size);
  is.read(reinterpret_cast<char*>(mapping->owned.data()),
          static_cast<std::streamsize>(mapping->owned.size()));
  if (!is) fail(Kind::kIo, path, "read failed");
  mapping->data = mapping->owned.data();
  return mapping;
#endif
}

}  // namespace

std::uint64_t write_spectrum_index(const std::string& path,
                                   const kspec::KSpectrum& spectrum,
                                   const IndexBuildInfo& build) {
  if (build.k != spectrum.k()) {
    fail(Kind::kBadLayout, path,
         "build info k does not match the spectrum's k");
  }
  const auto codes = spectrum.codes();
  const auto counts = spectrum.counts();
  const auto buckets = spectrum.bucket_starts();
  const int prefix_bits = spectrum.prefix_index_bits();

  std::vector<SectionEntry> table;
  const auto add_section = [&table](SectionId id, const void* data,
                                    std::uint64_t bytes) {
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(id);
    entry.bytes = bytes;
    entry.checksum = fnv1a64(data, static_cast<std::size_t>(bytes));
    table.push_back(entry);
  };
  add_section(SectionId::kCodes, codes.data(), codes.size_bytes());
  add_section(SectionId::kCounts, counts.data(), counts.size_bytes());
  if (prefix_bits > 0) {
    add_section(SectionId::kBucketStarts, buckets.data(),
                buckets.size_bytes());
  }
  std::uint64_t offset = align_up(sizeof(IndexHeader) +
                                  table.size() * sizeof(SectionEntry));
  for (auto& entry : table) {
    entry.offset = offset;
    offset = align_up(offset + entry.bytes);
  }

  IndexHeader header{};
  std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
  header.format_version = kFormatVersion;
  header.header_bytes = sizeof(IndexHeader);
  header.k = static_cast<std::uint32_t>(spectrum.k());
  header.flags = build.both_strands ? kFlagBothStrands : 0;
  header.distinct = spectrum.size();
  header.total_instances = spectrum.total_instances();
  header.prefix_bits = static_cast<std::uint32_t>(prefix_bits);
  header.section_count = static_cast<std::uint32_t>(table.size());
  header.input_reads = build.input_reads;
  header.input_bases = build.input_bases;
  header.max_read_length = build.max_read_length;
  header.endian_tag = kEndianTag;
  header.file_bytes = offset;
  header.header_checksum = meta_checksum(header, table);

#if NGS_INDEX_POSIX
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  FdGuard fd{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
  if (fd.fd < 0) fail_errno(tmp, "open");
  try {
    static constexpr unsigned char kZeros[kSectionAlignment] = {};
    std::uint64_t written = 0;
    const auto emit = [&](const void* data, std::uint64_t bytes) {
      write_all(fd.fd, data, static_cast<std::size_t>(bytes), tmp);
      written += bytes;
    };
    emit(&header, sizeof(header));
    emit(table.data(), table.size() * sizeof(SectionEntry));
    const std::span<const unsigned char> payloads[] = {
        {reinterpret_cast<const unsigned char*>(codes.data()),
         codes.size_bytes()},
        {reinterpret_cast<const unsigned char*>(counts.data()),
         counts.size_bytes()},
        {reinterpret_cast<const unsigned char*>(buckets.data()),
         buckets.size_bytes()},
    };
    for (std::size_t i = 0; i < table.size(); ++i) {
      emit(kZeros, table[i].offset - written);  // alignment padding
      emit(payloads[i].data(), payloads[i].size());
    }
    emit(kZeros, header.file_bytes - written);  // trailing padding
    if (::fsync(fd.fd) != 0) fail_errno(tmp, "fsync");
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd.fd);
  fd.fd = -1;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno(path, "rename");
  }
  fsync_parent_dir(path);
#else
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) fail(Kind::kIo, tmp, "open failed");
    static constexpr char kZeros[kSectionAlignment] = {};
    std::uint64_t written = 0;
    const auto emit = [&](const void* data, std::uint64_t bytes) {
      os.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
      written += bytes;
    };
    emit(&header, sizeof(header));
    emit(table.data(), table.size() * sizeof(SectionEntry));
    const void* payload_ptrs[] = {codes.data(), counts.data(),
                                  buckets.data()};
    const std::uint64_t payload_bytes[] = {
        codes.size_bytes(), counts.size_bytes(), buckets.size_bytes()};
    for (std::size_t i = 0; i < table.size(); ++i) {
      emit(kZeros, table[i].offset - written);
      emit(payload_ptrs[i], payload_bytes[i]);
    }
    emit(kZeros, header.file_bytes - written);
    if (!os) fail(Kind::kIo, tmp, "write failed");
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(Kind::kIo, path, "rename failed");
  }
#endif
  return header.header_checksum;
}

IndexInfo SpectrumIndex::read_info(const std::string& path) {
  return make_info(read_metadata_from_file(path));
}

SpectrumIndex SpectrumIndex::load(const std::string& path,
                                  const LoadOptions& options) {
  const Metadata meta = read_metadata_from_file(path);
  const IndexHeader& h = meta.header;

  const SectionEntry& codes_sec =
      require_section(meta, SectionId::kCodes, path);
  const SectionEntry& counts_sec =
      require_section(meta, SectionId::kCounts, path);
  check_section(codes_sec, h.distinct * sizeof(seq::KmerCode), meta, path);
  check_section(counts_sec, h.distinct * sizeof(std::uint32_t), meta, path);
  const SectionEntry* buckets_sec = nullptr;
  if (h.prefix_bits > 0) {
    if (h.prefix_bits > 2 * h.k || h.prefix_bits > 63) {
      std::ostringstream os;
      os << "prefix_bits " << h.prefix_bits << " exceeds the 2k-bit key "
         << "width (k=" << h.k << ")";
      fail(Kind::kBadLayout, path, os.str());
    }
    buckets_sec = &require_section(meta, SectionId::kBucketStarts, path);
    check_section(*buckets_sec,
                  ((std::uint64_t{1} << h.prefix_bits) + 1) *
                      sizeof(std::uint64_t),
                  meta, path);
  }

  SpectrumIndex index;
  index.path_ = path;
  index.info_ = make_info(meta);
  auto mapping =
      map_file(path, meta.file_size, options.use_mmap, &index.info_.mapped);

  if (options.verify_checksums) {
    for (const auto& entry : meta.table) {
      const std::uint64_t actual =
          fnv1a64(mapping->data + entry.offset,
                  static_cast<std::size_t>(entry.bytes));
      if (actual != entry.checksum) {
        std::ostringstream os;
        os << "checksum mismatch in section '"
           << section_name(static_cast<SectionId>(entry.id)) << "' (stored "
           << std::hex << entry.checksum << ", computed " << actual
           << ") — the payload is corrupt; rebuild the index";
        fail(Kind::kChecksum, path, os.str());
      }
    }
  }

  const auto codes = std::span<const seq::KmerCode>(
      reinterpret_cast<const seq::KmerCode*>(mapping->data +
                                             codes_sec.offset),
      static_cast<std::size_t>(h.distinct));
  const auto counts = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(mapping->data +
                                             counts_sec.offset),
      static_cast<std::size_t>(h.distinct));
  std::span<const std::uint64_t> buckets;
  if (buckets_sec != nullptr) {
    buckets = std::span<const std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(mapping->data +
                                               buckets_sec->offset),
        static_cast<std::size_t>((std::uint64_t{1} << h.prefix_bits) + 1));
  }

  if (options.validate_payload) {
    if (const auto err = kspec::KSpectrum::validate_sorted_counts(
            codes, counts, static_cast<int>(h.k))) {
      fail(Kind::kInvalidPayload, path, "invalid spectrum payload: " + *err);
    }
    std::uint64_t total = 0;
    for (const std::uint32_t c : counts) total += c;
    if (total != h.total_instances) {
      std::ostringstream os;
      os << "invalid spectrum payload: counts sum to " << total
         << " but the header declares " << h.total_instances
         << " total instances";
      fail(Kind::kInvalidPayload, path, os.str());
    }
    if (!buckets.empty()) {
      // The bucket table must be a monotone partition of [0, distinct].
      if (buckets.front() != 0 || buckets.back() != h.distinct) {
        fail(Kind::kInvalidPayload, path,
             "invalid spectrum payload: bucket table does not span the "
             "code array");
      }
      for (std::size_t b = 1; b < buckets.size(); ++b) {
        if (buckets[b] < buckets[b - 1]) {
          fail(Kind::kInvalidPayload, path,
               "invalid spectrum payload: bucket offsets not monotone");
        }
      }
    }
  }

  index.spectrum_ = kspec::KSpectrum::adopt_external(
      codes, counts, buckets, static_cast<int>(h.k), h.total_instances,
      static_cast<int>(h.prefix_bits), std::move(mapping));
  return index;
}

}  // namespace ngs::index
