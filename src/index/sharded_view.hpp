#pragma once
// Lazy query facade over a version-2 sharded spectrum index: the
// kspec::SpectrumShardSource behind KSpectrum::from_shards. Each shard's
// sections are mapped (or, when mmap is declined/unavailable/fails, read
// into owned buffers — byte-identical results either way) on the first
// query that touches the shard's prefix range, under a per-shard mutex
// with a lock-free fast path for already-materialized shards. A
// correction pass that only ever queries a fraction of the key space
// therefore only ever pages in that fraction of the index.
//
// The view keeps the index file open for its whole lifetime and owns
// every materialized shard; KSpectrum::from_shards holds it via
// shared_ptr, so spectra handed to correctors keep the file alive.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kspec/kspectrum.hpp"

namespace ngs::index {

/// Where one shard's payload lives in the file (offsets are
/// kSectionAlignment-aligned by construction; buckets_bytes == 0 when
/// the shard has no embedded prefix-bucket table).
struct ShardRegion {
  std::uint32_t prefix = 0;
  std::uint32_t prefix_index_bits = 0;
  std::uint64_t distinct = 0;
  std::uint64_t total_instances = 0;
  std::uint64_t codes_offset = 0;
  std::uint64_t counts_offset = 0;
  std::uint64_t buckets_offset = 0;
  std::uint64_t buckets_bytes = 0;
};

class ShardedSpectrumView : public kspec::SpectrumShardSource {
 public:
  /// `shards` ascending by prefix, each prefix < 2^shard_bits. The file
  /// is opened here (and stays open); shard payloads are not touched
  /// until queried.
  ShardedSpectrumView(std::string path, int k, int shard_bits,
                      std::vector<ShardRegion> shards, bool use_mmap);
  ~ShardedSpectrumView() override;

  /// Thread-safe lazy materialization; nullptr for an empty prefix bin.
  /// Throws IndexError(kIo) if the shard cannot be read.
  const kspec::KSpectrum* shard(std::uint32_t prefix) const override;

  /// Shards materialized so far (telemetry / laziness tests).
  std::size_t shards_materialized() const noexcept {
    return materialized_.load(std::memory_order_relaxed);
  }

  /// Cumulative distinct-entry offsets over all 2^shard_bits prefixes
  /// (the shard_starts table KSpectrum::from_shards wants).
  std::vector<std::uint64_t> shard_starts() const;

  int shard_bits() const noexcept { return shard_bits_; }
  int k() const noexcept { return k_; }

 private:
  struct Slot;
  void materialize(Slot& slot, const ShardRegion& region) const;

  std::string path_;
  int k_ = 0;
  int shard_bits_ = 0;
  bool use_mmap_ = true;
  int fd_ = -1;  // POSIX; -1 elsewhere (owned reads reopen the path)
  std::vector<ShardRegion> shards_;
  /// Indexed by prefix: the shard's row in shards_, or -1 (empty bin).
  std::vector<std::int32_t> region_of_prefix_;
  mutable std::vector<std::unique_ptr<Slot>> slots_;  // indexed by prefix
  mutable std::atomic<std::size_t> materialized_{0};
};

}  // namespace ngs::index
