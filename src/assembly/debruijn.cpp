#include "assembly/debruijn.hpp"

#include <algorithm>
#include <unordered_set>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"

namespace ngs::assembly {
namespace {

/// Prefix (k-1)-mer of a k-mer edge.
seq::KmerCode edge_prefix(seq::KmerCode kmer) { return kmer >> 2; }

/// Suffix (k-1)-mer of a k-mer edge.
seq::KmerCode edge_suffix(seq::KmerCode kmer, int k) {
  return kmer & ((seq::KmerCode{1} << (2 * (k - 1))) - 1);
}

}  // namespace

DeBruijnGraph DeBruijnGraph::build(const seq::ReadSet& reads,
                                   const DeBruijnParams& params) {
  DeBruijnGraph g;
  g.params_ = params;
  const auto full =
      kspec::KSpectrum::build(reads, params.k, /*both_strands=*/true);
  std::vector<seq::KmerCode> solid;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full.count_at(i) >= params.min_kmer_count) {
      // from_codes re-counts; replicate multiplicity 1 (edges are a set).
      solid.push_back(full.code_at(i));
    }
  }
  g.solid_ = kspec::KSpectrum::from_codes(std::move(solid), params.k);
  return g;
}

int DeBruijnGraph::out_degree(seq::KmerCode node) const {
  int degree = 0;
  for (std::uint8_t b = 0; b < 4; ++b) {
    if (solid_.contains((node << 2) | b)) ++degree;
  }
  return degree;
}

int DeBruijnGraph::in_degree(seq::KmerCode node) const {
  const int k = params_.k;
  int degree = 0;
  for (std::uint8_t b = 0; b < 4; ++b) {
    const seq::KmerCode edge =
        (static_cast<seq::KmerCode>(b) << (2 * (k - 1))) | node;
    if (solid_.contains(edge)) ++degree;
  }
  return degree;
}

std::vector<std::string> DeBruijnGraph::unitigs() const {
  const int k = params_.k;
  const std::size_t m = solid_.size();
  std::vector<bool> visited(m, false);

  auto is_branch_node = [&](seq::KmerCode node) {
    return out_degree(node) != 1 || in_degree(node) != 1;
  };

  std::vector<std::string> out;
  std::unordered_set<std::string> seen;

  auto walk_from = [&](std::size_t edge_idx) {
    // Extend the edge chain rightward while nodes are non-branching.
    std::string contig = seq::decode_kmer(solid_.code_at(edge_idx), k);
    visited[edge_idx] = true;
    seq::KmerCode node = edge_suffix(solid_.code_at(edge_idx), k);
    while (!is_branch_node(node)) {
      // Unique outgoing edge.
      seq::KmerCode next_edge = 0;
      bool found = false;
      for (std::uint8_t b = 0; b < 4 && !found; ++b) {
        const seq::KmerCode cand = (node << 2) | b;
        if (solid_.contains(cand)) {
          next_edge = cand;
          found = true;
        }
      }
      if (!found) break;
      const auto idx = static_cast<std::size_t>(solid_.index_of(next_edge));
      if (visited[idx]) break;  // cycle closure
      visited[idx] = true;
      contig.push_back(
          seq::code_to_base(static_cast<std::uint8_t>(next_edge & 3u)));
      node = edge_suffix(next_edge, k);
    }
    // Deduplicate across strands by canonical form.
    const std::string rc = seq::reverse_complement(contig);
    const std::string& canon = contig <= rc ? contig : rc;
    if (seen.insert(canon).second) out.push_back(canon);
  };

  // Pass 1: start walks at edges leaving branch nodes (unitig starts).
  for (std::size_t i = 0; i < m; ++i) {
    if (!visited[i] && is_branch_node(edge_prefix(solid_.code_at(i)))) {
      walk_from(i);
    }
  }
  // Pass 2: leftover edges belong to simple cycles; walk from anywhere.
  for (std::size_t i = 0; i < m; ++i) {
    if (!visited[i]) walk_from(i);
  }
  return out;
}

AssemblyStats assembly_stats(const std::vector<std::string>& contigs,
                             std::size_t min_length) {
  AssemblyStats stats;
  std::vector<std::uint64_t> lengths;
  for (const auto& c : contigs) {
    if (c.size() < min_length) continue;
    lengths.push_back(c.size());
  }
  stats.num_contigs = lengths.size();
  for (const auto len : lengths) {
    stats.total_length += len;
    stats.max_length = std::max(stats.max_length, len);
  }
  std::sort(lengths.rbegin(), lengths.rend());
  std::uint64_t running = 0;
  for (const auto len : lengths) {
    running += len;
    if (running * 2 >= stats.total_length) {
      stats.n50 = len;
      break;
    }
  }
  return stats;
}

AssemblyEval evaluate_contigs(const std::vector<std::string>& contigs,
                              std::string_view genome, int k) {
  const auto genome_spec =
      kspec::KSpectrum::build_from_sequence(genome, k, /*both_strands=*/true);
  std::unordered_set<seq::KmerCode> covered;
  AssemblyEval eval;
  std::uint64_t contig_kmers = 0, good = 0;
  std::vector<seq::KmerCode> codes;
  for (const auto& c : contigs) {
    codes.clear();
    seq::extract_kmer_codes(c, k, codes);
    for (const seq::KmerCode code : codes) {
      ++contig_kmers;
      if (genome_spec.contains(code)) {
        ++good;
        covered.insert(code);
        covered.insert(seq::reverse_complement(code, k));
      } else {
        ++eval.spurious_contig_kmers;
      }
    }
  }
  eval.contig_kmer_accuracy =
      contig_kmers == 0
          ? 0.0
          : static_cast<double>(good) / static_cast<double>(contig_kmers);
  eval.genome_kmers_covered =
      genome_spec.size() == 0
          ? 0.0
          : static_cast<double>(covered.size()) /
                static_cast<double>(genome_spec.size());
  return eval;
}

}  // namespace ngs::assembly
