#pragma once
// De Bruijn graph substrate (Chapter 1): the paper motivates error
// correction as a pre-assembly step — spurious kmers inflate the graph
// and cause mis-assemblies — and lists "improvement of assembly post-
// correction" among the validation measures used by prior work. This
// module provides that validation instrument: a kmer de Bruijn graph
// with solid-kmer filtering, maximal non-branching path (unitig)
// extraction, and reference-based assembly metrics.
//
// Graph model: nodes are (k-1)-mers, every solid kmer is a directed edge
// prefix -> suffix. Both strands of the reads contribute, so each unitig
// appears in both orientations and is deduplicated canonically.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "seq/read.hpp"

namespace ngs::assembly {

struct DeBruijnParams {
  int k = 21;
  /// Kmers observed fewer times are dropped ("weak" in SAP terms).
  std::uint32_t min_kmer_count = 2;
};

class DeBruijnGraph {
 public:
  static DeBruijnGraph build(const seq::ReadSet& reads,
                             const DeBruijnParams& params);

  int k() const noexcept { return params_.k; }
  std::size_t num_edges() const noexcept { return solid_.size(); }

  /// Maximal non-branching paths, deduplicated across strands
  /// (canonical form). Each unitig is at least k bases.
  std::vector<std::string> unitigs() const;

  /// Out-neighbors (extension bases) of a (k-1)-mer node.
  int out_degree(seq::KmerCode node) const;
  int in_degree(seq::KmerCode node) const;

 private:
  DeBruijnParams params_;
  kspec::KSpectrum solid_;  // solid kmers = edges (k-spectrum order)
};

/// Contig-length statistics (N50 computed over contigs >= min_length).
struct AssemblyStats {
  std::size_t num_contigs = 0;
  std::uint64_t total_length = 0;
  std::uint64_t n50 = 0;
  std::uint64_t max_length = 0;
};

AssemblyStats assembly_stats(const std::vector<std::string>& contigs,
                             std::size_t min_length = 0);

/// Reference-based evaluation: fraction of distinct genome kmers
/// recovered by the contigs, and fraction of contig kmers that belong to
/// the genome (1 - spurious rate).
struct AssemblyEval {
  double genome_kmers_covered = 0.0;
  double contig_kmer_accuracy = 0.0;
  std::uint64_t spurious_contig_kmers = 0;
};

AssemblyEval evaluate_contigs(const std::vector<std::string>& contigs,
                              std::string_view genome, int k);

}  // namespace ngs::assembly
