#pragma once
// Sketch-based read similarity (Sec. 4.3.1, adapted from Broder et al.):
// every read is converted to the set of 64-bit hashes of its canonical
// kmers (canonicalization makes strand orientation irrelevant); the
// round-l sketch keeps hashes congruent to l mod M. The similarity of
// two reads is |H_i n H_j| / min(|H_i|, |H_j|) — the min-normalization
// captures containment (a read that is a substring of another scores 1).

#include <cstdint>
#include <string_view>
#include <vector>

#include "seq/read.hpp"

namespace ngs::closet {

/// Sorted distinct canonical-kmer hashes of a read.
std::vector<std::uint64_t> kmer_hashes(std::string_view bases, int k);

/// The round-l sketch: elements of `hashes` with h % M == l.
std::vector<std::uint64_t> sketch_of(const std::vector<std::uint64_t>& hashes,
                                     std::uint64_t M, std::uint64_t l);

/// |a n b| for sorted vectors.
std::size_t intersection_size(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b);

/// Similarity |a n b| / min(|a|, |b|); 0 when either set is empty.
double set_similarity(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);

/// Banded global alignment identity (an alternative user-supplied F for
/// edge validation): fraction of matching columns in the best alignment
/// of `a` against `b` within the band, normalized by the shorter length.
/// O(min(|a|,|b|) * band).
double banded_alignment_identity(std::string_view a, std::string_view b,
                                 int band = 16);

}  // namespace ngs::closet
