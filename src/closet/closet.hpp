#pragma once
// CLOSET (CLoud Open SequencE clusTering, Chapter 4): metagenomic read
// clustering via sketching + incremental maximal quasi-clique
// enumeration, expressed as MapReduce tasks over the mini engine.
//
// Phase I (Tasks 1-5): per sketch round l = 0..rounds-1,
//   Task 1 groups reads by shared sketch hash (groups larger than Cmax
//          are deferred — high-frequency kmers are uninformative),
//   Task 2 generates candidate pairs from the groups and screens them by
//          sketch similarity >= Cmin,
//   Task 3 deduplicates candidates across rounds,
//   Tasks 4-5 validate each candidate with the full similarity function F
//          (the standalone kmer-set similarity, or banded alignment).
//
// Phase II (Tasks 6-8), per decreasing threshold t_k:
//   Task 6 filters validated edges at t_k (incremental: only new edges),
//   Task 7 groups clusters by shared vertex and proposes merges that keep
//          edge density >= gamma (a gamma-quasi-clique),
//   Task 8 applies proposals and deduplicates clusters by vertex set;
//   iterate to a fixed point. Clusters may overlap (a read may sit in
//   several quasi-cliques), which is the model's answer to ambiguous
//   similarity: see Sec. 4.1.

#include <cstdint>
#include <vector>

#include "mapreduce/job.hpp"
#include "seq/read.hpp"
#include "util/timer.hpp"

namespace ngs::closet {

struct ClosetParams {
  int k = 15;
  std::uint64_t sketch_mod = 8;  // M: sketch keeps ~1/M of the kmers
  int sketch_rounds = 3;         // l iterations (Sec. 4.5.2 uses 3)
  /// Defer sketch groups larger than this (high-frequency kmers shared by
  /// too many reads cost O(group^2) pair generation without
  /// discriminating). Must exceed the deepest within-taxon read depth or
  /// abundant taxa lose their candidate pairs entirely.
  std::uint32_t cmax = 512;
  double cmin = 0.6;             // candidate screening similarity
  double gamma = 2.0 / 3.0;      // quasi-clique density
  std::vector<double> thresholds{0.95, 0.92, 0.90};  // decreasing t_k
  int max_merge_iterations = 12;
  std::size_t max_clusters_per_vertex = 16;  // cap on Task 7 pair fan-out
  bool validate_with_alignment = false;      // use banded alignment as F
  mapreduce::JobConfig job;
};

struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double score = 0.0;
};

/// A (possibly overlapping) cluster: a gamma-quasi-clique. Density is
/// measured on the subgraph induced by `verts` in the level's edge set
/// (the definition of Sec. 4.2); `edge_count` caches that induced count.
struct Cluster {
  std::vector<std::uint32_t> verts;  // sorted read ids
  std::uint64_t edge_count = 0;      // induced edges at snapshot time

  double density() const noexcept {
    const double n = static_cast<double>(verts.size());
    return n < 2 ? 1.0
                 : static_cast<double>(edge_count) / (n * (n - 1.0) / 2.0);
  }
};

struct LevelResult {
  double threshold = 0.0;
  std::uint64_t edges_active = 0;       // edges with score >= threshold
  std::uint64_t clusters_processed = 0; // cluster records through Task 7
  std::uint64_t resulting_clusters = 0; // final clusters (|V| >= 2)
  std::vector<Cluster> clusters;
};

struct ClosetResult {
  std::uint64_t predicted_pair_records = 0;  // Task 2 pair emissions
  std::uint64_t unique_candidate_pairs = 0;  // after Task 3 dedup
  std::uint64_t confirmed_edges = 0;         // after validation
  std::vector<Edge> edges;
  std::vector<LevelResult> levels;
  util::StageTimes times;
  mapreduce::JobCounters counters;
};

inline std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

class Closet {
 public:
  explicit Closet(ClosetParams params);

  const ClosetParams& params() const noexcept { return params_; }

  /// Runs the full pipeline.
  ClosetResult run(const seq::ReadSet& reads) const;

  /// Converts (possibly overlapping) clusters to a hard partition for
  /// ARI: each read joins its largest containing cluster; reads in no
  /// cluster become singletons. Labels are arbitrary but consistent.
  static std::vector<std::uint32_t> to_partition(
      const std::vector<Cluster>& clusters, std::size_t num_reads);

 private:
  ClosetParams params_;
};

}  // namespace ngs::closet
