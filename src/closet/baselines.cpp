#include "closet/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "closet/similarity.hpp"

namespace ngs::closet {
namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<std::uint32_t> single_linkage_labels(
    const std::vector<Edge>& edges, double threshold,
    std::size_t num_reads) {
  DisjointSets sets(num_reads);
  for (const Edge& e : edges) {
    if (e.score >= threshold) sets.unite(e.a, e.b);
  }
  std::vector<std::uint32_t> labels(num_reads);
  for (std::uint32_t i = 0; i < num_reads; ++i) labels[i] = sets.find(i);
  return labels;
}

std::vector<std::uint32_t> cdhit_labels(const seq::ReadSet& reads,
                                        const CdHitParams& params) {
  const std::size_t n = reads.size();
  // Precompute hash sets once; sort read indices by decreasing length.
  std::vector<std::vector<std::uint64_t>> hashes(n);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = kmer_hashes(reads.reads[i].bases, params.k);
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return reads.reads[a].bases.size() >
                            reads.reads[b].bases.size();
                   });

  std::vector<std::uint32_t> labels(n, 0);
  std::vector<bool> assigned(n, false);
  for (const std::uint32_t rep : order) {
    if (assigned[rep]) continue;
    assigned[rep] = true;
    labels[rep] = rep;
    for (const std::uint32_t other : order) {
      if (assigned[other]) continue;
      if (set_similarity(hashes[rep], hashes[other]) >= params.threshold) {
        assigned[other] = true;
        labels[other] = rep;
      }
    }
  }
  return labels;
}

}  // namespace ngs::closet
