#include "closet/closet.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "closet/similarity.hpp"
#include "util/thread_pool.hpp"

namespace ngs::closet {
namespace {

using mapreduce::Emitter;
using mapreduce::Job;

/// Union of two sorted vectors.
template <typename T>
std::vector<T> sorted_union(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::uint64_t vertex_set_hash(const std::vector<std::uint32_t>& verts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint32_t v : verts) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Closet::Closet(ClosetParams params) : params_(std::move(params)) {}

ClosetResult Closet::run(const seq::ReadSet& reads) const {
  ClosetResult result;
  const std::size_t n = reads.size();

  // ---- Kmer hash sets (shared by sketching and validation).
  std::vector<std::vector<std::uint64_t>> hashes(n);
  {
    util::ScopedStageTimer timer(result.times, "sketching");
    util::default_pool().parallel_for(0, n, [&](std::size_t i) {
      hashes[i] = kmer_hashes(reads.reads[i].bases, params_.k);
    });
  }

  // ---- Phase I, Tasks 1-2 per round: candidate pair generation.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> all_candidates;
  {
    util::ScopedStageTimer timer(result.times, "sketching");
    for (int round = 0; round < params_.sketch_rounds; ++round) {
      // Round sketches.
      std::vector<std::vector<std::uint64_t>> sketches(n);
      util::default_pool().parallel_for(0, n, [&](std::size_t i) {
        sketches[i] = sketch_of(hashes[i], params_.sketch_mod,
                                static_cast<std::uint64_t>(round));
      });

      // Task 1: group read ids by shared sketch hash.
      std::vector<std::pair<std::uint32_t, std::uint8_t>> input;
      input.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) input.emplace_back(i, 0);
      const auto cmax = params_.cmax;
      auto groups =
          Job<std::uint32_t, std::uint8_t, std::uint64_t, std::uint32_t,
              std::uint64_t, std::vector<std::uint32_t>>::
              run(
                  input,
                  [&](const std::uint32_t& rid, const std::uint8_t&,
                      Emitter<std::uint64_t, std::uint32_t>& out) {
                    for (const std::uint64_t h : sketches[rid]) {
                      out.emit(h, rid);
                    }
                  },
                  [&](const std::uint64_t& h,
                      std::span<const std::uint32_t> rids,
                      Emitter<std::uint64_t, std::vector<std::uint32_t>>&
                          out) {
                    if (rids.size() > 1 && rids.size() <= cmax) {
                      out.emit(h, std::vector<std::uint32_t>(rids.begin(),
                                                             rids.end()));
                    }
                    // Larger groups are deferred (high-frequency kmers do
                    // not differentiate organisms); their contribution to
                    // the similarity count is restored by the full-set
                    // validation of Task 5.
                  },
                  params_.job, &result.counters);

      // Task 2: pair generation + sketch-similarity screening.
      const double cmin = params_.cmin;
      mapreduce::JobCounters task2;
      auto candidates =
          Job<std::uint64_t, std::vector<std::uint32_t>, std::uint64_t,
              std::uint8_t, std::uint64_t, std::uint8_t>::
              run(
                  groups,
                  [&](const std::uint64_t&,
                      const std::vector<std::uint32_t>& rids,
                      Emitter<std::uint64_t, std::uint8_t>& out) {
                    for (std::size_t x = 0; x < rids.size(); ++x) {
                      for (std::size_t y = x + 1; y < rids.size(); ++y) {
                        if (rids[x] != rids[y]) {
                          out.emit(pair_key(rids[x], rids[y]), 1);
                        }
                      }
                    }
                  },
                  [&](const std::uint64_t& key, std::span<const std::uint8_t>,
                      Emitter<std::uint64_t, std::uint8_t>& out) {
                    const auto a = static_cast<std::uint32_t>(key >> 32);
                    const auto b = static_cast<std::uint32_t>(key);
                    const double j = set_similarity(sketches[a], sketches[b]);
                    if (j >= cmin) out.emit(key, 1);
                  },
                  params_.job, &task2);
      result.predicted_pair_records += task2.map_output_records;
      result.counters.merge(task2);
      for (const auto& kv : candidates) all_candidates.push_back(kv);
    }
  }

  // ---- Task 3: deduplicate candidates across rounds.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> unique_pairs;
  {
    util::ScopedStageTimer timer(result.times, "sketching");
    unique_pairs =
        Job<std::uint64_t, std::uint8_t, std::uint64_t, std::uint8_t,
            std::uint64_t, std::uint8_t>::
            run(
                all_candidates,
                [](const std::uint64_t& key, const std::uint8_t&,
                   Emitter<std::uint64_t, std::uint8_t>& out) {
                  out.emit(key, 1);
                },
                [](const std::uint64_t& key, std::span<const std::uint8_t>,
                   Emitter<std::uint64_t, std::uint8_t>& out) {
                  out.emit(key, 1);
                },
                params_.job, &result.counters);
    result.unique_candidate_pairs = unique_pairs.size();
  }

  // ---- Tasks 4-5: edge validation with the full similarity function.
  {
    util::ScopedStageTimer timer(result.times, "validation");
    const double cmin = params_.cmin;
    const bool use_alignment = params_.validate_with_alignment;
    auto validated =
        Job<std::uint64_t, std::uint8_t, std::uint64_t, double,
            std::uint64_t, double>::
            run(
                unique_pairs,
                [&](const std::uint64_t& key, const std::uint8_t&,
                    Emitter<std::uint64_t, double>& out) {
                  const auto a = static_cast<std::uint32_t>(key >> 32);
                  const auto b = static_cast<std::uint32_t>(key);
                  const double f =
                      use_alignment
                          ? banded_alignment_identity(reads.reads[a].bases,
                                                      reads.reads[b].bases)
                          : set_similarity(hashes[a], hashes[b]);
                  if (f >= cmin) out.emit(key, f);
                },
                [](const std::uint64_t& key, std::span<const double> vals,
                   Emitter<std::uint64_t, double>& out) {
                  out.emit(key, vals.front());
                },
                params_.job, &result.counters);
    result.edges.reserve(validated.size());
    for (const auto& [key, score] : validated) {
      result.edges.push_back(Edge{static_cast<std::uint32_t>(key >> 32),
                                  static_cast<std::uint32_t>(key), score});
    }
    result.confirmed_edges = result.edges.size();
  }

  // ---- Phase II: incremental quasi-clique enumeration over decreasing
  // thresholds. Clusters persist across levels; each level introduces
  // the edges newly admitted by its threshold. Density is evaluated on
  // the subgraph induced by the cluster's vertices in the level's edge
  // set (the gamma-quasi-clique definition of Sec. 4.2).
  std::vector<double> thresholds = params_.thresholds;
  std::sort(thresholds.rbegin(), thresholds.rend());

  std::vector<std::vector<std::uint32_t>> adj(n);  // active-edge adjacency
  // Count edges of the active graph induced by a sorted vertex set.
  const auto induced_edges = [&adj](const std::vector<std::uint32_t>& verts) {
    std::uint64_t count = 0;
    for (const std::uint32_t u : verts) {
      for (const std::uint32_t v : adj[u]) {
        if (v > u && std::binary_search(verts.begin(), verts.end(), v)) {
          ++count;
        }
      }
    }
    return count;
  };

  std::vector<Cluster> clusters;
  std::vector<bool> alive;
  double prev_threshold = 2.0;  // nothing admitted yet

  for (const double t : thresholds) {
    LevelResult level;
    level.threshold = t;

    // Task 6: edge filtering (new edges only — incremental).
    {
      util::ScopedStageTimer timer(result.times, "filtering");
      for (const Edge& e : result.edges) {
        if (e.score >= t) ++level.edges_active;
        if (e.score >= t && e.score < prev_threshold) {
          Cluster c;
          c.verts = {std::min(e.a, e.b), std::max(e.a, e.b)};
          c.edge_count = 1;
          clusters.push_back(std::move(c));
          alive.push_back(true);
          ++level.clusters_processed;
          adj[e.a].push_back(e.b);
          adj[e.b].push_back(e.a);
        }
      }
      prev_threshold = t;
    }

    // Tasks 7-8: iterate merge proposals to a fixed point.
    {
      util::ScopedStageTimer timer(result.times, "clustering");
      const double gamma = params_.gamma;
      const auto mergeable = [&](std::uint32_t ci, std::uint32_t cj,
                                 Cluster* out) {
        auto verts = sorted_union(clusters[ci].verts, clusters[cj].verts);
        const double nn = static_cast<double>(verts.size());
        const std::uint64_t edges = induced_edges(verts);
        if (static_cast<double>(edges) < gamma * nn * (nn - 1.0) / 2.0) {
          return false;
        }
        if (out != nullptr) {
          out->verts = std::move(verts);
          out->edge_count = edges;
        }
        return true;
      };

      for (int iter = 0; iter < params_.max_merge_iterations; ++iter) {
        // Task 7 (map): cluster -> (vertex, cluster id); reducers group
        // clusters by shared vertex and propose density-preserving merges.
        std::vector<std::pair<std::uint32_t, std::uint8_t>> cluster_input;
        for (std::uint32_t c = 0; c < clusters.size(); ++c) {
          if (alive[c]) cluster_input.emplace_back(c, 0);
        }
        level.clusters_processed += cluster_input.size();
        const std::size_t cap = params_.max_clusters_per_vertex;
        auto proposals =
            Job<std::uint32_t, std::uint8_t, std::uint32_t, std::uint32_t,
                std::uint64_t, std::uint8_t>::
                run(
                    cluster_input,
                    [&](const std::uint32_t& cid, const std::uint8_t&,
                        Emitter<std::uint32_t, std::uint32_t>& out) {
                      for (const std::uint32_t v : clusters[cid].verts) {
                        out.emit(v, cid);
                      }
                    },
                    [&](const std::uint32_t&,
                        std::span<const std::uint32_t> cids,
                        Emitter<std::uint64_t, std::uint8_t>& out) {
                      // Emit raw co-located pairs; the (expensive) density
                      // check runs once per distinct pair in Task 8.
                      const std::size_t limit = std::min(cids.size(), cap);
                      for (std::size_t x = 0; x < limit; ++x) {
                        for (std::size_t y = x + 1; y < limit; ++y) {
                          if (cids[x] != cids[y]) {
                            out.emit(pair_key(cids[x], cids[y]), 1);
                          }
                        }
                      }
                    },
                    params_.job, &result.counters);
        // Distinct proposals only (clusters sharing many vertices emit
        // the same pair once per shared vertex).
        std::sort(proposals.begin(), proposals.end());
        proposals.erase(std::unique(proposals.begin(), proposals.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.first == b.first;
                                    }),
                        proposals.end());

        // Task 8 (apply + dedup): proposals referencing clusters merged
        // earlier in this pass are chased to their successors, so one
        // pass can consolidate a whole connected block.
        std::vector<std::uint32_t> successor(clusters.size());
        for (std::uint32_t c = 0; c < clusters.size(); ++c) successor[c] = c;
        const auto resolve = [&](std::uint32_t c) {
          while (successor[c] != c) c = successor[c];
          return c;
        };
        std::size_t applied = 0;
        for (const auto& [key, _] : proposals) {
          const auto ci = resolve(static_cast<std::uint32_t>(key >> 32));
          const auto cj = resolve(static_cast<std::uint32_t>(key));
          if (ci == cj || !alive[ci] || !alive[cj]) continue;
          Cluster merged;
          if (!mergeable(ci, cj, &merged)) continue;
          alive[ci] = false;
          alive[cj] = false;
          clusters.push_back(std::move(merged));
          alive.push_back(true);
          const auto id = static_cast<std::uint32_t>(clusters.size() - 1);
          successor.push_back(id);
          successor[ci] = id;
          successor[cj] = id;
          ++level.clusters_processed;
          ++applied;
        }

        // Dedup identical vertex sets and prune clusters subsumed by the
        // largest cluster of any of their vertices.
        std::unordered_map<std::uint64_t, std::uint32_t> seen;
        std::unordered_map<std::uint32_t, std::uint32_t> largest_at;
        for (std::uint32_t c = 0; c < clusters.size(); ++c) {
          if (!alive[c]) continue;
          const std::uint64_t h = vertex_set_hash(clusters[c].verts);
          const auto it = seen.find(h);
          if (it != seen.end() &&
              clusters[it->second].verts == clusters[c].verts) {
            alive[c] = false;
            continue;
          }
          seen.emplace(h, c);
          for (const std::uint32_t v : clusters[c].verts) {
            const auto lit = largest_at.find(v);
            if (lit == largest_at.end() ||
                clusters[lit->second].verts.size() <
                    clusters[c].verts.size()) {
              largest_at[v] = c;
            }
          }
        }
        for (std::uint32_t c = 0; c < clusters.size(); ++c) {
          if (!alive[c]) continue;
          const auto lit = largest_at.find(clusters[c].verts.front());
          if (lit == largest_at.end() || lit->second == c) continue;
          const auto& big = clusters[lit->second].verts;
          if (big.size() > clusters[c].verts.size() &&
              std::includes(big.begin(), big.end(),
                            clusters[c].verts.begin(),
                            clusters[c].verts.end())) {
            alive[c] = false;
          }
        }
        if (applied == 0) break;
      }
    }

    // Snapshot the level's clusters with their induced edge counts.
    for (std::uint32_t c = 0; c < clusters.size(); ++c) {
      if (alive[c] && clusters[c].verts.size() >= 2) {
        Cluster snap = clusters[c];
        snap.edge_count = induced_edges(snap.verts);
        level.clusters.push_back(std::move(snap));
      }
    }
    level.resulting_clusters = level.clusters.size();
    result.levels.push_back(std::move(level));
  }
  return result;
}

std::vector<std::uint32_t> Closet::to_partition(
    const std::vector<Cluster>& clusters, std::size_t num_reads) {
  std::vector<std::uint32_t> labels(num_reads);
  std::vector<std::size_t> best_size(num_reads, 0);
  // Unique singleton labels first.
  for (std::uint32_t i = 0; i < num_reads; ++i) labels[i] = i;
  // Assign each read to its largest containing cluster; cluster labels
  // start after the singleton range.
  for (std::uint32_t c = 0; c < clusters.size(); ++c) {
    for (const std::uint32_t v : clusters[c].verts) {
      if (v < num_reads && clusters[c].verts.size() > best_size[v]) {
        best_size[v] = clusters[c].verts.size();
        labels[v] = static_cast<std::uint32_t>(num_reads) + c;
      }
    }
  }
  return labels;
}

}  // namespace ngs::closet
