#include "closet/similarity.hpp"

#include <algorithm>

#include "seq/kmer.hpp"
#include "util/rng.hpp"

namespace ngs::closet {

std::vector<std::uint64_t> kmer_hashes(std::string_view bases, int k) {
  std::vector<seq::KmerCode> codes;
  seq::extract_kmer_codes(bases, k, codes);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(codes.size());
  for (const auto code : codes) {
    std::uint64_t state = seq::canonical(code, k) ^ 0x1234abcd5678ef90ULL;
    hashes.push_back(util::splitmix64(state));
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

std::vector<std::uint64_t> sketch_of(const std::vector<std::uint64_t>& hashes,
                                     std::uint64_t M, std::uint64_t l) {
  std::vector<std::uint64_t> sketch;
  for (const std::uint64_t h : hashes) {
    if (h % M == l) sketch.push_back(h);
  }
  return sketch;
}

std::size_t intersection_size(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

double set_similarity(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
  const std::size_t m = std::min(a.size(), b.size());
  if (m == 0) return 0.0;
  return static_cast<double>(intersection_size(a, b)) /
         static_cast<double>(m);
}

double banded_alignment_identity(std::string_view a, std::string_view b,
                                 int band) {
  if (a.empty() || b.empty()) return 0.0;
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  // Score = matches; gaps/mismatches contribute 0; track the best number
  // of matched columns reachable within the band.
  const int width = 2 * band + 1;
  std::vector<int> prev(static_cast<std::size_t>(width), 0);
  std::vector<int> cur(static_cast<std::size_t>(width), 0);
  int best = 0;
  for (int i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), 0);
    const int j_lo = std::max(1, i - band);
    const int j_hi = std::min(m, i + band);
    for (int j = j_lo; j <= j_hi; ++j) {
      const int off = j - i + band;
      const bool match =
          a[static_cast<std::size_t>(i - 1)] ==
          b[static_cast<std::size_t>(j - 1)];
      int v = 0;
      // Diagonal (same offset in prev row).
      v = std::max(v, prev[static_cast<std::size_t>(off)] + (match ? 1 : 0));
      // Gap in b (offset-1 in current row).
      if (off - 1 >= 0) v = std::max(v, cur[static_cast<std::size_t>(off - 1)]);
      // Gap in a (offset+1 in prev row).
      if (off + 1 < width) {
        v = std::max(v, prev[static_cast<std::size_t>(off + 1)]);
      }
      cur[static_cast<std::size_t>(off)] = v;
      best = std::max(best, v);
    }
    prev.swap(cur);
  }
  return static_cast<double>(best) / static_cast<double>(n);
}

}  // namespace ngs::closet
