#pragma once
// Clustering baselines that Chapter 4 positions CLOSET against:
//
//  * Single-linkage clustering (used by earlier metagenomic tools, e.g.
//    the clustering in NAST/CD-HIT-style pipelines): connected
//    components of the similarity graph. The paper's critique: one
//    spurious cross-taxon edge merges whole taxonomic units, and the
//    mistake percolates up the rank hierarchy.
//
//  * CD-HIT-style greedy star clustering (Li & Godzik 2006): sort reads
//    by decreasing length; repeatedly take the longest unassigned read
//    as a cluster representative and absorb every unassigned read whose
//    similarity to the representative passes the threshold. The paper's
//    critique: biased toward long representatives.
//
// Both consume the same validated edge list (single linkage) or the same
// similarity function (CD-HIT) as CLOSET, so bench comparisons isolate
// the clustering strategy.

#include <cstdint>
#include <vector>

#include "closet/closet.hpp"
#include "seq/read.hpp"

namespace ngs::closet {

/// Connected components of edges with score >= threshold. Returns one
/// label per read (components keep distinct labels; isolated reads get
/// singleton labels).
std::vector<std::uint32_t> single_linkage_labels(
    const std::vector<Edge>& edges, double threshold,
    std::size_t num_reads);

struct CdHitParams {
  int k = 15;
  double threshold = 0.9;
};

/// Greedy star clustering over the kmer-set similarity. Returns one
/// label per read. O(clusters x reads) similarity evaluations, as in
/// CD-HIT's worst case.
std::vector<std::uint32_t> cdhit_labels(const seq::ReadSet& reads,
                                        const CdHitParams& params);

}  // namespace ngs::closet
