#pragma once
// Metagenome (16S rRNA pool) simulator for Chapter 4.
//
// A taxonomy is a rooted tree: rank 0 = a single root (domain), each
// subsequent rank splits every taxon into `branching[rank]` children,
// with per-rank sequence divergence applied along edges. Leaves are
// species, each carrying a full-length 16S-like reference (~1.6 kbp).
// Species abundances are log-normal (a few dominant organisms, a long
// tail of rare ones — the structure deep 454 sequencing is meant to
// resolve). Reads are 454-like: Gamma-distributed lengths around 400 bp,
// low substitution error, sampled from either strand.
//
// Ground truth: every read records its species leaf, and the taxonomy
// exposes the ancestor taxon of any species at any rank — exactly what
// the ARI assessment of Sec. 4.5.2 needs.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "util/rng.hpp"

namespace ngs::sim {

struct TaxonomySpec {
  std::size_t gene_length = 1600;
  /// branching[r] = children per taxon when descending from rank r to r+1.
  /// Example {3, 4, 5}: 3 phyla -> 12 genera -> 60 species.
  std::vector<std::size_t> branching{3, 4, 5};
  /// divergence[r] = per-base substitution probability on edges from rank
  /// r to r+1. Must have the same arity as `branching`. Defaults give
  /// within-species reads ~97%+ identity and cross-phylum ~75%.
  std::vector<double> divergence{0.12, 0.06, 0.02};
  /// Log-normal abundance spread (sigma of log-abundance).
  double abundance_sigma = 1.0;
  /// Fraction of the gene that is evolutionarily conserved (immune to
  /// edge divergence), as a contiguous central block — 16S rRNA is a
  /// mosaic of conserved and hyper-variable regions, and reads dominated
  /// by conserved sequence are non-discriminative across taxa (the
  /// similarity-measure ambiguity Sec. 4.1 models).
  double conserved_fraction = 0.0;
};

struct Taxonomy {
  std::size_t num_ranks() const noexcept { return parents.size() + 1; }
  std::size_t num_species() const noexcept { return species_sequences.size(); }

  /// parents[r][i] = index at rank r of the parent of taxon i at rank r+1.
  std::vector<std::vector<std::size_t>> parents;
  /// One full-length reference per species (deepest rank).
  std::vector<std::string> species_sequences;
  /// Relative abundance per species (sums to 1).
  std::vector<double> abundances;

  /// Ancestor of species `s` at rank `rank` (0 = root rank; num_ranks()-1
  /// = the species itself).
  std::size_t ancestor_at_rank(std::size_t species, std::size_t rank) const;

  /// Number of taxa at a rank.
  std::size_t taxa_at_rank(std::size_t rank) const;
};

Taxonomy simulate_taxonomy(const TaxonomySpec& spec, util::Rng& rng);

struct MetagenomeReadConfig {
  std::size_t num_reads = 100000;
  double mean_length = 400.0;  // 454-like
  double length_shape = 60.0;  // Gamma shape; larger = tighter
  std::size_t min_length = 150;
  double error_rate = 0.005;   // substitutions
  bool both_strands = true;
  /// 16S amplicon sequencing starts reads near PCR primer sites rather
  /// than uniformly: reads draw a site and start at Normal(site,
  /// amplicon_sd). 0 sites = uniform (shotgun-style) starts.
  std::size_t amplicon_sites = 2;
  double amplicon_sd = 15.0;
  /// PCR chimera rate: a chimeric read splices fragments of two distinct
  /// species — the classic artifact that links unrelated clusters and
  /// defeats single-linkage clustering.
  double chimera_rate = 0.0;
  /// Per-base insertion/deletion rate — 454 pyrosequencing's dominant
  /// error mode (homopolymer miscounts). Nonzero rates motivate the
  /// alignment-based similarity function F over the kmer-set one.
  double indel_rate = 0.0;
};

struct MetagenomeSample {
  seq::ReadSet reads;
  /// species_of[i] = leaf species index for read i (the 5' parent for
  /// chimeric reads).
  std::vector<std::uint32_t> species_of;
  /// chimeric[i] = true iff read i is a PCR chimera (empty if rate 0).
  std::vector<bool> chimeric;
};

/// Draws reads from the taxonomy's species pool by abundance.
MetagenomeSample simulate_metagenome_reads(const Taxonomy& taxonomy,
                                           const MetagenomeReadConfig& config,
                                           util::Rng& rng);

}  // namespace ngs::sim
