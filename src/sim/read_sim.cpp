#include "sim/read_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "seq/alphabet.hpp"

namespace ngs::sim {
namespace {

double phred_to_prob(double q) { return std::pow(10.0, -q / 10.0); }

/// Mean Phred at read position i: declines from quality_high toward
/// quality_low with a super-linear 3' drop.
double mean_quality(const ReadSimConfig& cfg, std::size_t i) {
  if (cfg.read_length <= 1) return cfg.quality_high;
  const double x = static_cast<double>(i) /
                   static_cast<double>(cfg.read_length - 1);
  return cfg.quality_high -
         (cfg.quality_high - cfg.quality_low) * std::pow(x, 1.5);
}

}  // namespace

SimulatedReads simulate_reads(std::string_view genome,
                              const ErrorModel& model,
                              const ReadSimConfig& config, util::Rng& rng) {
  const std::size_t L = config.read_length;
  if (genome.size() < L) {
    throw std::invalid_argument("simulate_reads: genome shorter than reads");
  }
  if (model.read_length() < L) {
    throw std::invalid_argument("simulate_reads: error model too short");
  }

  std::size_t n = config.num_reads;
  if (config.coverage > 0.0) {
    n = static_cast<std::size_t>(config.coverage *
                                 static_cast<double>(genome.size()) /
                                 static_cast<double>(L));
  }

  // Expected phred->prob per position, so the quality blend preserves the
  // model's marginal error rate: p_base = p_model * p_q / E[p_q].
  std::vector<double> expected_pq(L, 0.0);
  {
    constexpr int kDraws = 512;
    for (std::size_t i = 0; i < L; ++i) {
      util::Rng probe(0xabcdef12u + static_cast<std::uint64_t>(i));
      double sum = 0.0;
      for (int d = 0; d < kDraws; ++d) {
        const double q = std::clamp(
            probe.normal(mean_quality(config, i), config.quality_sd), 2.0,
            41.0);
        sum += phred_to_prob(q);
      }
      expected_pq[i] = sum / kDraws;
    }
  }

  SimulatedReads out;
  out.reads.reads.reserve(n);
  out.reads.truth.reserve(n);

  const std::size_t max_pos = genome.size() - L;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t pos = rng.below(max_pos + 1);
    const bool reverse = config.both_strands && rng.bernoulli(0.5);

    std::string true_read(genome.substr(pos, L));
    if (reverse) true_read = seq::reverse_complement(true_read);

    seq::Read read;
    read.id = "r" + std::to_string(idx);
    read.bases = true_read;
    read.quality.resize(L);

    for (std::size_t i = 0; i < L; ++i) {
      const double q = std::clamp(
          rng.normal(mean_quality(config, i), config.quality_sd), 2.0, 41.0);
      read.quality[i] = static_cast<std::uint8_t>(q + 0.5);

      const std::uint8_t from = seq::base_to_code(true_read[i]);
      const double p_model = model.error_prob(i, from);
      const double p_base = std::min(
          0.75, p_model * phred_to_prob(q) / expected_pq[i]);
      if (rng.bernoulli(p_base)) {
        // Pick the substitution target from the model's off-diagonal row.
        const auto& row = model.matrix(i)[from];
        double total = 0.0;
        for (int b = 0; b < 4; ++b) {
          if (b != from) total += row[static_cast<std::size_t>(b)];
        }
        double u = rng.uniform() * total;
        std::uint8_t to = from;
        for (std::uint8_t b = 0; b < 4; ++b) {
          if (b == from) continue;
          u -= row[b];
          if (u <= 0.0) {
            to = b;
            break;
          }
        }
        if (to == from) to = static_cast<std::uint8_t>((from + 1) & 3u);
        read.bases[i] = seq::code_to_base(to);
        ++out.substitution_errors;
      }

      if (config.ambiguous_rate > 0.0) {
        const double p_n = read.quality[i] < config.ambig_quality_cutoff
                               ? config.ambiguous_rate * 4.0
                               : config.ambiguous_rate * 0.5;
        if (rng.bernoulli(std::min(1.0, p_n))) {
          read.bases[i] = 'N';
          read.quality[i] = 2;
          ++out.ambiguous_bases;
        }
      }
    }

    out.reads.reads.push_back(std::move(read));
    out.reads.truth.push_back(
        seq::ReadTruth{pos, reverse, std::move(true_read)});
  }
  return out;
}

}  // namespace ngs::sim
