#pragma once
// Diploid re-sequencing simulation for the SNP-vs-error separation
// problem (Chapter 5, future direction 1: "to distinguish errors from
// polymorphisms, e.g., SNPs ... ambiguities may indicate
// polymorphisms"). A second haplotype is derived from the reference by
// heterozygous substitutions at a given rate; reads sample both
// haplotypes equally.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/error_model.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace ngs::sim {

struct DiploidSample {
  std::string haplotype_a;  // the reference
  std::string haplotype_b;  // reference with heterozygous SNPs
  std::vector<std::size_t> snp_positions;  // sorted
  SimulatedReads reads;     // union of reads from both haplotypes
  /// Truth for reads: from_b[i] == true iff read i sampled haplotype B.
  std::vector<bool> from_b;
};

/// Mutates `reference` at `snp_rate` per base to create haplotype B,
/// then simulates reads from both haplotypes (half the requested
/// coverage each). Positions within `min_spacing` of a previous SNP are
/// skipped so every SNP is separable at the tile scale.
DiploidSample simulate_diploid(const std::string& reference, double snp_rate,
                               std::size_t min_spacing,
                               const ErrorModel& model,
                               const ReadSimConfig& config, util::Rng& rng);

}  // namespace ngs::sim
