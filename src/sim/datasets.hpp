#pragma once
// Canned dataset specifications mirroring the paper's experimental
// datasets (Table 2.1 for Chapter 2, Table 3.1 for Chapter 3), scaled to
// laptop size. Coverage, read length, error rate, and repeat content
// follow the paper; genome lengths are scaled down (the paper's own
// Chapter 3 argues results depend on repeat *fraction*, not absolute
// genome size). A scale factor multiplies genome lengths (and repeat
// multiplicities) for heavier runs.

#include <string>
#include <vector>

#include "sim/error_model.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"

namespace ngs::sim {

enum class ErrorProfile { kIllumina, kIlluminaAlternate, kUniform };

struct DatasetSpec {
  std::string name;          // e.g. "D1"
  std::string genome_label;  // e.g. "E. coli-like"
  GenomeSpec genome;
  ReadSimConfig read_config;
  double error_rate = 0.01;  // average substitution rate
  ErrorProfile profile = ErrorProfile::kIllumina;
};

struct Dataset {
  DatasetSpec spec;
  Genome genome;
  SimulatedReads sim;
  ErrorModel model;  // the model reads were generated with
};

/// Instantiates genome + reads + model for a spec, deterministically from
/// the seed.
Dataset make_dataset(const DatasetSpec& spec, std::uint64_t seed);

/// Chapter 2 datasets D1..D6 (Table 2.1 analogs). `scale` multiplies
/// genome length. Defaults: E. coli-like 100 kbp, A. sp-like 75 kbp.
std::vector<DatasetSpec> chapter2_specs(double scale = 1.0);

/// Chapter 3 datasets D1..D6 (Table 3.1 analogs): D1-D3 synthetic with
/// 20/50/80% repeat span, D4 N. meningitidis-like (near-identical
/// repeats), D5 maize-like (diverged repeats), D6 E. coli-like low-repeat.
std::vector<DatasetSpec> chapter3_specs(double scale = 1.0);

/// Reads an optional scale override from the NGS_BENCH_SCALE environment
/// variable (default 1.0) so benches can be run at larger sizes without
/// recompiling.
double bench_scale_from_env();

}  // namespace ngs::sim
