#include "sim/metagenome.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "sim/genome.hpp"

namespace ngs::sim {
namespace {

std::string mutate(const std::string& s, double rate, util::Rng& rng) {
  std::string out = s;
  for (auto& c : out) {
    if (rng.bernoulli(rate)) {
      const std::uint8_t cur = seq::base_to_code(c);
      const auto shift = static_cast<std::uint8_t>(1 + rng.below(3));
      c = seq::code_to_base(static_cast<std::uint8_t>((cur + shift) & 3u));
    }
  }
  return out;
}

/// As mutate(), but positions with mask[i] == true never change.
std::string mutate_masked(const std::string& s, double rate,
                          const std::vector<bool>& mask, util::Rng& rng) {
  std::string out = s;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask[i]) continue;
    if (rng.bernoulli(rate)) {
      const std::uint8_t cur = seq::base_to_code(out[i]);
      const auto shift = static_cast<std::uint8_t>(1 + rng.below(3));
      out[i] =
          seq::code_to_base(static_cast<std::uint8_t>((cur + shift) & 3u));
    }
  }
  return out;
}

}  // namespace

std::size_t Taxonomy::ancestor_at_rank(std::size_t species,
                                       std::size_t rank) const {
  std::size_t idx = species;
  for (std::size_t r = parents.size(); r > rank; --r) {
    idx = parents[r - 1][idx];
  }
  return idx;
}

std::size_t Taxonomy::taxa_at_rank(std::size_t rank) const {
  if (rank > parents.size()) {
    throw std::out_of_range("taxa_at_rank: rank beyond taxonomy depth");
  }
  if (rank == parents.size()) return species_sequences.size();
  if (rank == 0) return 1;
  // parents[r] holds one entry per taxon at rank r+1, so the level size
  // at `rank` is parents[rank-1].size().
  return parents[rank - 1].size();
}

Taxonomy simulate_taxonomy(const TaxonomySpec& spec, util::Rng& rng) {
  if (spec.branching.size() != spec.divergence.size()) {
    throw std::invalid_argument(
        "simulate_taxonomy: branching/divergence arity mismatch");
  }
  Taxonomy tax;
  const std::array<double, 4> uniform_comp{0.25, 0.25, 0.25, 0.25};
  std::vector<std::string> level{
      random_sequence(spec.gene_length, uniform_comp, rng)};

  // Conserved mask: a contiguous central block of the gene.
  std::vector<bool> conserved(spec.gene_length, false);
  if (spec.conserved_fraction > 0.0) {
    const auto span = static_cast<std::size_t>(
        spec.conserved_fraction * static_cast<double>(spec.gene_length));
    const std::size_t start = (spec.gene_length - span) / 2;
    for (std::size_t i = start; i < start + span; ++i) conserved[i] = true;
  }

  for (std::size_t r = 0; r < spec.branching.size(); ++r) {
    std::vector<std::string> next;
    std::vector<std::size_t> parent_of;
    next.reserve(level.size() * spec.branching[r]);
    for (std::size_t p = 0; p < level.size(); ++p) {
      for (std::size_t c = 0; c < spec.branching[r]; ++c) {
        next.push_back(
            mutate_masked(level[p], spec.divergence[r], conserved, rng));
        parent_of.push_back(p);
      }
    }
    tax.parents.push_back(std::move(parent_of));
    level = std::move(next);
  }
  tax.species_sequences = std::move(level);

  // Log-normal abundances, normalized.
  tax.abundances.resize(tax.species_sequences.size());
  double total = 0.0;
  for (auto& a : tax.abundances) {
    a = rng.lognormal(0.0, spec.abundance_sigma);
    total += a;
  }
  for (auto& a : tax.abundances) a /= total;
  return tax;
}

MetagenomeSample simulate_metagenome_reads(const Taxonomy& taxonomy,
                                           const MetagenomeReadConfig& config,
                                           util::Rng& rng) {
  if (taxonomy.num_species() == 0) {
    throw std::invalid_argument("simulate_metagenome_reads: empty taxonomy");
  }
  // Cumulative abundance for species selection.
  std::vector<double> cum(taxonomy.abundances.size());
  double run = 0.0;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    run += taxonomy.abundances[i];
    cum[i] = run;
  }

  MetagenomeSample sample;
  sample.reads.reads.reserve(config.num_reads);
  sample.species_of.reserve(config.num_reads);

  const double scale = config.mean_length / config.length_shape;
  for (std::size_t i = 0; i < config.num_reads; ++i) {
    const double u = rng.uniform() * run;
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    const auto species =
        static_cast<std::size_t>(std::distance(cum.begin(), it));
    const std::string& gene = taxonomy.species_sequences[species];

    std::size_t len = std::max<std::size_t>(
        config.min_length,
        static_cast<std::size_t>(rng.gamma(config.length_shape, scale)));
    len = std::min(len, gene.size());
    const std::size_t max_pos = gene.size() - len;
    std::size_t pos;
    if (config.amplicon_sites > 0) {
      // Amplicon start: near one of the primer sites, spread evenly
      // across the gene's placeable range.
      const std::size_t site_idx = rng.below(config.amplicon_sites);
      const double center =
          config.amplicon_sites == 1
              ? 0.0
              : static_cast<double>(max_pos) *
                    static_cast<double>(site_idx) /
                    static_cast<double>(config.amplicon_sites - 1);
      const double drawn = rng.normal(center, config.amplicon_sd);
      pos = static_cast<std::size_t>(
          std::clamp(drawn, 0.0, static_cast<double>(max_pos)));
    } else {
      pos = rng.below(max_pos + 1);
    }

    std::string bases;
    bool is_chimera = false;
    if (config.chimera_rate > 0.0 && rng.bernoulli(config.chimera_rate) &&
        taxonomy.num_species() > 1) {
      // PCR template switch: 5' fragment from this species, 3' fragment
      // from another, spliced at the midpoint of the amplicon window.
      std::size_t other = species;
      while (other == species) {
        other = rng.below(taxonomy.num_species());
      }
      const std::string& gene_b = taxonomy.species_sequences[other];
      const std::size_t half = len / 2;
      const std::size_t b_pos = std::min(pos + half, gene_b.size() - (len - half));
      bases = gene.substr(pos, half) + gene_b.substr(b_pos, len - half);
      is_chimera = true;
    } else {
      bases = gene.substr(pos, len);
    }
    if (config.both_strands && rng.bernoulli(0.5)) {
      bases = seq::reverse_complement(bases);
    }
    bases = mutate(bases, config.error_rate, rng);
    if (config.indel_rate > 0.0) {
      std::string with_indels;
      with_indels.reserve(bases.size() + 8);
      for (const char c : bases) {
        if (rng.bernoulli(config.indel_rate)) {
          if (rng.bernoulli(0.5)) {
            continue;  // deletion
          }
          // Insertion: duplicate the base (homopolymer-style).
          with_indels.push_back(c);
        }
        with_indels.push_back(c);
      }
      bases = std::move(with_indels);
    }

    seq::Read read;
    read.id = "m" + std::to_string(i);
    read.bases = std::move(bases);
    sample.reads.reads.push_back(std::move(read));
    sample.species_of.push_back(static_cast<std::uint32_t>(species));
    if (config.chimera_rate > 0.0) sample.chimeric.push_back(is_chimera);
  }
  return sample;
}

}  // namespace ngs::sim
