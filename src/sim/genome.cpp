#include "sim/genome.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/alphabet.hpp"

namespace ngs::sim {

std::string random_sequence(std::size_t length,
                            const std::array<double, 4>& composition,
                            util::Rng& rng) {
  // Precompute cumulative distribution once.
  std::array<double, 4> cum{};
  double total = 0.0;
  for (int i = 0; i < 4; ++i) {
    total += composition[static_cast<std::size_t>(i)];
    cum[static_cast<std::size_t>(i)] = total;
  }
  std::string s(length, 'A');
  for (auto& c : s) {
    const double u = rng.uniform() * total;
    int b = 0;
    while (b < 3 && u > cum[static_cast<std::size_t>(b)]) ++b;
    c = seq::code_to_base(static_cast<std::uint8_t>(b));
  }
  return s;
}

Genome simulate_genome(const GenomeSpec& spec, util::Rng& rng) {
  std::size_t repeat_bases = 0;
  std::size_t copies = 0;
  for (const auto& fam : spec.repeats) {
    repeat_bases += fam.length * fam.multiplicity;
    copies += fam.multiplicity;
  }
  if (repeat_bases > spec.length) {
    throw std::invalid_argument(
        "simulate_genome: requested repeat content exceeds genome length");
  }

  // Exact construction: repeat copies interleaved with background chunks
  // whose total length makes up the remainder. This packs any repeat
  // fraction up to 100% while placing copies at random positions, which
  // rejection sampling cannot do at the 80% span of dataset D3.
  Genome g;
  g.sequence.reserve(spec.length);

  // Materialize all copies (mutated per-family divergence), shuffled.
  std::vector<std::string> pieces;
  pieces.reserve(copies);
  for (const auto& fam : spec.repeats) {
    if (fam.length == 0 || fam.multiplicity == 0) continue;
    const std::string tmpl =
        random_sequence(fam.length, spec.composition, rng);
    for (std::size_t copy = 0; copy < fam.multiplicity; ++copy) {
      std::string instance = tmpl;
      if (fam.divergence > 0.0) {
        for (auto& base : instance) {
          if (rng.bernoulli(fam.divergence)) {
            const std::uint8_t cur = seq::base_to_code(base);
            const auto shift = static_cast<std::uint8_t>(1 + rng.below(3));
            base =
                seq::code_to_base(static_cast<std::uint8_t>((cur + shift) & 3u));
          }
        }
      }
      pieces.push_back(std::move(instance));
    }
  }
  for (std::size_t i = pieces.size(); i > 1; --i) {
    std::swap(pieces[i - 1], pieces[rng.below(i)]);
  }

  // Background gap sizes via uniform cut points (stick breaking).
  const std::size_t background = spec.length - repeat_bases;
  std::vector<std::size_t> cuts(pieces.size());
  for (auto& c : cuts) c = rng.below(background + 1);
  std::sort(cuts.begin(), cuts.end());
  std::size_t prev = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    g.sequence += random_sequence(cuts[i] - prev, spec.composition, rng);
    g.sequence += pieces[i];
    prev = cuts[i];
  }
  g.sequence += random_sequence(background - prev, spec.composition, rng);

  g.repeat_fraction =
      spec.length == 0
          ? 0.0
          : static_cast<double>(repeat_bases) /
                static_cast<double>(spec.length);
  return g;
}

}  // namespace ngs::sim
