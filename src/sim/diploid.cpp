#include "sim/diploid.hpp"

#include "seq/alphabet.hpp"

namespace ngs::sim {

DiploidSample simulate_diploid(const std::string& reference, double snp_rate,
                               std::size_t min_spacing,
                               const ErrorModel& model,
                               const ReadSimConfig& config, util::Rng& rng) {
  DiploidSample sample;
  sample.haplotype_a = reference;
  sample.haplotype_b = reference;

  std::size_t last_snp = 0;
  bool any = false;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (any && i - last_snp < min_spacing) continue;
    if (!rng.bernoulli(snp_rate)) continue;
    const std::uint8_t cur = seq::base_to_code(reference[i]);
    const auto shift = static_cast<std::uint8_t>(1 + rng.below(3));
    sample.haplotype_b[i] =
        seq::code_to_base(static_cast<std::uint8_t>((cur + shift) & 3u));
    sample.snp_positions.push_back(i);
    last_snp = i;
    any = true;
  }

  // Half the coverage from each haplotype.
  ReadSimConfig half = config;
  if (half.coverage > 0.0) {
    half.coverage /= 2.0;
  } else {
    half.num_reads /= 2;
  }
  auto reads_a = simulate_reads(sample.haplotype_a, model, half, rng);
  auto reads_b = simulate_reads(sample.haplotype_b, model, half, rng);

  sample.reads.substitution_errors =
      reads_a.substitution_errors + reads_b.substitution_errors;
  sample.reads.ambiguous_bases =
      reads_a.ambiguous_bases + reads_b.ambiguous_bases;
  sample.from_b.assign(reads_a.reads.size(), false);
  sample.from_b.insert(sample.from_b.end(), reads_b.reads.size(), true);
  sample.reads.reads = std::move(reads_a.reads);
  for (std::size_t i = 0; i < reads_b.reads.size(); ++i) {
    reads_b.reads.reads[i].id = "b" + std::to_string(i);
    sample.reads.reads.reads.push_back(std::move(reads_b.reads.reads[i]));
    sample.reads.reads.truth.push_back(std::move(reads_b.reads.truth[i]));
  }
  return sample;
}

}  // namespace ngs::sim
