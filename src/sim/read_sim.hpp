#pragma once
// Illumina-style read simulator (Sec. 3.4.1): uniform sampling of
// L-substrings from both strands of a reference genome, substitution
// errors drawn from a position-specific ErrorModel, Phred quality scores
// correlated with the realized per-base error probability, and optional
// ambiguous-base ('N') injection at low-quality positions.
//
// Exact per-read ground truth (origin, strand, error-free bases) is
// recorded in ReadSet::truth, replacing the paper's RMAP-derived
// approximate truth.

#include <cstdint>
#include <string_view>

#include "seq/read.hpp"
#include "sim/error_model.hpp"
#include "util/rng.hpp"

namespace ngs::sim {

struct ReadSimConfig {
  std::size_t read_length = 36;
  /// Either a coverage target (reads = coverage*|G|/L) or an absolute count.
  double coverage = 0.0;
  std::size_t num_reads = 0;  // used when coverage == 0
  bool both_strands = true;
  /// Quality-score model: per-position mean Phred declines 3'-ward from
  /// q_high toward q_low; per-base jitter sd. The realized error
  /// probability of each base blends the ErrorModel position rate with
  /// the drawn quality so that low-quality bases are genuinely more
  /// error-prone (quality scores are informative but imperfect, per
  /// Dohm et al. 2008).
  int quality_high = 38;
  int quality_low = 18;
  double quality_sd = 4.0;
  /// Probability that a base is replaced by 'N'; N's strike low-quality
  /// bases preferentially (quality < ambig_quality_cutoff).
  double ambiguous_rate = 0.0;
  int ambig_quality_cutoff = 12;
};

struct SimulatedReads {
  seq::ReadSet reads;
  std::uint64_t substitution_errors = 0;  // total erroneous bases (pre-N)
  std::uint64_t ambiguous_bases = 0;      // injected N's
  double realized_error_rate() const {
    const auto total = reads.total_bases();
    return total == 0 ? 0.0
                      : static_cast<double>(substitution_errors) /
                            static_cast<double>(total);
  }
};

/// Simulates reads from `genome` with the given error model. The error
/// model must cover at least read_length positions.
SimulatedReads simulate_reads(std::string_view genome,
                              const ErrorModel& model,
                              const ReadSimConfig& config, util::Rng& rng);

}  // namespace ngs::sim
