#pragma once
// Position-specific substitution error model: the paper's misread
// probability matrices M = (M_1, ..., M_L), where M_i[a][b] is the
// probability that genome base `a` is read as `b` at read position i
// (Sec. 3.4.1). Also derives the per-kmer-position matrices q_i(a,b)
// REDEEM consumes (Sec. 3.2 / 3.4.2).

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ngs::sim {

using MisreadMatrix = std::array<std::array<double, 4>, 4>;

class ErrorModel {
 public:
  ErrorModel() = default;

  /// Uniform error distribution (the paper's tUED/wUED): every position,
  /// every base misreads with probability pe, uniformly to the other three.
  static ErrorModel uniform(std::size_t read_length, double pe);

  /// Realistic Illumina-like default: average error rate `avg_error`,
  /// rate ramping up toward the 3' end (exponential ramp, ~6x between
  /// first and last position, per Dohm et al. 2008), with
  /// nucleotide-specific substitution preferences matching the structure
  /// of Table 3.2 (A->C and G->T elevated).
  static ErrorModel illumina(std::size_t read_length, double avg_error);

  /// A deliberately *different* Illumina profile (stronger A->C / G->T
  /// skew, steeper ramp) standing in for the A. sp. ADP1-derived "wrong
  /// Illumina error distribution" (wIED) of Sec. 3.4.2.
  static ErrorModel illumina_alternate(std::size_t read_length,
                                       double avg_error);

  /// Builds a model from misread counts: counts[i][a][b] = number of times
  /// genome base a was read as b at position i (the estimation procedure
  /// run on mapper output). Rows with no observations fall back to
  /// identity with `fallback_error` spread uniformly.
  static ErrorModel from_counts(
      const std::vector<std::array<std::array<std::uint64_t, 4>, 4>>& counts,
      double fallback_error = 0.005);

  std::size_t read_length() const noexcept { return matrices_.size(); }
  bool empty() const noexcept { return matrices_.empty(); }

  const MisreadMatrix& matrix(std::size_t pos) const {
    return matrices_[pos];
  }

  /// P(error at position pos | true base `from`).
  double error_prob(std::size_t pos, std::uint8_t from) const {
    return 1.0 - matrices_[pos][from][from];
  }

  /// Average error probability across positions and bases (uniform base mix).
  double average_error_rate() const;

  /// Samples the observed base for true base `from` at position pos.
  std::uint8_t sample(std::size_t pos, std::uint8_t from,
                      util::Rng& rng) const;

  /// Per-kmer-position matrices q_i(a,b), i in [0,k): the average of the
  /// read-position matrices that a kmer position i can land on, weighted
  /// uniformly over the read positions a length-k window can occupy.
  /// This mirrors the paper's estimation of q from read decompositions.
  std::vector<MisreadMatrix> kmer_position_matrices(int k) const;

  /// Mutates the model matrices (for tests / what-if experiments).
  void set_matrix(std::size_t pos, const MisreadMatrix& m) {
    matrices_[pos] = m;
  }

 private:
  explicit ErrorModel(std::vector<MisreadMatrix> matrices)
      : matrices_(std::move(matrices)) {}

  std::vector<MisreadMatrix> matrices_;
};

/// Misread probability between two kmers under per-position matrices q:
/// pe(xm, xl) = prod_i q_i(xm[i], xl[i]). Codes are packed 2-bit kmers.
double kmer_misread_prob(const std::vector<MisreadMatrix>& q,
                         std::uint64_t from_code, std::uint64_t to_code,
                         int k);

}  // namespace ngs::sim
