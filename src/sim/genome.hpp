#pragma once
// Synthetic genome generation, following the recipe of Sec. 3.4.1:
// background sequence drawn from the B73 maize nucleotide distribution
// (A 28%, C 23%, G 22%, T 27%), with repeat families of configurable
// (length, multiplicity) embedded at random non-overlapping locations.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ngs::sim {

/// One family of identical repeats: `multiplicity` copies of a random
/// template of `length` bases, optionally mutated per copy at
/// `divergence` per-base substitution rate (0 = exact repeats).
struct RepeatFamily {
  std::size_t length = 0;
  std::size_t multiplicity = 0;
  double divergence = 0.0;
};

struct GenomeSpec {
  std::size_t length = 0;
  /// Background nucleotide distribution over {A,C,G,T}. Defaults to the
  /// maize B73 composition used in the paper.
  std::array<double, 4> composition{0.28, 0.23, 0.22, 0.27};
  std::vector<RepeatFamily> repeats;
};

struct Genome {
  std::string sequence;
  /// Fraction of positions covered by embedded repeat copies.
  double repeat_fraction = 0.0;
};

/// Generates a genome per spec. Repeat copies are placed at random
/// non-overlapping positions (best effort; throws if the requested repeat
/// content exceeds ~95% of the genome length).
Genome simulate_genome(const GenomeSpec& spec, util::Rng& rng);

/// Convenience: iid sequence of `length` from `composition`.
std::string random_sequence(std::size_t length,
                            const std::array<double, 4>& composition,
                            util::Rng& rng);

}  // namespace ngs::sim
