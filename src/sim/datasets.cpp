#include "sim/datasets.hpp"

#include <cstdlib>

namespace ngs::sim {
namespace {

constexpr std::size_t kEcoliLen = 100000;   // E. coli-like, scaled
constexpr std::size_t kAspLen = 75000;      // A. sp. ADP1-like, scaled
constexpr std::size_t kCh3Len = 100000;     // Chapter 3 synthetic genomes

std::size_t scaled(std::size_t base, double scale) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale);
}

DatasetSpec ch2_spec(std::string name, std::string label, std::size_t glen,
                     std::size_t read_len, double coverage, double err,
                     double scale) {
  DatasetSpec s;
  s.name = std::move(name);
  s.genome_label = std::move(label);
  s.genome.length = scaled(glen, scale);
  // Low but nonzero repeat content, as in real microbial genomes.
  s.genome.repeats = {{600, std::max<std::size_t>(2, scaled(4, scale)), 0.01}};
  s.read_config.read_length = read_len;
  s.read_config.coverage = coverage;
  s.error_rate = err;
  s.profile = ErrorProfile::kIllumina;
  return s;
}

}  // namespace

Dataset make_dataset(const DatasetSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  d.spec = spec;
  d.genome = simulate_genome(spec.genome, rng);
  switch (spec.profile) {
    case ErrorProfile::kIllumina:
      d.model = ErrorModel::illumina(spec.read_config.read_length,
                                     spec.error_rate);
      break;
    case ErrorProfile::kIlluminaAlternate:
      d.model = ErrorModel::illumina_alternate(spec.read_config.read_length,
                                               spec.error_rate);
      break;
    case ErrorProfile::kUniform:
      d.model =
          ErrorModel::uniform(spec.read_config.read_length, spec.error_rate);
      break;
  }
  d.sim = simulate_reads(d.genome.sequence, d.model, spec.read_config, rng);
  return d;
}

std::vector<DatasetSpec> chapter2_specs(double scale) {
  std::vector<DatasetSpec> specs;
  // Table 2.1: name, genome, read length, coverage, error rate.
  specs.push_back(
      ch2_spec("D1", "E. coli-like", kEcoliLen, 36, 160.0, 0.006, scale));
  specs.push_back(
      ch2_spec("D2", "E. coli-like", kEcoliLen, 36, 80.0, 0.006, scale));
  specs.push_back(
      ch2_spec("D3", "A. sp-like", kAspLen, 36, 173.0, 0.015, scale));
  specs.push_back(
      ch2_spec("D4", "A. sp-like", kAspLen, 36, 40.0, 0.015, scale));
  specs.push_back(
      ch2_spec("D5", "E. coli-like", kEcoliLen, 47, 71.0, 0.033, scale));
  auto d6 = ch2_spec("D6", "E. coli-like", kEcoliLen, 101, 193.0, 0.022,
                     scale);
  // Table 2.1 reports 13.9% of D6 reads containing N; per-base rate p with
  // 1-(1-p)^101 = 0.139 gives p ~ 0.0015.
  d6.read_config.ambiguous_rate = 0.0015;
  specs.push_back(std::move(d6));
  return specs;
}

std::vector<DatasetSpec> chapter3_specs(double scale) {
  std::vector<DatasetSpec> specs;
  const std::size_t len = scaled(kCh3Len, scale);
  auto base = [&](std::string name, std::string label) {
    DatasetSpec s;
    s.name = std::move(name);
    s.genome_label = std::move(label);
    s.genome.length = len;
    s.read_config.read_length = 36;
    s.read_config.coverage = 80.0;
    // Published GA-era Illumina rates run 1-1.5%; the higher end keeps
    // the repeat-shadow error phenomenon (repeatedly generated misreads)
    // alive at our scaled-down sizes.
    s.error_rate = 0.012;
    s.profile = ErrorProfile::kIllumina;
    return s;
  };
  // Scaling note: REDEEM's behavior is governed by repeat *multiplicity*
  // (the paper's families carry 100-400 copies), so scaling shrinks the
  // repeat unit length while the copy count stays proportional to the
  // paper's — preserving the span fractions AND the multiplicity regime.
  auto unit = [&](std::size_t paper_len) {
    return std::max<std::size_t>(100, scaled(paper_len / 2, scale));
  };

  // D1: 20% repeats (paper: one family of 200 copies).
  auto d1 = base("D1", "synthetic 20% repeats");
  d1.genome.repeats = {{unit(1000), len / 5 / unit(1000), 0.0}};
  specs.push_back(std::move(d1));

  // D2: 50% repeats (paper: (500, 400) + (1500, 200)).
  auto d2 = base("D2", "synthetic 50% repeats");
  d2.genome.repeats = {{unit(500), len / 5 / unit(500), 0.0},
                       {unit(1500), len * 3 / 10 / unit(1500), 0.0}};
  specs.push_back(std::move(d2));

  // D3: 80% repeats (paper adds (3000, 100)).
  auto d3 = base("D3", "synthetic 80% repeats");
  d3.genome.repeats = {{unit(500), len / 5 / unit(500), 0.0},
                       {unit(1500), len * 3 / 10 / unit(1500), 0.0},
                       {unit(3000), len * 3 / 10 / unit(3000), 0.0}};
  specs.push_back(std::move(d3));

  // D4: N. meningitidis-like — moderately repetitive with near-identical
  // repeat copies.
  auto d4 = base("D4", "N. meningitidis-like");
  d4.genome.repeats = {{unit(800), len / 4 / unit(800), 0.005}};
  specs.push_back(std::move(d4));

  // D5: maize-like — high repeat content with diverged copies.
  auto d5 = base("D5", "maize-like");
  d5.genome.length = scaled(80000, scale);
  d5.genome.repeats = {
      {unit(1200), d5.genome.length * 3 / 5 / unit(1200), 0.02}};
  specs.push_back(std::move(d5));

  // D6: E. coli-like, low repeats, 160x (the one real dataset of Ch.3).
  auto d6 = base("D6", "E. coli-like");
  d6.read_config.coverage = 160.0;
  d6.genome.repeats = {{600, 4, 0.01}};
  specs.push_back(std::move(d6));
  return specs;
}

double bench_scale_from_env() {
  const char* s = std::getenv("NGS_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

}  // namespace ngs::sim
