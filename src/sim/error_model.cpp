#include "sim/error_model.hpp"

#include <cmath>

#include "seq/kmer.hpp"

namespace ngs::sim {
namespace {

MisreadMatrix identity_with_error(double pe,
                                  const std::array<double, 12>& off_weights) {
  // off_weights: for each true base a, three relative weights for the
  // three substitution targets in code order (skipping a itself).
  MisreadMatrix m{};
  std::size_t w = 0;
  for (int a = 0; a < 4; ++a) {
    double total = 0.0;
    std::array<double, 4> row{};
    for (int b = 0; b < 4; ++b) {
      if (b == a) continue;
      row[static_cast<std::size_t>(b)] = off_weights[w++];
      total += row[static_cast<std::size_t>(b)];
    }
    for (int b = 0; b < 4; ++b) {
      auto& cell = m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (b == a) {
        cell = 1.0 - pe;
      } else {
        cell = pe * row[static_cast<std::size_t>(b)] / total;
      }
    }
  }
  return m;
}

/// Exponential 5'->3' ramp with the given fold change, normalized so the
/// mean of rate(pos) over positions equals avg_error.
std::vector<double> ramp_rates(std::size_t read_length, double avg_error,
                               double fold) {
  std::vector<double> rates(read_length);
  double sum = 0.0;
  for (std::size_t i = 0; i < read_length; ++i) {
    const double x =
        read_length <= 1
            ? 0.0
            : static_cast<double>(i) / static_cast<double>(read_length - 1);
    rates[i] = std::exp(x * std::log(fold));
    sum += rates[i];
  }
  const double scale = avg_error * static_cast<double>(read_length) / sum;
  for (auto& r : rates) r = std::min(0.4, r * scale);
  return rates;
}

}  // namespace

ErrorModel ErrorModel::uniform(std::size_t read_length, double pe) {
  const std::array<double, 12> flat{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<MisreadMatrix> ms(read_length, identity_with_error(pe, flat));
  return ErrorModel(std::move(ms));
}

ErrorModel ErrorModel::illumina(std::size_t read_length, double avg_error) {
  // Substitution preferences echoing Table 3.2 (E. coli column): from A
  // the dominant miscall is C; from G it is T; C and T miscall mildly.
  // Order per row (skipping the diagonal): A:{C,G,T} C:{A,G,T} G:{A,C,T}
  // T:{A,C,G}.
  const std::array<double, 12> weights{
      6.3, 1.8, 2.3,   // A -> C,G,T
      1.5, 1.0, 1.5,   // C -> A,G,T
      0.5, 1.7, 5.3,   // G -> A,C,T
      0.5, 1.9, 1.8};  // T -> A,C,G
  const auto rates = ramp_rates(read_length, avg_error, 6.0);
  std::vector<MisreadMatrix> ms;
  ms.reserve(read_length);
  for (double r : rates) ms.push_back(identity_with_error(r, weights));
  return ErrorModel(std::move(ms));
}

ErrorModel ErrorModel::illumina_alternate(std::size_t read_length,
                                          double avg_error) {
  // A. sp. ADP1-like skew (Table 3.2 right): much stronger A->C and G->T.
  const std::array<double, 12> weights{
      25.3, 1.9, 11.0,  // A -> C,G,T
      2.0, 0.8, 4.0,    // C -> A,G,T
      1.2, 3.0, 19.8,   // G -> A,C,T
      0.9, 1.8, 1.3};   // T -> A,C,G
  const auto rates = ramp_rates(read_length, avg_error, 9.0);
  std::vector<MisreadMatrix> ms;
  ms.reserve(read_length);
  for (double r : rates) ms.push_back(identity_with_error(r, weights));
  return ErrorModel(std::move(ms));
}

ErrorModel ErrorModel::from_counts(
    const std::vector<std::array<std::array<std::uint64_t, 4>, 4>>& counts,
    double fallback_error) {
  std::vector<MisreadMatrix> ms(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    for (int a = 0; a < 4; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      std::uint64_t row_total = 0;
      for (int b = 0; b < 4; ++b) {
        row_total += counts[i][ia][static_cast<std::size_t>(b)];
      }
      if (row_total == 0) {
        for (int b = 0; b < 4; ++b) {
          ms[i][ia][static_cast<std::size_t>(b)] =
              (a == b) ? 1.0 - fallback_error : fallback_error / 3.0;
        }
        continue;
      }
      for (int b = 0; b < 4; ++b) {
        // Add-one smoothing so unobserved substitutions keep a
        // nonvanishing misread probability (needed by REDEEM's EM).
        ms[i][ia][static_cast<std::size_t>(b)] =
            (static_cast<double>(counts[i][ia][static_cast<std::size_t>(b)]) +
             0.25) /
            (static_cast<double>(row_total) + 1.0);
      }
    }
  }
  return ErrorModel(std::move(ms));
}

double ErrorModel::average_error_rate() const {
  if (matrices_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : matrices_) {
    for (int a = 0; a < 4; ++a) {
      sum += 1.0 - m[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)];
    }
  }
  return sum / (4.0 * static_cast<double>(matrices_.size()));
}

std::uint8_t ErrorModel::sample(std::size_t pos, std::uint8_t from,
                                util::Rng& rng) const {
  const auto& row = matrices_[pos][from];
  double u = rng.uniform();
  for (int b = 0; b < 4; ++b) {
    u -= row[static_cast<std::size_t>(b)];
    if (u <= 0.0) return static_cast<std::uint8_t>(b);
  }
  return from;
}

std::vector<MisreadMatrix> ErrorModel::kmer_position_matrices(int k) const {
  const std::size_t L = matrices_.size();
  const auto uk = static_cast<std::size_t>(k);
  std::vector<MisreadMatrix> q(uk, MisreadMatrix{});
  if (L < uk) return q;
  // Kmer position i can sit at read positions i, i+1, ..., i + (L-k).
  const double windows = static_cast<double>(L - uk + 1);
  for (std::size_t i = 0; i < uk; ++i) {
    for (std::size_t start = 0; start + uk <= L; ++start) {
      const auto& m = matrices_[start + i];
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          q[i][static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
              m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] /
              windows;
        }
      }
    }
  }
  return q;
}

double kmer_misread_prob(const std::vector<MisreadMatrix>& q,
                         std::uint64_t from_code, std::uint64_t to_code,
                         int k) {
  double p = 1.0;
  for (int i = 0; i < k; ++i) {
    const std::uint8_t a = seq::kmer_base(from_code, k, i);
    const std::uint8_t b = seq::kmer_base(to_code, k, i);
    p *= q[static_cast<std::size_t>(i)][a][b];
  }
  return p;
}

}  // namespace ngs::sim
