// Ablation: the Sec. 2.3 masked-sort replica index vs brute-force
// candidate enumeration for d-neighborhood retrieval — build time, query
// throughput, and index memory, across d and the chunk count c. This is
// the design decision DESIGN.md calls out (the paper argues the replica
// structure makes neighbor retrieval ~O(1) expected per hit).

#include "bench_common.hpp"

#include "kspec/kspectrum.hpp"
#include "kspec/neighborhood.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Ablation — d-neighborhood retrieval strategies",
      "Queries: every spectrum kmer once. Enumerator memory is zero "
      "(searches the spectrum in place).");

  util::Rng rng(3);
  sim::GenomeSpec gspec;
  gspec.length = static_cast<std::size_t>(50000 * scale);
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 40.0;
  const auto simulated = sim::simulate_reads(genome.sequence, model, cfg, rng);
  const int k = 13;
  const auto spectrum = kspec::KSpectrum::build(simulated.reads, k, false);
  std::cout << "spectrum: " << spectrum.size() << " distinct " << k
            << "-mers\n\n";

  util::Table table({"Strategy", "d", "Build(s)", "Query(s)", "Neighbors",
                     "Index MB"});

  for (const int d : {1, 2}) {
    {
      kspec::CandidateEnumerator enumerator(spectrum);
      std::uint64_t found = 0;
      util::Timer timer;
      for (std::size_t i = 0; i < spectrum.size(); ++i) {
        enumerator.for_each_neighbor(spectrum.code_at(i), d,
                                     [&](seq::KmerCode, std::size_t) {
                                       ++found;
                                     });
      }
      table.add_row({"enumerate+binary-search", std::to_string(d), "0.00",
                     util::Table::fixed(timer.seconds(), 2),
                     util::Table::num(found), "0.0"});
    }
    for (const int c : (d == 1 ? std::vector<int>{2, 4, 6}
                               : std::vector<int>{3, 4, 6})) {
      util::Timer build_timer;
      kspec::MaskedSortIndex index(spectrum, c, d);
      const double build = build_timer.seconds();
      std::uint64_t found = 0;
      util::Timer timer;
      for (std::size_t i = 0; i < spectrum.size(); ++i) {
        index.for_each_neighbor(spectrum.code_at(i),
                                [&](seq::KmerCode, std::size_t) {
                                  ++found;
                                });
      }
      table.add_row({"masked-sort c=" + std::to_string(c), std::to_string(d),
                     util::Table::fixed(build, 2),
                     util::Table::fixed(timer.seconds(), 2),
                     util::Table::num(found),
                     util::Table::fixed(
                         static_cast<double>(index.memory_bytes()) / 1e6,
                         1)});
    }
  }
  table.print(std::cout);
  return 0;
}
