// Extension bench — the Sec. 3.5 combination: REDEEM then Reptile,
// against each method alone, across the repeat ladder D1/D2/D3. The
// hybrid should match Reptile on low-repeat data and REDEEM on
// high-repeat data (the paper's "superior both when sampling low repeat
// and highly-repetitive genomes"). All three rows come from the
// core::make_corrector registry.

#include "bench_common.hpp"

#include "core/registry.hpp"
#include "eval/correction_metrics.hpp"

using namespace ngs;

namespace {

struct AblationEntry {
  const char* name;
  const char* display;
  int k;  // 0 = method default / data-driven
};

constexpr AblationEntry kEntries[] = {
    {"reptile", "Reptile", 0},
    {"redeem", "REDEEM", 11},
    {"hybrid", "Hybrid", 0},
};

}  // namespace

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header(
      "Extension — hybrid (REDEEM -> Reptile) vs each method alone", "");

  util::Table table({"Data", "Repeats", "Method", "Sensitivity",
                     "Specificity", "Gain", "CPU(s)"});

  auto specs = sim::chapter3_specs(scale);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto d = sim::make_dataset(specs[i], 7);
    const std::string repeat_label =
        util::Table::percent(d.genome.repeat_fraction, 0);

    for (const auto& entry : kEntries) {
      core::CorrectorConfig config;
      config.genome_length = d.genome.sequence.size();
      config.k = entry.k;
      config.error_model = d.model;
      util::Timer timer;
      auto corrector = core::make_corrector(entry.name, config);
      corrector->build(d.sim.reads);
      core::CorrectionReport rep;
      const auto out = corrector->correct_all(d.sim.reads, rep);
      const auto m = eval::evaluate_correction(d.sim.reads, out);
      table.add_row({specs[i].name, repeat_label, entry.display,
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
