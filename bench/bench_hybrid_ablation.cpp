// Extension bench — the Sec. 3.5 combination: REDEEM then Reptile,
// against each method alone, across the repeat ladder D1/D2/D3. The
// hybrid should match Reptile on low-repeat data and REDEEM on
// high-repeat data (the paper's "superior both when sampling low repeat
// and highly-repetitive genomes").

#include "bench_common.hpp"

#include "eval/correction_metrics.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/hybrid.hpp"
#include "reptile/corrector.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header(
      "Extension — hybrid (REDEEM -> Reptile) vs each method alone", "");

  util::Table table({"Data", "Repeats", "Method", "Sensitivity",
                     "Specificity", "Gain", "CPU(s)"});

  auto specs = sim::chapter3_specs(scale);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto d = sim::make_dataset(specs[i], 7);
    const std::string repeat_label =
        util::Table::percent(d.genome.repeat_fraction, 0);
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, 11, d.model);

    {
      auto params =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      util::Timer timer;
      reptile::ReptileCorrector corrector(d.sim.reads, params);
      reptile::CorrectionStats stats;
      const auto out = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, out);
      table.add_row({specs[i].name, repeat_label, "Reptile",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1)});
    }
    {
      util::Timer timer;
      const auto spectrum = kspec::KSpectrum::build(d.sim.reads, 11, false);
      const redeem::RedeemModel model(spectrum, q, {});
      redeem::RedeemCorrector corrector(model, {});
      redeem::RedeemCorrectionStats stats;
      const auto out = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, out);
      table.add_row({specs[i].name, repeat_label, "REDEEM",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1)});
    }
    {
      util::Timer timer;
      redeem::HybridParams params;
      params.reptile =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      redeem::HybridCorrector hybrid(q, params);
      redeem::HybridStats stats;
      const auto out = hybrid.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, out);
      table.add_row({specs[i].name, repeat_label, "Hybrid",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
