// Spectrum construction + lookup microbench. Builds the Table 2.1
// D3-scale simulated dataset, times the serial seed path against the
// radix-partitioned parallel build at several thread counts (verifying
// byte-identical spectra), and times index_of with and without the
// prefix-bucket index. Emits BENCH_spectrum.json (path overridable via
// NGS_BENCH_JSON) so the perf trajectory of the k-spectrum stack is
// recorded run over run.

#include "bench_common.hpp"

#include <algorithm>
#include <fstream>
#include <thread>
#include <vector>

#include <cstdio>

#include "index/spectrum_index.hpp"
#include "kspec/chunked_builder.hpp"
#include "kspec/kspectrum.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ngs;

namespace {

bool identical(const kspec::KSpectrum& a, const kspec::KSpectrum& b) {
  return a.size() == b.size() && a.total_instances() == b.total_instances() &&
         std::equal(a.codes().begin(), a.codes().end(), b.codes().begin(),
                    b.codes().end()) &&
         std::equal(a.counts().begin(), a.counts().end(), b.counts().begin(),
                    b.counts().end());
}

/// Best-of-n wall time of fn().
template <typename F>
double best_seconds(int n, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < n; ++i) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  const double scale = bench::scale_or(1.0);
  const int k = 13;
  constexpr int kRepeats = 3;
  bench::print_header(
      "Spectrum build + lookup microbench (Table 2.1 D3-scale)",
      "Radix-partitioned parallel build vs the serial seed path; "
      "prefix-indexed vs full-range binary-search lookups.");

  const auto specs = sim::chapter2_specs(scale);
  const auto& d3_spec = specs.at(2);  // D3
  const auto d3 = sim::make_dataset(d3_spec, 42);
  const auto& reads = d3.sim.reads;
  std::cout << "dataset=" << d3_spec.name << " (" << d3_spec.genome_label
            << "), reads=" << reads.size() << ", bases=" << reads.total_bases()
            << ", k=" << k << ", hardware_threads="
            << std::thread::hardware_concurrency() << "\n\n";

  // --- Build: serial seed path vs parallel radix path. ---
  kspec::SpectrumBuildOptions serial;
  serial.threads = 1;
  kspec::KSpectrum reference;
  const double serial_s = best_seconds(
      kRepeats, [&] { reference = kspec::KSpectrum::build(reads, k, true, serial); });

  struct BuildRow {
    std::size_t threads;
    double seconds;
    bool identical;
  };
  std::vector<BuildRow> builds;
  util::Table build_table({"Threads", "Build (s)", "Speedup", "Identical"});
  build_table.add_row({"serial (seed)", util::Table::fixed(serial_s, 4),
                       "1.00x", "-"});
  for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    util::ThreadPool pool(threads);
    kspec::SpectrumBuildOptions opts;
    opts.pool = &pool;
    kspec::KSpectrum spec;
    const double s = best_seconds(
        kRepeats, [&] { spec = kspec::KSpectrum::build(reads, k, true, opts); });
    const bool same = identical(spec, reference);
    builds.push_back({threads, s, same});
    build_table.add_row({std::to_string(threads), util::Table::fixed(s, 4),
                         util::Table::fixed(serial_s / s, 2) + "x",
                         same ? "yes" : "NO"});
  }
  build_table.print(std::cout);
  std::cout << "\n";

  // --- Streamed (chunked) build, as pipeline pass 1 sees it. ---
  double chunked_s = 0.0;
  {
    util::ThreadPool pool(0);
    chunked_s = best_seconds(kRepeats, [&] {
      kspec::ChunkedSpectrumBuilder builder(k, true, 1 << 20, &pool);
      builder.add_reads(reads);
      const auto spec = builder.finish();
      if (!identical(spec, reference)) std::abort();
    });
    std::cout << "chunked streamed build (default pool): "
              << util::Table::fixed(chunked_s, 4) << " s\n\n";
  }

  // --- Budget-constrained (out-of-core) build: the spill path of the
  // sharded index stack, same bytes out, bounded tracked memory. ---
  double spilled_s = 0.0;
  std::uint64_t spill_bytes = 0;
  std::size_t spill_bins = 0;
  std::size_t spill_peak_tracked = 0;
  std::size_t spill_budget = 0;
  {
    kspec::SpillOptions spill;
    // Far below the ~16 bytes/instance the in-memory multiset needs, so
    // the build genuinely goes out of core.
    spill.memory_budget_bytes = std::max<std::size_t>(
        std::size_t{1} << 20, static_cast<std::size_t>(reads.total_bases()));
    spill_budget = spill.memory_budget_bytes;
    spilled_s = best_seconds(kRepeats, [&] {
      kspec::ChunkedSpectrumBuilder builder(k, true, 1 << 20, nullptr, spill);
      builder.add_reads(reads);
      builder.flush_spill();
      spill_bins = builder.spill_nonempty_bins();
      const auto spec = builder.finish();
      spill_bytes = builder.spill_bytes();
      spill_peak_tracked = builder.peak_tracked_bytes();
      if (!identical(spec, reference)) std::abort();
    });
    std::cout << "budgeted spill build (budget "
              << spill_budget / (1024.0 * 1024.0) << " MiB): "
              << util::Table::fixed(spilled_s, 4) << " s, " << spill_bins
              << " bins, " << spill_bytes << " spill bytes, peak tracked "
              << spill_peak_tracked << " bytes\n\n";
  }

  // --- Lookup: prefix index on/off over a hit/miss query mix. ---
  util::Rng rng(1234);
  const seq::KmerCode mask = (seq::KmerCode{1} << (2 * k)) - 1;
  std::vector<seq::KmerCode> queries;
  queries.reserve(1 << 20);
  for (std::size_t i = 0; i < (1u << 19); ++i) {
    queries.push_back(reference.code_at(rng.below(reference.size())));
    queries.push_back(rng() & mask);
  }
  auto run_lookups = [&]() -> std::uint64_t {
    std::uint64_t hits = 0;
    for (const auto q : queries) hits += reference.index_of(q) >= 0;
    return hits;
  };

  reference.rebuild_prefix_index(0);  // plain full-range binary search
  volatile std::uint64_t sink = 0;
  const double plain_s = best_seconds(kRepeats, [&] { sink += run_lookups(); });
  reference.rebuild_prefix_index(-1);  // auto width
  const int prefix_bits = reference.prefix_index_bits();
  const double prefix_s = best_seconds(kRepeats, [&] { sink += run_lookups(); });
  const double plain_ns = 1e9 * plain_s / static_cast<double>(queries.size());
  const double prefix_ns = 1e9 * prefix_s / static_cast<double>(queries.size());

  util::Table lookup_table({"index_of path", "ns/lookup", "Speedup"});
  lookup_table.add_row({"full-range lower_bound",
                        util::Table::fixed(plain_ns, 1), "1.00x"});
  lookup_table.add_row({"prefix index (p=" + std::to_string(prefix_bits) + ")",
                        util::Table::fixed(prefix_ns, 1),
                        util::Table::fixed(plain_ns / prefix_ns, 2) + "x"});
  lookup_table.print(std::cout);
  std::cout << "\n";

  // --- Batched (interleaved, software-prefetched) probes vs one-at-a-
  // time index_of, on the in-memory spectrum and on an mmap-loaded
  // index view, in pass-2-sized batches. ---
  constexpr std::size_t kBatch = 64;
  auto time_lookups = [&](const kspec::KSpectrum& spec, bool batched) {
    std::vector<std::int64_t> idx(kBatch);
    std::uint64_t found = 0;
    const double s = best_seconds(kRepeats, [&] {
      for (std::size_t base = 0; base + kBatch <= queries.size();
           base += kBatch) {
        if (batched) {
          spec.index_of_batch({queries.data() + base, kBatch},
                              {idx.data(), kBatch});
          for (std::size_t i = 0; i < kBatch; ++i) found += idx[i] >= 0;
        } else {
          for (std::size_t i = 0; i < kBatch; ++i) {
            found += spec.index_of(queries[base + i]) >= 0;
          }
        }
      }
    });
    sink += found;
    return 1e9 * s / static_cast<double>(queries.size());
  };
  const double single_mem_ns = time_lookups(reference, false);
  const double batched_mem_ns = time_lookups(reference, true);

  const std::string index_path = "/tmp/bench_spectrum_probe.ngsidx";
  index::IndexBuildInfo build_info;
  build_info.k = k;
  build_info.both_strands = true;
  build_info.input_reads = reads.size();
  build_info.input_bases = reads.total_bases();
  index::write_spectrum_index(index_path, reference, build_info);
  double single_mmap_ns = 0.0, batched_mmap_ns = 0.0;
  {
    const auto loaded = index::SpectrumIndex::load(index_path);
    single_mmap_ns = time_lookups(loaded.spectrum(), false);
    batched_mmap_ns = time_lookups(loaded.spectrum(), true);
  }
  std::remove(index_path.c_str());

  util::Table batch_table({"Spectrum", "Probe path", "ns/lookup", "Speedup"});
  batch_table.add_row({"in-memory", "single index_of",
                       util::Table::fixed(single_mem_ns, 1), "1.00x"});
  batch_table.add_row(
      {"in-memory", "batched+prefetch", util::Table::fixed(batched_mem_ns, 1),
       util::Table::fixed(single_mem_ns / batched_mem_ns, 2) + "x"});
  batch_table.add_row({"mmap-loaded", "single index_of",
                       util::Table::fixed(single_mmap_ns, 1), "1.00x"});
  batch_table.add_row(
      {"mmap-loaded", "batched+prefetch",
       util::Table::fixed(batched_mmap_ns, 1),
       util::Table::fixed(single_mmap_ns / batched_mmap_ns, 2) + "x"});
  batch_table.print(std::cout);
  std::cout << "\nspectrum: " << reference.size() << " distinct kmers, "
            << reference.total_instances() << " instances, prefix table "
            << reference.prefix_index_bytes() << " bytes, peak rss "
            << bench::mem_gb() << " GiB\n";

  // --- JSON record. ---
  const char* json_path = std::getenv("NGS_BENCH_JSON");
  std::ofstream json(json_path != nullptr ? json_path : "BENCH_spectrum.json");
  json << "{\n"
       << "  \"bench\": \"spectrum\",\n"
       << "  \"dataset\": \"" << d3_spec.name << "\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"k\": " << k << ",\n"
       << "  \"reads\": " << reads.size() << ",\n"
       << "  \"bases\": " << reads.total_bases() << ",\n"
       << "  \"distinct_kmers\": " << reference.size() << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"serial_build_s\": " << serial_s << ",\n"
       << "  \"chunked_build_s\": " << chunked_s << ",\n"
       << "  \"spilled_build\": {\"seconds\": " << spilled_s
       << ", \"budget_bytes\": " << spill_budget
       << ", \"spill_bytes\": " << spill_bytes
       << ", \"bins\": " << spill_bins
       << ", \"peak_tracked_bytes\": " << spill_peak_tracked << "},\n"
       << "  \"peak_rss_bytes\": " << util::peak_rss_bytes() << ",\n"
       << "  \"parallel_builds\": [\n";
  for (std::size_t i = 0; i < builds.size(); ++i) {
    json << "    {\"threads\": " << builds[i].threads
         << ", \"seconds\": " << builds[i].seconds
         << ", \"speedup_vs_serial\": " << serial_s / builds[i].seconds
         << ", \"byte_identical\": " << (builds[i].identical ? "true" : "false")
         << "}" << (i + 1 < builds.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"lookup\": {\"queries\": " << queries.size()
       << ", \"plain_ns\": " << plain_ns << ", \"prefix_ns\": " << prefix_ns
       << ", \"prefix_bits\": " << prefix_bits
       << ", \"speedup\": " << plain_ns / prefix_ns << "},\n"
       << "  \"batched_lookup\": {\"batch\": " << kBatch
       << ", \"in_memory\": {\"single_ns\": " << single_mem_ns
       << ", \"batched_ns\": " << batched_mem_ns
       << ", \"speedup\": " << single_mem_ns / batched_mem_ns << "}"
       << ", \"mmap\": {\"single_ns\": " << single_mmap_ns
       << ", \"batched_ns\": " << batched_mmap_ns
       << ", \"speedup\": " << single_mmap_ns / batched_mmap_ns << "}}\n"
       << "}\n";
  std::cout << "wrote " << (json_path != nullptr ? json_path : "BENCH_spectrum.json")
            << "\n";
  return 0;
}
