// End-to-end pass-2 correction throughput on the Table 2.1 D3 workload:
// Reptile phase 2 (the CorrectionPipeline hot path since PR 2 made
// phase 1 parallel) with the shared tile-decision cache on and off, at
// 1/2/4/8 worker threads and at every compiled SIMD dispatch level,
// verifying that every configuration produces output byte-identical to
// the uncached single-thread scalar reference. Emits BENCH_correct.json
// (path overridable via NGS_BENCH_JSON) so the pass-2 perf trajectory is
// recorded alongside BENCH_spectrum.json. Rows running more workers than
// the machine has hardware threads are flagged oversubscribed — their
// scaling numbers measure scheduling, not the corrector.

#include "bench_common.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "io/fastx.hpp"
#include "reptile/corrector.hpp"
#include "reptile/params.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

using namespace ngs;

namespace {

/// Uncached single-thread pass-2 throughput of the growth seed at scale
/// 1.0 (BENCH_correct.json before this optimization pass), the
/// denominator of uncached_speedup_vs_seed.
constexpr double kSeedUncachedReadsPerSec = 8832.2;

/// Best-of-n wall time of fn().
template <typename F>
double best_seconds(int n, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < n; ++i) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

bool identical(const std::vector<seq::Read>& a,
               const std::vector<seq::Read>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bases != b[i].bases) return false;
  }
  return true;
}

/// One pass-2 run: every read corrected on `pool` with per-block scratch
/// and the supplied (possibly null) shared cache.
std::vector<seq::Read> run_pass2(const reptile::ReptileCorrector& corrector,
                                 const seq::ReadSet& reads,
                                 util::ThreadPool& pool,
                                 reptile::TileDecisionCache* cache) {
  std::vector<seq::Read> out(reads.size());
  pool.parallel_for_blocked(
      0, reads.size(), [&](std::size_t lo, std::size_t hi) {
        reptile::CorrectionStats stats;
        reptile::ReptileCorrector::Scratch scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = corrector.correct(reads.reads[i], stats, scratch, cache);
        }
      });
  return out;
}

struct Row {
  std::size_t threads = 0;
  bool cached = false;
  util::simd::Level dispatch = util::simd::Level::kScalar;
  bool oversubscribed = false;
  double seconds = 0.0;
  double reads_per_sec = 0.0;
  double hit_rate = 0.0;
  bool identical = false;
};

/// One file-to-file run of the whole pipeline (both passes + I/O).
struct E2eRow {
  bool io_overlap = false;
  std::size_t threads = 0;
  bool oversubscribed = false;
  double seconds = 0.0;
  double reads_per_sec = 0.0;
  bool identical = false;
  core::OverlapStageStats pass1;
  core::OverlapStageStats pass2;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double util_pct(const core::OverlapStageStats& s) {
  if (s.workers == 0 || s.elapsed_seconds <= 0.0) return 0.0;
  const double denom =
      static_cast<double>(s.workers) * s.elapsed_seconds;
  return 100.0 * (1.0 - std::min(1.0, s.worker_stall_seconds / denom));
}

}  // namespace

int main() {
  const double scale = bench::scale_or(1.0);
  constexpr int kRepeats = 2;
  bench::print_header(
      "Pass-2 correction throughput (Table 2.1 D3-scale)",
      "Reptile tile correction with the shared tile-decision cache on/off "
      "at every SIMD dispatch level; outputs checked byte-identical to the "
      "uncached 1-thread scalar reference.");

  const auto specs = sim::chapter2_specs(scale);
  const auto& d3_spec = specs.at(2);  // D3
  const auto d3 = sim::make_dataset(d3_spec, 42);
  const auto& reads = d3.sim.reads;

  // Dispatch levels under test: scalar always, plus the best level this
  // build + CPU supports (absent in -DNGS_SIMD=OFF builds).
  const util::simd::Level best_level = util::simd::active();
  std::vector<util::simd::Level> levels{util::simd::Level::kScalar};
  if (best_level != util::simd::Level::kScalar) levels.push_back(best_level);

  const unsigned hw = std::thread::hardware_concurrency();
  auto params = reptile::select_parameters(reads, d3_spec.genome.length);
  util::Timer build_timer;
  const reptile::ReptileCorrector corrector(reads, params);
  const double build_s = build_timer.seconds();
  std::cout << "dataset=" << d3_spec.name << " (" << d3_spec.genome_label
            << "), reads=" << reads.size() << ", bases=" << reads.total_bases()
            << ", k=" << params.k << ", tile=" << params.tile_length()
            << "bp, phase-1 build " << util::Table::fixed(build_s, 2)
            << "s, hardware_threads=" << hw << ", best dispatch="
            << util::simd::level_name(best_level) << "\n\n";

  // Reference: uncached, single worker, scalar kernels.
  util::ThreadPool ref_pool(1);
  util::simd::force_level(util::simd::Level::kScalar);
  std::vector<seq::Read> reference;
  const double scalar_1t_s = best_seconds(kRepeats, [&] {
    reference = run_pass2(corrector, reads, ref_pool, nullptr);
  });

  const auto nreads = static_cast<double>(reads.size());
  std::vector<Row> rows;
  rows.push_back({1, false, util::simd::Level::kScalar, hw != 0 && 1 > hw,
                  scalar_1t_s, nreads / scalar_1t_s, 0.0, true});

  util::Table table({"Dispatch", "Threads", "Cache", "Pass 2 (s)", "Reads/s",
                     "Speedup vs scalar 1t", "Hit rate", "Identical"});
  table.add_row({"scalar", "1", "off", util::Table::fixed(scalar_1t_s, 3),
                 util::Table::num(
                     static_cast<std::uint64_t>(nreads / scalar_1t_s)),
                 "1.00x", "-", "-"});

  double uncached_1t_s = scalar_1t_s;  // best-dispatch headline number
  for (const util::simd::Level level : levels) {
    util::simd::force_level(level);
    for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
      util::ThreadPool pool(threads);
      for (const bool cached : {false, true}) {
        if (!cached && threads == 1 &&
            level == util::simd::Level::kScalar) {
          continue;  // the reference row above
        }
        std::vector<seq::Read> out;
        double hit_rate = 0.0;
        const double s = best_seconds(kRepeats, [&] {
          // Fresh cache per repetition: timing must include the miss-and-
          // fill phase, not reuse a previous repetition's warm entries.
          if (cached) {
            reptile::TileDecisionCache cache(reptile::kDefaultTileCacheBytes);
            out = run_pass2(corrector, reads, pool, &cache);
            hit_rate = cache.stats().hit_rate();
          } else {
            out = run_pass2(corrector, reads, pool, nullptr);
          }
        });
        Row row;
        row.threads = threads;
        row.cached = cached;
        row.dispatch = level;
        row.oversubscribed = hw != 0 && threads > hw;
        row.seconds = s;
        row.reads_per_sec = nreads / s;
        row.hit_rate = hit_rate;
        row.identical = identical(out, reference);
        rows.push_back(row);
        if (!cached && threads == 1 && level == best_level) {
          uncached_1t_s = s;
        }
        table.add_row(
            {util::simd::level_name(level),
             std::to_string(threads) + (row.oversubscribed ? "*" : ""),
             cached ? "on" : "off", util::Table::fixed(s, 3),
             util::Table::num(static_cast<std::uint64_t>(row.reads_per_sec)),
             util::Table::fixed(scalar_1t_s / s, 2) + "x",
             cached ? util::Table::percent(hit_rate) : "-",
             row.identical ? "yes" : "NO"});
      }
    }
  }
  util::simd::force_level(best_level);
  table.print(std::cout);
  std::cout << "(* = more workers than the " << hw
            << " hardware thread(s): oversubscribed, scaling not "
               "meaningful)\n";

  double cached_1t_s = 0.0;
  bool all_identical = true;
  for (const auto& r : rows) {
    if (r.threads == 1 && r.cached && r.dispatch == best_level) {
      cached_1t_s = r.seconds;
    }
    all_identical = all_identical && r.identical;
  }
  const double uncached_rps = nreads / uncached_1t_s;
  const double speedup_vs_seed = uncached_rps / kSeedUncachedReadsPerSec;
  std::cout << "\nsingle-thread cache speedup: "
            << util::Table::fixed(uncached_1t_s / cached_1t_s, 2)
            << "x, uncached 1t vs seed "
            << util::Table::fixed(speedup_vs_seed, 2) << "x"
            << (scale == 1.0 ? "" : " (scale != 1.0: not comparable)")
            << ", outputs " << (all_identical ? "all identical" : "DIVERGED")
            << ", peak rss " << bench::mem_gb() << " GiB\n";

  // --- End-to-end: file-to-file wall clock with the overlapped
  // streaming executor on/off. Method sap (streamed spectrum), so both
  // the pass-1 read-ahead and the pass-2 reader/workers/writer pipeline
  // are on the measured path, I/O included. Every run's output file
  // must be byte-identical to the serial single-thread reference.
  std::cout << "\nEnd-to-end (sap, file to file, I/O included):\n";
  const auto e2e_dir =
      std::filesystem::temp_directory_path() /
      ("bench_correct_e2e_" + std::to_string(::getpid()));
  std::filesystem::create_directories(e2e_dir);
  const std::string in_fastq = (e2e_dir / "reads.fastq").string();
  io::write_fastq_file(in_fastq, reads);

  core::CorrectorConfig e2e_config;
  e2e_config.genome_length = d3_spec.genome.length;
  std::string e2e_reference;
  double e2e_ref_s = 0.0;
  std::vector<E2eRow> e2e_rows;
  util::Table e2e_table({"Overlap", "Threads", "Wall (s)", "Reads/s",
                         "Speedup vs serial 1t", "P2 util", "Identical"});
  for (const bool overlap : {false, true}) {
    for (const std::size_t threads : {1ul, 2ul, 4ul}) {
      core::PipelineOptions popts;
      popts.threads = threads;
      popts.io_overlap = overlap;
      const std::string out_fastq =
          (e2e_dir / ("out_" + std::to_string(threads) +
                      (overlap ? "_ov" : "_serial") + ".fastq"))
              .string();
      core::PipelineResult res;
      const double s = best_seconds(kRepeats, [&] {
        core::CorrectionPipeline pipeline(
            core::make_corrector("sap", e2e_config), popts);
        res = pipeline.run_file(in_fastq, out_fastq);
      });
      const std::string bytes = slurp(out_fastq);
      std::filesystem::remove(out_fastq);
      if (!overlap && threads == 1) {
        e2e_reference = bytes;
        e2e_ref_s = s;
      }
      E2eRow row;
      row.io_overlap = overlap;
      row.threads = threads;
      row.oversubscribed = hw != 0 && threads > hw;
      row.seconds = s;
      row.reads_per_sec = nreads / s;
      row.identical = bytes == e2e_reference;
      row.pass1 = res.pass1_overlap;
      row.pass2 = res.pass2_overlap;
      all_identical = all_identical && row.identical;
      e2e_rows.push_back(row);
      e2e_table.add_row(
          {overlap ? "on" : "off",
           std::to_string(threads) + (row.oversubscribed ? "*" : ""),
           util::Table::fixed(s, 3),
           util::Table::num(static_cast<std::uint64_t>(row.reads_per_sec)),
           util::Table::fixed(e2e_ref_s / s, 2) + "x",
           overlap ? util::Table::fixed(util_pct(row.pass2), 0) + "%" : "-",
           row.identical ? "yes" : "NO"});
    }
  }
  std::filesystem::remove_all(e2e_dir);
  e2e_table.print(std::cout);
  std::cout << "(* = oversubscribed: more workers than the " << hw
            << " hardware thread(s), overlap gains bounded by real "
               "parallelism)\n";

  // --- JSON record. ---
  const char* json_path = std::getenv("NGS_BENCH_JSON");
  const char* out_path =
      json_path != nullptr ? json_path : "BENCH_correct.json";
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"correct\",\n"
       << "  \"method\": \"reptile\",\n"
       << "  \"dataset\": \"" << d3_spec.name << "\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"reads\": " << reads.size() << ",\n"
       << "  \"bases\": " << reads.total_bases() << ",\n"
       << "  \"k\": " << params.k << ",\n"
       << "  \"tile_length\": " << params.tile_length() << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"best_dispatch\": \"" << util::simd::level_name(best_level)
       << "\",\n"
       << "  \"phase1_build_s\": " << build_s << ",\n"
       << "  \"uncached_1t_s\": " << uncached_1t_s << ",\n"
       << "  \"uncached_1t_scalar_s\": " << scalar_1t_s << ",\n"
       << "  \"cached_speedup_1t\": " << uncached_1t_s / cached_1t_s << ",\n"
       << "  \"seed_uncached_reads_per_sec\": " << kSeedUncachedReadsPerSec
       << ",\n"
       << "  \"uncached_speedup_vs_seed\": " << speedup_vs_seed << ",\n"
       << "  \"all_outputs_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"threads\": " << r.threads
         << ", \"cache\": " << (r.cached ? "true" : "false")
         << ", \"dispatch\": \"" << util::simd::level_name(r.dispatch)
         << "\", \"oversubscribed\": " << (r.oversubscribed ? "true" : "false")
         << ", \"seconds\": " << r.seconds
         << ", \"reads_per_sec\": " << r.reads_per_sec
         << ", \"hit_rate\": " << r.hit_rate
         << ", \"byte_identical\": " << (r.identical ? "true" : "false")
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"end_to_end\": {\n"
       << "    \"method\": \"sap\",\n"
       << "    \"includes_io\": true,\n"
       << "    \"serial_1t_s\": " << e2e_ref_s << ",\n"
       << "    \"runs\": [\n";
  for (std::size_t i = 0; i < e2e_rows.size(); ++i) {
    const auto& r = e2e_rows[i];
    json << "      {\"io_overlap\": " << (r.io_overlap ? "true" : "false")
         << ", \"threads\": " << r.threads
         << ", \"oversubscribed\": " << (r.oversubscribed ? "true" : "false")
         << ", \"seconds\": " << r.seconds
         << ", \"reads_per_sec\": " << r.reads_per_sec
         << ", \"byte_identical\": " << (r.identical ? "true" : "false")
         << ", \"pass1_reader_stall_s\": " << r.pass1.reader_stall_seconds
         << ", \"pass1_ingest_stall_s\": " << r.pass1.writer_stall_seconds
         << ", \"pass2_reader_stall_s\": " << r.pass2.reader_stall_seconds
         << ", \"pass2_writer_stall_s\": " << r.pass2.writer_stall_seconds
         << ", \"pass2_queue_peak\": " << r.pass2.queue_peak
         << ", \"pass2_reorder_peak\": " << r.pass2.reorder_peak
         << ", \"pass2_worker_util_pct\": " << util_pct(r.pass2) << "}"
         << (i + 1 < e2e_rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_identical ? 0 : 1;
}
