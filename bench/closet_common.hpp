#pragma once
// Shared machinery for the Chapter 4 benches: the three metagenome
// samples (Table 4.1's Small/Medium/Large analogs) and a configured
// CLOSET instance.

#include <string>
#include <vector>

#include "closet/closet.hpp"
#include "sim/metagenome.hpp"

namespace ngs::bench {

struct MetaDataset {
  std::string name;
  sim::Taxonomy taxonomy;
  sim::MetagenomeSample sample;
};

inline MetaDataset make_meta_dataset(const std::string& name,
                                     std::size_t num_reads,
                                     std::uint64_t seed,
                                     double conserved_fraction = 0.0,
                                     double chimera_rate = 0.0) {
  util::Rng rng(seed);
  sim::TaxonomySpec tspec;
  tspec.branching = {4, 5, 8};  // 4 phyla -> 20 genera -> 160 species
  tspec.divergence = {0.12, 0.06, 0.02};
  tspec.conserved_fraction = conserved_fraction;
  MetaDataset d;
  d.name = name;
  d.taxonomy = sim::simulate_taxonomy(tspec, rng);
  sim::MetagenomeReadConfig cfg;
  cfg.num_reads = num_reads;
  cfg.error_rate = 0.004;
  cfg.chimera_rate = chimera_rate;
  d.sample = sim::simulate_metagenome_reads(d.taxonomy, cfg, rng);
  return d;
}

inline std::vector<MetaDataset> standard_meta_datasets(double scale) {
  return {
      make_meta_dataset("Small", static_cast<std::size_t>(2000 * scale), 21),
      make_meta_dataset("Medium", static_cast<std::size_t>(5000 * scale), 22),
      make_meta_dataset("Large", static_cast<std::size_t>(10000 * scale), 23),
  };
}

inline closet::ClosetParams standard_closet_params() {
  closet::ClosetParams params;
  params.thresholds = {0.95, 0.92, 0.90};
  return params;
}

}  // namespace ngs::bench
