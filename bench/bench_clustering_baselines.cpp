// Extension bench — CLOSET's quasi-clique clustering vs the baselines
// Chapter 4 argues against: single-linkage components (one spurious edge
// merges taxa) and CD-HIT-style greedy stars (length-biased
// representatives). All three consume comparable similarity evidence;
// ARI against species truth isolates the clustering strategy.

#include "bench_common.hpp"
#include "closet_common.hpp"

#include <set>

#include "closet/baselines.hpp"
#include "eval/ari.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Extension — clustering strategy comparison (ARI vs species truth)",
      "Same validated edges feed CLOSET and single linkage; CD-HIT "
      "recomputes similarities greedily.");

  // "clean": hyper-variable gene. "noisy": 40% of the gene conserved —
  // reads straddling the conserved block score high across unrelated
  // taxa, the similarity ambiguity single linkage cannot survive.
  const auto clean = bench::make_meta_dataset(
      "clean", static_cast<std::size_t>(4000 * scale), 51);
  const auto noisy = bench::make_meta_dataset(
      "noisy", static_cast<std::size_t>(4000 * scale), 52,
      /*conserved_fraction=*/0.4, /*chimera_rate=*/0.02);

  util::Table table({"Dataset", "Method", "Threshold", "Clusters",
                     "ARI vs species", "Time(s)"});

  for (const auto* dp : {&clean, &noisy}) {
    const auto& d = *dp;
    const std::vector<std::uint32_t>& species = d.sample.species_of;
    for (const double t : {0.92, 0.85, 0.80}) {
    // CLOSET (one threshold at a time so timings are comparable).
    util::Timer closet_timer;
    auto params = bench::standard_closet_params();
    params.thresholds = {t};
    params.cmin = 0.5;
    closet::Closet cl(params);
    const auto result = cl.run(d.sample.reads);
    const auto closet_labels = closet::Closet::to_partition(
        result.levels[0].clusters, d.sample.reads.size());
    table.add_row(
        {d.name, "CLOSET quasi-clique", util::Table::percent(t, 0),
         util::Table::num(result.levels[0].resulting_clusters),
         util::Table::fixed(
             eval::adjusted_rand_index(closet_labels, species).ari, 3),
         util::Table::fixed(closet_timer.seconds(), 1)});

    // Single linkage over the same validated edges.
    util::Timer sl_timer;
    const auto sl_labels = closet::single_linkage_labels(
        result.edges, t, d.sample.reads.size());
    std::set<std::uint32_t> components(sl_labels.begin(), sl_labels.end());
    table.add_row(
        {d.name, "single linkage", util::Table::percent(t, 0),
         util::Table::num(components.size()),
         util::Table::fixed(
             eval::adjusted_rand_index(sl_labels, species).ari, 3),
         util::Table::fixed(sl_timer.seconds(), 1)});

    // CD-HIT-style greedy stars.
    util::Timer cdhit_timer;
    closet::CdHitParams cd;
    cd.threshold = t;
    const auto cd_labels = closet::cdhit_labels(d.sample.reads, cd);
    std::set<std::uint32_t> stars(cd_labels.begin(), cd_labels.end());
    table.add_row(
        {d.name, "CD-HIT greedy", util::Table::percent(t, 0),
         util::Table::num(stars.size()),
         util::Table::fixed(
             eval::adjusted_rand_index(cd_labels, species).ari, 3),
         util::Table::fixed(cdhit_timer.seconds(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
