// Regenerates Table 2.3: Reptile (d=1, d=2) vs SHREC on the Chapter 2
// datasets — base-level TP/FN/FP/TN, EBA, Sensitivity, Specificity,
// Gain, CPU time, memory. Expected shape (paper): Reptile beats SHREC on
// Gain and EBA everywhere; d=2 raises sensitivity at higher EBA; Reptile
// is several times faster.

#include "bench_common.hpp"

#include "eval/correction_metrics.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"

using namespace ngs;

namespace {

void add_row(util::Table& table, const std::string& data,
             const std::string& method, const eval::CorrectionCounts& m,
             double seconds) {
  table.add_row({data, method, util::Table::num(m.tp), util::Table::num(m.fn),
                 util::Table::num(m.fp), util::Table::num(m.tn),
                 util::Table::fixed(m.eba() * 100.0, 3),
                 util::Table::percent(m.sensitivity()),
                 util::Table::percent(m.specificity()),
                 util::Table::percent(m.gain()),
                 util::Table::fixed(seconds, 1), ngs::bench::mem_gb()});
}

}  // namespace

int main() {
  const double scale = bench::scale_or(0.2);
  bench::print_header(
      "Table 2.3 — Reptile vs SHREC on Illumina-like short reads",
      "Exact per-base truth from the simulator replaces RMAP-derived "
      "truth. Memory column is process peak RSS (GB) after the method.");

  util::Table table({"Data", "Method", "TP", "FN", "FP", "TN", "EBA(%)",
                     "Sens", "Spec", "Gain", "CPU(s)", "Mem(GB)"});

  for (const auto& spec : sim::chapter2_specs(scale)) {
    const auto d = sim::make_dataset(spec, 42);
    // SHREC cannot process ambiguous bases (as in the paper, reads with
    // N would be discarded); our datasets only inject N in D6, where
    // Reptile's N handling is evaluated separately in Table 2.4.

    {
      shrec::ShrecParams sp;
      sp.genome_length = d.genome.sequence.size();
      shrec::ShrecCorrector shrec_corrector(sp);
      shrec::ShrecStats stats;
      util::Timer timer;
      const auto corrected = shrec_corrector.correct_all(d.sim.reads, stats);
      const double secs = timer.seconds();
      add_row(table, spec.name, "SHREC",
              eval::evaluate_correction(d.sim.reads, corrected), secs);
    }

    const auto base_params = reptile::select_parameters(
        d.sim.reads, d.genome.sequence.size());
    for (const int dd : {1, 2}) {
      auto params = base_params;
      params.d = dd;
      util::Timer timer;
      reptile::ReptileCorrector corrector(d.sim.reads, params);
      reptile::CorrectionStats stats;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const double secs = timer.seconds();
      add_row(table, spec.name, "Reptile(" + std::to_string(dd) + ")",
              eval::evaluate_correction(d.sim.reads, corrected), secs);
    }
  }
  table.print(std::cout);
  return 0;
}
