// Regenerates Figure 3.2: log10(FP+FN) vs detection threshold for every
// Chapter 3 dataset, comparing raw-count thresholding (Y) with REDEEM's
// estimated attempts under the four error distributions. Expected
// shape: U-shaped curves; REDEEM flattens the bottom and shifts it left.

#include "bench_common.hpp"
#include "redeem_common.hpp"

#include <cmath>

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.25);
  bench::print_header(
      "Figure 3.2 — log10(FP+FN) vs threshold, per dataset",
      "Sampled at ~16 thresholds per series for readability.");

  for (const auto& spec : sim::chapter3_specs(scale)) {
    const auto d = sim::make_dataset(spec, 7);
    const auto sweeps = bench::run_redeem_sweeps(d, 11);

    std::cout << "-- " << spec.name << " (" << spec.genome_label << ")\n";
    util::Table table({"Threshold", "Y", "tIED", "wIED", "tUED", "wUED"});
    const std::size_t n = sweeps.thresholds.size();
    const std::size_t step = std::max<std::size_t>(1, n / 16);
    auto log_wrong = [](const eval::ThresholdPoint& p) {
      return util::Table::fixed(
          std::log10(static_cast<double>(p.wrong()) + 1.0), 2);
    };
    for (std::size_t i = 0; i < n; i += step) {
      table.add_row({util::Table::fixed(sweeps.thresholds[i], 1),
                     log_wrong(sweeps.observed[i]),
                     log_wrong(sweeps.estimated.at("tIED")[i]),
                     log_wrong(sweeps.estimated.at("wIED")[i]),
                     log_wrong(sweeps.estimated.at("tUED")[i]),
                     log_wrong(sweeps.estimated.at("wUED")[i])});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
