// Regenerates Table 3.2: estimated kmer-position error probabilities
// q_i(a, b) at position i = 11, for the E. coli-like profile (tIED
// source) and the A. sp. ADP1-like profile (wIED source). The matrices
// are estimated exactly as in Sec. 3.4.1: simulate reads, map them back
// with the mismatch mapper, count per-position misreads from uniquely
// mapped reads, then decompose to kmer positions.

#include "bench_common.hpp"

#include "mapper/mismatch_mapper.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"

using namespace ngs;

namespace {

void print_matrix(const std::string& title, const sim::MisreadMatrix& m) {
  std::cout << title << "\n";
  util::Table table({"x1e-2", "A", "C", "G", "T"});
  const char* bases = "ACGT";
  for (int a = 0; a < 4; ++a) {
    std::vector<std::string> row{std::string(1, bases[a])};
    for (int b = 0; b < 4; ++b) {
      row.push_back(util::Table::fixed(m[a][b] * 100.0, 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header(
      "Table 3.2 — Estimated error probabilities q_i(.,.), kmer position "
      "i = 11 (1-based)",
      "");

  for (const auto& [label, profile] :
       {std::pair<std::string, sim::ErrorProfile>{
            "E. coli-like (tIED source)", sim::ErrorProfile::kIllumina},
        {"A. sp. ADP1-like (wIED source)",
         sim::ErrorProfile::kIlluminaAlternate}}) {
    util::Rng rng(11);
    sim::GenomeSpec gspec;
    gspec.length = static_cast<std::size_t>(60000 * scale);
    const auto genome = sim::simulate_genome(gspec, rng);
    const auto true_model =
        profile == sim::ErrorProfile::kIllumina
            ? sim::ErrorModel::illumina(36, 0.006)
            : sim::ErrorModel::illumina_alternate(36, 0.012);
    sim::ReadSimConfig cfg;
    cfg.read_length = 36;
    cfg.coverage = 40.0;
    const auto simulated =
        sim::simulate_reads(genome.sequence, true_model, cfg, rng);

    mapper::MismatchMapper m(genome.sequence, 9);
    const auto estimated = mapper::estimate_error_model(
        m, genome.sequence, simulated.reads, 3);
    const auto q = estimated.kmer_position_matrices(13);
    print_matrix(label, q[10]);  // 1-based position 11
  }
  return 0;
}
