// Regenerates Table 4.2: quantities of data generated at each CLOSET
// stage — predicted / unique / confirmed edges, and clusters processed /
// resulting at each similarity threshold. Expected shape: sketching
// evaluates a vanishing fraction of all O(n^2) pairs; lower thresholds
// process and produce more clusters.

#include "bench_common.hpp"
#include "closet_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Table 4.2 — Data quantities per CLOSET stage",
      "Fraction = unique candidate pairs / all possible pairs.");

  const auto datasets = bench::standard_meta_datasets(scale);
  std::vector<closet::ClosetResult> results;
  util::Table head({"", "Predicted edges", "Unique edges", "Confirmed edges",
                    "Pair fraction"});
  for (const auto& d : datasets) {
    closet::Closet cl(bench::standard_closet_params());
    results.push_back(cl.run(d.sample.reads));
    const auto& r = results.back();
    const double n = static_cast<double>(d.sample.reads.size());
    head.add_row({d.name, util::Table::num(r.predicted_pair_records),
                  util::Table::num(r.unique_candidate_pairs),
                  util::Table::num(r.confirmed_edges),
                  util::Table::fixed(
                      static_cast<double>(r.unique_candidate_pairs) /
                          (n * (n - 1.0) / 2.0),
                      6)});
  }
  head.print(std::cout);
  std::cout << "\n";

  util::Table clusters({"", "t1", "Clusters processed", "Resulting clusters"});
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    for (const auto& level : results[i].levels) {
      clusters.add_row({datasets[i].name,
                        util::Table::percent(level.threshold, 0),
                        util::Table::num(level.clusters_processed),
                        util::Table::num(level.resulting_clusters)});
    }
  }
  clusters.print(std::cout);
  return 0;
}
