// Persistent spectrum index bench: the build-once / load-many tradeoff
// the ngs::index subsystem exists for. On the Table 2.1 D3-scale
// dataset it times the serial and 8-thread spectrum builds, writes the
// index once, then times cold-ish mmap loads (best of n) and full
// checksum-verified loads, asserting the loaded spectrum is
// byte-identical to the built one. Emits BENCH_index.json (path
// overridable via NGS_BENCH_JSON); the headline number is
// load_vs_8thread_speedup — how much pass 1 shrinks when a correction
// run starts from a persisted index instead of rebuilding.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "index/spectrum_index.hpp"
#include "kspec/kspectrum.hpp"
#include "util/thread_pool.hpp"

using namespace ngs;

namespace {

bool identical(const kspec::KSpectrum& a, const kspec::KSpectrum& b) {
  return a.k() == b.k() && a.size() == b.size() &&
         a.total_instances() == b.total_instances() &&
         std::equal(a.codes().begin(), a.codes().end(), b.codes().begin(),
                    b.codes().end()) &&
         std::equal(a.counts().begin(), a.counts().end(), b.counts().begin(),
                    b.counts().end());
}

template <typename F>
double best_seconds(int n, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < n; ++i) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  const double scale = bench::scale_or(1.0);
  const int k = 13;
  constexpr int kRepeats = 5;
  bench::print_header(
      "Persistent spectrum index bench (Table 2.1 D3-scale)",
      "Build-once/load-many: mmap index load vs serial and 8-thread "
      "spectrum builds.");

  const auto specs = sim::chapter2_specs(scale);
  const auto& d3_spec = specs.at(2);  // D3
  const auto d3 = sim::make_dataset(d3_spec, 42);
  const auto& reads = d3.sim.reads;
  std::cout << "dataset=" << d3_spec.name << " (" << d3_spec.genome_label
            << "), reads=" << reads.size() << ", bases=" << reads.total_bases()
            << ", k=" << k << ", hardware_threads="
            << std::thread::hardware_concurrency() << "\n\n";

  // --- Builds to beat. ---
  kspec::SpectrumBuildOptions serial;
  serial.threads = 1;
  kspec::KSpectrum reference;
  const double serial_s = best_seconds(
      3, [&] { reference = kspec::KSpectrum::build(reads, k, true, serial); });
  util::ThreadPool pool8(8);
  kspec::SpectrumBuildOptions par;
  par.pool = &pool8;
  const double par8_s = best_seconds(3, [&] {
    const auto spec = kspec::KSpectrum::build(reads, k, true, par);
    if (!identical(spec, reference)) std::abort();
  });

  // --- Write once. ---
  const std::string path = "bench_index_d3.ngsx";
  index::IndexBuildInfo build;
  build.k = k;
  build.both_strands = true;
  build.input_reads = reads.size();
  build.input_bases = reads.total_bases();
  for (const auto& r : reads.reads) {
    build.max_read_length = std::max(
        build.max_read_length, static_cast<std::uint32_t>(r.bases.size()));
  }
  util::Timer write_timer;
  const std::uint64_t checksum =
      index::write_spectrum_index(path, reference, build);
  const double write_s = write_timer.seconds();
  const auto file_bytes = index::SpectrumIndex::read_info(path).file_bytes;

  // --- Load many. ---
  bool load_identical = true;
  const double load_s = best_seconds(kRepeats, [&] {
    const auto loaded = index::SpectrumIndex::load(path);
    load_identical = load_identical && identical(loaded.spectrum(), reference);
  });
  index::LoadOptions verify_opts;
  verify_opts.verify_checksums = true;
  verify_opts.validate_payload = true;
  const double verified_load_s = best_seconds(
      kRepeats, [&] { (void)index::SpectrumIndex::load(path, verify_opts); });
  index::LoadOptions owned_opts;
  owned_opts.use_mmap = false;
  const double owned_load_s = best_seconds(
      kRepeats, [&] { (void)index::SpectrumIndex::load(path, owned_opts); });
  if (!load_identical) {
    std::cerr << "FATAL: loaded spectrum differs from built spectrum\n";
    return 1;
  }

  util::Table table({"Path", "Seconds", "vs 8-thread build"});
  table.add_row({"serial build", util::Table::fixed(serial_s, 4),
                 util::Table::fixed(par8_s / serial_s, 2) + "x"});
  table.add_row({"8-thread build", util::Table::fixed(par8_s, 4), "1.00x"});
  table.add_row({"index write", util::Table::fixed(write_s, 4), "-"});
  table.add_row({"mmap load", util::Table::fixed(load_s, 4),
                 util::Table::fixed(par8_s / load_s, 2) + "x"});
  table.add_row({"verified load", util::Table::fixed(verified_load_s, 4),
                 util::Table::fixed(par8_s / verified_load_s, 2) + "x"});
  table.add_row({"owned-buffer load", util::Table::fixed(owned_load_s, 4),
                 util::Table::fixed(par8_s / owned_load_s, 2) + "x"});
  table.print(std::cout);
  std::cout << "\nindex: " << file_bytes << " bytes, " << reference.size()
            << " distinct kmers, checksum 0x" << std::hex << checksum
            << std::dec << ", loaded spectrum byte-identical, peak rss "
            << bench::mem_gb() << " GiB\n";

  const char* json_path = std::getenv("NGS_BENCH_JSON");
  std::ofstream json(json_path != nullptr ? json_path : "BENCH_index.json");
  json << "{\n"
       << "  \"bench\": \"index\",\n"
       << "  \"dataset\": \"" << d3_spec.name << "\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"k\": " << k << ",\n"
       << "  \"reads\": " << reads.size() << ",\n"
       << "  \"bases\": " << reads.total_bases() << ",\n"
       << "  \"distinct_kmers\": " << reference.size() << ",\n"
       << "  \"index_bytes\": " << file_bytes << ",\n"
       << "  \"serial_build_s\": " << serial_s << ",\n"
       << "  \"build_8thread_s\": " << par8_s << ",\n"
       << "  \"index_write_s\": " << write_s << ",\n"
       << "  \"mmap_load_s\": " << load_s << ",\n"
       << "  \"verified_load_s\": " << verified_load_s << ",\n"
       << "  \"owned_load_s\": " << owned_load_s << ",\n"
       << "  \"load_vs_8thread_speedup\": " << par8_s / load_s << ",\n"
       << "  \"load_vs_serial_speedup\": " << serial_s / load_s << ",\n"
       << "  \"byte_identical\": " << (load_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote "
            << (json_path != nullptr ? json_path : "BENCH_index.json") << "\n";
  std::remove(path.c_str());
  return 0;
}
