// Regenerates the Sec. 3.7 threshold-inference experiment: fit the
// Gamma + Normals + Uniform mixture to the estimated T_l, choose the
// number of normal components by BIC, and compare the model-chosen
// threshold with the oracle (sweep-optimal) threshold.

#include "bench_common.hpp"

#include "eval/kmer_classification.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/threshold.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.25);
  bench::print_header(
      "Sec. 3.7 — Mixture-model threshold inference",
      "Oracle = threshold minimizing FP+FN against genome truth; the "
      "model sees no truth.");

  util::Table table({"Data", "Chosen G", "pi0", "Gamma(a,b)", "NB theta",
                     "Model threshold", "Oracle threshold",
                     "FP+FN @ model", "FP+FN @ oracle"});

  for (const auto& spec : sim::chapter3_specs(scale)) {
    const auto d = sim::make_dataset(spec, 7);
    const auto spectrum = kspec::KSpectrum::build(d.sim.reads, 11, false);
    const auto genome_spectrum = kspec::KSpectrum::build_from_sequence(
        d.genome.sequence, 11, true);
    const auto truth = eval::genome_truth(spectrum, genome_spectrum);
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, 11, d.model);
    const redeem::RedeemModel model(spectrum, q, {});

    util::Rng rng(3);
    const auto fit =
        redeem::fit_threshold_mixture(model.estimates(), {}, rng);

    const double cov = static_cast<double>(spectrum.total_instances()) /
                       std::max<double>(1.0, genome_spectrum.size());
    const auto thresholds = eval::linear_thresholds(cov * 1.6, 0.25);
    const auto sweep =
        eval::sweep_thresholds(model.estimates(), truth, thresholds);
    const auto oracle = eval::best_point(sweep);
    const auto at_model = eval::sweep_thresholds(
        model.estimates(), truth, {fit.threshold})[0];

    const double theta = fit.mu * fit.p / (1.0 - fit.p);
    table.add_row(
        {spec.name, std::to_string(fit.num_normals),
         util::Table::fixed(fit.pi_gamma, 2),
         "(" + util::Table::fixed(fit.alpha, 2) + "," +
             util::Table::fixed(fit.beta, 2) + ")",
         util::Table::fixed(theta, 1), util::Table::fixed(fit.threshold, 1),
         util::Table::fixed(oracle.threshold, 1),
         util::Table::num(at_model.wrong()),
         util::Table::num(oracle.wrong())});
  }
  table.print(std::cout);
  return 0;
}
