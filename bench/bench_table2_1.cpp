// Regenerates Table 2.1: experimental dataset characteristics for the
// Chapter 2 datasets D1-D6 (scaled analogs; see DESIGN.md).

#include "bench_common.hpp"

#include <algorithm>

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header(
      "Table 2.1 — Experimental Datasets (Chapter 2 analogs)",
      "Genome lengths scaled by " + util::Table::fixed(scale, 2) +
          " (NGS_BENCH_SCALE); coverage/read-length/error follow the paper.");

  util::Table table({"Data", "Genome", "Read Length", "Number of Reads",
                     "Reads w/ N", "Cov.", "Error rate"});
  for (const auto& spec : sim::chapter2_specs(scale)) {
    const auto d = sim::make_dataset(spec, 42);
    std::uint64_t reads_with_n = 0;
    for (const auto& r : d.sim.reads.reads) {
      reads_with_n +=
          std::any_of(r.bases.begin(), r.bases.end(),
                      [](char c) { return c == 'N'; });
    }
    table.add_row(
        {spec.name, spec.genome_label,
         std::to_string(spec.read_config.read_length) + "bp",
         util::Table::num(d.sim.reads.size()),
         util::Table::percent(
             d.sim.reads.size() == 0
                 ? 0.0
                 : static_cast<double>(reads_with_n) /
                       static_cast<double>(d.sim.reads.size())),
         util::Table::fixed(spec.read_config.coverage, 0) + "x",
         util::Table::percent(d.sim.realized_error_rate())});
  }
  table.print(std::cout);
  return 0;
}
