#pragma once
// Shared helpers for the bench binaries. Every bench regenerates one
// table or figure of the paper on synthetic data; sizes honor the
// NGS_BENCH_SCALE environment variable (default noted per bench) so the
// same binaries run heavier reproductions unchanged.

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/datasets.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ngs::bench {

inline double scale_or(double default_scale) {
  const char* s = std::getenv("NGS_BENCH_SCALE");
  if (s == nullptr) return default_scale;
  const double v = std::atof(s);
  return v > 0.0 ? v : default_scale;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "==== " << title << " ====\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

/// Memory delta helper for the "Memory (GB)" columns: peak RSS is
/// process-wide, so benches report the peak after each method ran.
inline std::string mem_gb() {
  return util::Table::fixed(util::to_gib(util::peak_rss_bytes()), 2);
}

}  // namespace ngs::bench
