// google-benchmark microbenchmarks for the hot substrate primitives:
// kmer codec, reverse complement, Hamming, spectrum construction, flat
// counter, packed-window mismatch counting, the MapReduce engine, and
// the disarmed fault-injection site check (must stay ~1 atomic load).

#include <benchmark/benchmark.h>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "kspec/kspectrum.hpp"
#include "mapper/packed_sequence.hpp"
#include "mapreduce/job.hpp"
#include "seq/kmer.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/flat_counter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

std::string random_dna(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return sim::random_sequence(n, {0.25, 0.25, 0.25, 0.25}, rng);
}

void BM_EncodeKmer(benchmark::State& state) {
  const std::string s = random_dna(32, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::encode_kmer(s));
  }
}
BENCHMARK(BM_EncodeKmer);

void BM_ReverseComplementPacked(benchmark::State& state) {
  const auto code = seq::encode_kmer(random_dna(21, 2)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::reverse_complement(code, 21));
  }
}
BENCHMARK(BM_ReverseComplementPacked);

void BM_KmerHamming(benchmark::State& state) {
  const auto a = seq::encode_kmer(random_dna(32, 3)).value();
  const auto b = seq::encode_kmer(random_dna(32, 4)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::kmer_hamming(a, b));
  }
}
BENCHMARK(BM_KmerHamming);

void BM_ExtractKmers(benchmark::State& state) {
  const std::string s = random_dna(static_cast<std::size_t>(state.range(0)), 5);
  std::vector<seq::KmerCode> out;
  for (auto _ : state) {
    out.clear();
    seq::extract_kmer_codes(s, 15, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtractKmers)->Arg(1000)->Arg(100000);

void BM_SpectrumBuild(benchmark::State& state) {
  util::Rng rng(6);
  const auto genome = random_dna(20000, 6);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = static_cast<double>(state.range(0));
  const auto simulated = sim::simulate_reads(genome, model, cfg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kspec::KSpectrum::build(simulated.reads, 13, true));
  }
}
BENCHMARK(BM_SpectrumBuild)->Arg(10)->Arg(40);

void BM_FlatCounter(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<std::uint64_t> keys(100000);
  for (auto& k : keys) k = rng.below(20000);
  for (auto _ : state) {
    util::FlatCounter counter(20000);
    for (const auto k : keys) counter.add(k);
    benchmark::DoNotOptimize(counter.distinct());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_FlatCounter);

void BM_PackedMismatch(benchmark::State& state) {
  const auto genome = random_dna(100000, 8);
  mapper::PackedSequence packed(genome);
  const auto words =
      mapper::PackedSequence::pack_words(genome.substr(500, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packed.mismatches(500, words, 100, 100));
  }
}
BENCHMARK(BM_PackedMismatch);

void BM_MapReduceWordCount(benchmark::State& state) {
  std::vector<std::pair<int, int>> input;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    input.emplace_back(i, i % 100);
  }
  using CountJob = mapreduce::Job<int, int, int, int, int, int>;
  for (auto _ : state) {
    auto out = CountJob::run(
        input,
        [](const int&, const int& v, mapreduce::Emitter<int, int>& e) {
          e.emit(v, 1);
        },
        [](const int& k, std::span<const int> vs,
           mapreduce::Emitter<int, int>& e) {
          e.emit(k, static_cast<int>(vs.size()));
        });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapReduceWordCount)->Arg(10000)->Arg(100000);

void BM_FaultSiteCheckDisarmed(benchmark::State& state) {
  // The cost every hardened hot path pays when no fault is armed: one
  // relaxed atomic load (or nothing under NGS_FAULT_INJECTION=OFF).
  fault::Registry::instance().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::should_fire(fault::sites::kPass2Batch));
  }
}
BENCHMARK(BM_FaultSiteCheckDisarmed);

void BM_FaultSiteCheckArmedElsewhere(benchmark::State& state) {
  // Worst non-firing case: the registry is enabled (some other site is
  // armed), so every check takes the mutex and counts the hit.
  fault::Registry::instance().reset();
  fault::Registry::instance().configure("io.fastq.open=n1000000000");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::should_fire(fault::sites::kPass2Batch));
  }
  fault::Registry::instance().reset();
}
BENCHMARK(BM_FaultSiteCheckArmedElsewhere);

}  // namespace

BENCHMARK_MAIN();
