// Extension bench — assembly-based validation of error correction (the
// validation measure Sec. 1.2 discusses: prior work judged correctors by
// assembly improvement). Assemble the D2 analog raw vs corrected by each
// method; correction must shrink the spurious-kmer load and improve
// unitig contiguity (N50).

#include "bench_common.hpp"

#include "assembly/debruijn.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"

using namespace ngs;

namespace {

void assemble_and_report(util::Table& table, const std::string& method,
                         const seq::ReadSet& reads,
                         const std::string& genome) {
  assembly::DeBruijnParams params;
  params.k = 21;
  params.min_kmer_count = 2;
  const auto graph = assembly::DeBruijnGraph::build(reads, params);
  const auto unitigs = graph.unitigs();
  const auto stats = assembly::assembly_stats(unitigs, 50);
  const auto eval = assembly::evaluate_contigs(unitigs, genome, params.k);
  table.add_row({method, util::Table::num(graph.num_edges()),
                 util::Table::num(stats.num_contigs),
                 util::Table::num(stats.n50),
                 util::Table::num(stats.max_length),
                 util::Table::percent(eval.genome_kmers_covered),
                 util::Table::percent(eval.contig_kmer_accuracy, 2)});
}

}  // namespace

int main() {
  const double scale = bench::scale_or(0.3);
  bench::print_header(
      "Extension — de Bruijn assembly before/after error correction",
      "D2 analog; solid-kmer cutoff 2, unitigs >= 50 bp.");

  const auto spec = sim::chapter2_specs(scale)[1];  // D2
  const auto d = sim::make_dataset(spec, 42);

  util::Table table({"Reads", "Solid kmers", "Unitigs", "N50", "Max",
                     "Genome covered", "Kmer accuracy"});
  assemble_and_report(table, "uncorrected", d.sim.reads, d.genome.sequence);

  {
    auto params =
        reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
    reptile::ReptileCorrector corrector(d.sim.reads, params);
    reptile::CorrectionStats stats;
    seq::ReadSet corrected;
    corrected.reads = corrector.correct_all(d.sim.reads, stats);
    assemble_and_report(table, "Reptile-corrected", corrected,
                        d.genome.sequence);
  }
  {
    shrec::ShrecParams sp;
    sp.genome_length = d.genome.sequence.size();
    shrec::ShrecCorrector corrector(sp);
    shrec::ShrecStats stats;
    seq::ReadSet corrected;
    corrected.reads = corrector.correct_all(d.sim.reads, stats);
    assemble_and_report(table, "SHREC-corrected", corrected,
                        d.genome.sequence);
  }
  {
    const auto spectrum = kspec::KSpectrum::build(d.sim.reads, 11, false);
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, 11, d.model);
    const redeem::RedeemModel model(spectrum, q, {});
    redeem::RedeemCorrector corrector(model, {});
    redeem::RedeemCorrectionStats stats;
    seq::ReadSet corrected;
    corrected.reads = corrector.correct_all(d.sim.reads, stats);
    assemble_and_report(table, "REDEEM-corrected", corrected,
                        d.genome.sequence);
  }
  table.print(std::cout);
  return 0;
}
