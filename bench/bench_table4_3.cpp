// Regenerates Table 4.3: run time per CLOSET stage (sketching,
// validation, filtering, clustering) on each dataset, plus the MapReduce
// engine's per-phase breakdown. Absolute numbers reflect this machine
// (single node) rather than the paper's 32-node Hadoop cluster; the
// expected shape — mild growth with input size, clustering cost growing
// as thresholds drop — carries over.

#include "bench_common.hpp"
#include "closet_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header("Table 4.3 — Run time (seconds) per CLOSET stage", "");

  util::Table table({"Stage", "Small", "Medium", "Large"});
  std::vector<closet::ClosetResult> results;
  for (const auto& d : bench::standard_meta_datasets(scale)) {
    closet::Closet cl(bench::standard_closet_params());
    results.push_back(cl.run(d.sample.reads));
  }
  for (const char* stage :
       {"sketching", "validation", "filtering", "clustering"}) {
    std::vector<std::string> row{stage};
    for (const auto& r : results) {
      row.push_back(util::Table::fixed(r.times.get(stage), 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nMapReduce engine phase breakdown (seconds, summed over "
               "jobs):\n";
  util::Table engine({"Phase", "Small", "Medium", "Large"});
  engine.add_row({"map",
                  util::Table::fixed(results[0].counters.map_seconds, 2),
                  util::Table::fixed(results[1].counters.map_seconds, 2),
                  util::Table::fixed(results[2].counters.map_seconds, 2)});
  engine.add_row(
      {"shuffle", util::Table::fixed(results[0].counters.shuffle_seconds, 2),
       util::Table::fixed(results[1].counters.shuffle_seconds, 2),
       util::Table::fixed(results[2].counters.shuffle_seconds, 2)});
  engine.add_row(
      {"reduce", util::Table::fixed(results[0].counters.reduce_seconds, 2),
       util::Table::fixed(results[1].counters.reduce_seconds, 2),
       util::Table::fixed(results[2].counters.reduce_seconds, 2)});
  engine.print(std::cout);
  return 0;
}
