// bench_service — serving-path cost of the correction daemon: per-batch
// round-trip latency (p50/p99) and aggregate corrected reads/sec for
// 1, 4, and 16 concurrent clients against one in-process
// CorrectionServer, plus the invariant the service exists to keep —
// the served bytes are identical to the offline pipeline's. Emits
// BENCH_service.json (path overridable via NGS_BENCH_JSON).
//
// Each client is a real AF_UNIX connection running a synchronous
// REQ/RESP ping-pong over the whole read set (window 1 isolates
// per-batch latency from client-side pipelining), so the measured
// numbers include framing, socket hops, admission, scheduling, and the
// ordered-reply path — everything but the terminal.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "io/fastq_stream.hpp"
#include "io/fastx.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ngs;

namespace {

constexpr std::size_t kBatchReads = 256;

struct ClientRun {
  std::vector<double> latencies_ms;  // one per batch round trip
  std::string output;                // corrected FASTQ bytes
};

/// One synchronous client session over the whole read set.
ClientRun run_client(const std::string& socket_path,
                     const std::vector<seq::Read>& reads) {
  ClientRun run;
  service::Client client(socket_path);
  client.connect();
  service::HelloRequest hello;
  hello.method = "sap";
  hello.genome_length = 50000;
  (void)client.hello(hello);

  std::ostringstream os;
  std::uint64_t seq = 0;
  for (std::size_t begin = 0; begin < reads.size(); begin += kBatchReads) {
    const std::size_t end = std::min(begin + kBatchReads, reads.size());
    service::ReadBatch batch;
    batch.seq = seq;
    batch.reads.assign(reads.begin() + begin, reads.begin() + end);
    const auto t0 = std::chrono::steady_clock::now();
    client.send_request(batch);
    for (;;) {
      const auto reply = client.read_reply();
      if (reply.type == service::FrameType::kBusy) {
        // Shed under overload: resend under a fresh seq (the server's
        // per-connection seqs must stay contiguous). The retry stays
        // inside the measured round trip — shedding is a cost.
        batch.seq = ++seq;
        client.send_request(batch);
        continue;
      }
      if (reply.type != service::FrameType::kResponse) {
        throw service::ProtocolError("bench expected RESP or BUSY");
      }
      const auto resp = service::decode_response(reply.payload.data(),
                                                 reply.payload.size());
      io::write_fastq(os, resp.reads);
      break;
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    ++seq;
  }
  run.output = os.str();
  return run;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[rank];
}

}  // namespace

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "service: daemon round-trip latency and throughput",
      "sap over AF_UNIX, synchronous per-client ping-pong, batch " +
          std::to_string(kBatchReads) + " reads");

  // Dataset + offline reference (which also writes the daemon's index).
  util::Rng rng(4242);
  sim::GenomeSpec gspec;
  gspec.length = static_cast<std::size_t>(50000 * scale);
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 10.0;
  const auto sim_run = sim::simulate_reads(genome.sequence, model, cfg, rng);
  std::string fastq;
  {
    std::ostringstream os;
    io::write_fastq(os, sim_run.reads);
    fastq = os.str();
  }
  const std::string index_path = "bench_service.ngsx";
  std::string expected;
  {
    core::PipelineOptions options;
    options.batch_size = kBatchReads;
    options.threads = 4;
    options.save_index_path = index_path;
    core::CorrectorConfig config;
    config.genome_length = 50000;
    core::CorrectionPipeline pipeline(core::make_corrector("sap", config),
                                      options);
    std::ostringstream os;
    pipeline.run([&] { return std::make_unique<std::istringstream>(fastq); },
                 os);
    expected = os.str();
  }
  std::vector<seq::Read> reads;
  {
    std::istringstream is(fastq);
    io::FastqStreamReader reader(is, "<bench>");
    while (reader.read_batch(reads, 4096) > 0) {
    }
  }

  service::ServiceOptions options;
  options.socket_path = "bench_service.sock";
  options.workers = 4;
  options.queue_capacity = 64;
  service::IndexRegistryConfig registry;
  registry.index_paths.push_back(index_path);
  service::CorrectionServer server(options, registry);
  server.start();

  struct Row {
    std::size_t clients;
    double p50_ms;
    double p99_ms;
    double reads_per_s;
  };
  std::vector<Row> rows;
  bool identical = true;

  for (const std::size_t clients : {1u, 4u, 16u}) {
    std::vector<ClientRun> runs(clients);
    util::Timer timer;
    {
      std::vector<std::thread> threads;
      for (std::size_t i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
          runs[i] = run_client(options.socket_path, reads);
        });
      }
      for (auto& t : threads) t.join();
    }
    const double elapsed = timer.seconds();
    std::vector<double> latencies;
    for (const auto& run : runs) {
      latencies.insert(latencies.end(), run.latencies_ms.begin(),
                       run.latencies_ms.end());
      identical = identical && run.output == expected;
    }
    rows.push_back({clients, percentile(latencies, 0.50),
                    percentile(latencies, 0.99),
                    static_cast<double>(clients * reads.size()) / elapsed});
  }
  server.stop();

  util::Table table({"Clients", "p50 (ms)", "p99 (ms)", "reads/sec"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.clients),
                   util::Table::fixed(row.p50_ms, 3),
                   util::Table::fixed(row.p99_ms, 3),
                   util::Table::fixed(row.reads_per_s, 0)});
  }
  table.print(std::cout);
  std::cout << "\n" << reads.size() << " reads/client, served output "
            << (identical ? "byte-identical" : "DIFFERS (BUG)")
            << " to offline ngs-correct, peak rss " << bench::mem_gb()
            << " GiB\n";

  const char* json_path = std::getenv("NGS_BENCH_JSON");
  std::ofstream json(json_path != nullptr ? json_path : "BENCH_service.json");
  json << "{\n"
       << "  \"bench\": \"service\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"method\": \"sap\",\n"
       << "  \"reads_per_client\": " << reads.size() << ",\n"
       << "  \"batch_reads\": " << kBatchReads << ",\n"
       << "  \"workers\": " << options.workers << ",\n"
       << "  \"byte_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"clients\": " << rows[i].clients
         << ", \"p50_ms\": " << rows[i].p50_ms
         << ", \"p99_ms\": " << rows[i].p99_ms
         << ", \"reads_per_s\": " << rows[i].reads_per_s << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote "
            << (json_path != nullptr ? json_path : "BENCH_service.json")
            << "\n";
  std::remove(index_path.c_str());
  return identical ? 0 : 1;
}
