#pragma once
// Shared machinery for the Chapter 3 benches: build a dataset, run the
// REDEEM EM under each error-distribution hypothesis, and sweep
// detection thresholds on observed counts Y and estimated attempts T.

#include <map>
#include <string>
#include <vector>

#include "eval/kmer_classification.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "sim/datasets.hpp"

namespace ngs::bench {

struct RedeemSweeps {
  std::vector<eval::ThresholdPoint> observed;  // thresholding on Y
  std::map<std::string, std::vector<eval::ThresholdPoint>> estimated;
  std::vector<double> thresholds;
};

inline RedeemSweeps run_redeem_sweeps(const sim::Dataset& d, int k,
                                      double max_threshold_factor = 1.6) {
  const auto spectrum =
      kspec::KSpectrum::build(d.sim.reads, k, /*both_strands=*/false);
  const auto genome_spectrum =
      kspec::KSpectrum::build_from_sequence(d.genome.sequence, k,
                                            /*both_strands=*/true);
  const auto truth = eval::genome_truth(spectrum, genome_spectrum);

  // Coverage-scaled threshold grid.
  const double kmer_coverage =
      static_cast<double>(spectrum.total_instances()) /
      std::max<double>(1.0, static_cast<double>(genome_spectrum.size()));
  const auto thresholds =
      eval::linear_thresholds(kmer_coverage * max_threshold_factor,
                              std::max(0.25, kmer_coverage / 120.0));

  RedeemSweeps out;
  out.thresholds = thresholds;
  {
    std::vector<double> y(spectrum.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = static_cast<double>(spectrum.count_at(i));
    }
    out.observed = eval::sweep_thresholds(y, truth, thresholds);
  }
  for (const auto kind :
       {redeem::ErrorDistKind::kTrueIllumina,
        redeem::ErrorDistKind::kWrongIllumina,
        redeem::ErrorDistKind::kTrueUniform,
        redeem::ErrorDistKind::kWrongUniform}) {
    const auto q = redeem::kmer_error_matrices(kind, k, d.model);
    const redeem::RedeemModel model(spectrum, q, {});
    out.estimated[redeem::to_string(kind)] =
        eval::sweep_thresholds(model.estimates(), truth, thresholds);
  }
  return out;
}

}  // namespace ngs::bench
