// Ablation: the sketch fraction (1/M) and number of rounds l trade-off
// of Sec. 4.5.2 — edge recall vs candidate-pair work. Larger M = smaller
// sketches = fewer candidate evaluations but a higher chance of missing
// a true edge; extra rounds win most of the misses back.

#include "bench_common.hpp"
#include "closet_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Ablation — sketch modulus M and rounds l",
      "Recall is measured against the densest configuration (M=2, l=3).");

  const auto d = bench::make_meta_dataset(
      "ablation", static_cast<std::size_t>(3000 * scale), 41);

  // Reference edge set from the densest sketching configuration.
  std::uint64_t reference_edges = 0;
  util::Table table({"M", "rounds", "Predicted pairs", "Unique pairs",
                     "Confirmed edges", "Recall", "Sketch time(s)"});
  struct Config {
    std::uint64_t m;
    int rounds;
  };
  const std::vector<Config> configs = {
      {2, 3}, {4, 3}, {8, 3}, {8, 1}, {16, 3}, {16, 1}, {32, 3}, {32, 1}};
  for (const auto& cfg : configs) {
    auto params = bench::standard_closet_params();
    params.thresholds = {0.90};
    params.sketch_mod = cfg.m;
    params.sketch_rounds = cfg.rounds;
    closet::Closet cl(params);
    const auto result = cl.run(d.sample.reads);
    if (reference_edges == 0) reference_edges = result.confirmed_edges;
    table.add_row(
        {std::to_string(cfg.m), std::to_string(cfg.rounds),
         util::Table::num(result.predicted_pair_records),
         util::Table::num(result.unique_candidate_pairs),
         util::Table::num(result.confirmed_edges),
         util::Table::percent(
             static_cast<double>(result.confirmed_edges) /
             static_cast<double>(std::max<std::uint64_t>(1, reference_edges))),
         util::Table::fixed(result.times.get("sketching"), 2)});
  }
  table.print(std::cout);
  return 0;
}
