// Regenerates Table 4.1: characteristics of the metagenomic datasets —
// read counts, data size, and min/avg/max read length.

#include "bench_common.hpp"
#include "closet_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header("Table 4.1 — Metagenomic dataset characteristics",
                      "16S amplicon pools from a 120-species taxonomy.");

  util::Table table({"", "No. reads", "Size [MB]",
                     "Read length (min/avg/max)", "Species present"});
  for (const auto& d : bench::standard_meta_datasets(scale)) {
    std::size_t min_len = ~std::size_t{0}, max_len = 0;
    std::uint64_t total = 0;
    for (const auto& r : d.sample.reads.reads) {
      min_len = std::min(min_len, r.bases.size());
      max_len = std::max(max_len, r.bases.size());
      total += r.bases.size();
    }
    std::vector<bool> present(d.taxonomy.num_species(), false);
    for (const auto s : d.sample.species_of) present[s] = true;
    std::size_t species = 0;
    for (const bool p : present) species += p;
    const double avg =
        static_cast<double>(total) /
        std::max<double>(1.0, static_cast<double>(d.sample.reads.size()));
    table.add_row(
        {d.name, util::Table::num(d.sample.reads.size()),
         util::Table::fixed(static_cast<double>(total) / 1e6, 1),
         std::to_string(min_len) + "/" + util::Table::fixed(avg, 0) + "/" +
             std::to_string(max_len),
         util::Table::num(species)});
  }
  table.print(std::cout);
  return 0;
}
