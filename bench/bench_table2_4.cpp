// Regenerates Table 2.4: quality of ambiguous-base ('N') correction by
// Reptile on D2/D6 analogs, varying the default substitution base.

#include "bench_common.hpp"

#include "eval/correction_metrics.hpp"
#include "reptile/corrector.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.3);
  bench::print_header(
      "Table 2.4 — Quality of ambiguous base correction using Reptile",
      "N's are injected at low-quality positions; Accuracy = fraction of "
      "N positions resolved to the true base.");

  util::Table table({"Data", "N", "Accuracy", "Sensitivity", "Specificity",
                     "Gain", "EBA"});

  auto specs = sim::chapter2_specs(scale);
  for (auto* spec : {&specs[1], &specs[5]}) {  // D2 and D6
    // Ensure both datasets carry ambiguous bases (D2 in the paper was
    // run on its full version including N-containing reads).
    if (spec->read_config.ambiguous_rate == 0.0) {
      spec->read_config.ambiguous_rate = 0.0015;
    }
    const auto d = sim::make_dataset(*spec, 42);
    for (const char base : {'A', 'C', 'G', 'T'}) {
      auto params =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      params.default_base = base;
      reptile::ReptileCorrector corrector(d.sim.reads, params);
      reptile::CorrectionStats stats;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const auto metrics = eval::evaluate_correction(d.sim.reads, corrected);
      const auto ambig = eval::evaluate_ambiguous(d.sim.reads, corrected);
      table.add_row({spec->name, std::string(1, base),
                     util::Table::percent(ambig.accuracy(), 2),
                     util::Table::percent(metrics.sensitivity()),
                     util::Table::percent(metrics.specificity()),
                     util::Table::percent(metrics.gain()),
                     util::Table::fixed(metrics.eba() * 100.0, 3) + "%"});
    }
  }
  table.print(std::cout);
  return 0;
}
