// Regenerates Table 4.4 / Sec. 4.5.2's ARI assessment: Adjusted Rand
// Index of CLOSET clusters against taxonomic ground truth at every rank,
// across a decreasing ladder of similarity thresholds. The paper's
// proposal: the threshold maximizing ARI at a rank is the right cutoff
// for that rank. Expected shape: species-rank ARI peaks at high
// thresholds and decays as clusters start to merge genera.

#include "bench_common.hpp"
#include "closet_common.hpp"

#include "eval/ari.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Table 4.4 — ARI of CLOSET clusters vs taxonomic truth",
      "Rows: similarity threshold; columns: taxonomy rank.");

  auto d = bench::make_meta_dataset(
      "Medium", static_cast<std::size_t>(4000 * scale), 31);

  auto params = bench::standard_closet_params();
  params.thresholds = {0.95, 0.92, 0.90, 0.85, 0.80, 0.75, 0.70};
  params.cmin = 0.5;
  closet::Closet cl(params);
  const auto result = cl.run(d.sample.reads);

  // Truth labels per rank.
  const std::size_t ranks = d.taxonomy.num_ranks();
  std::vector<std::vector<std::uint32_t>> truth(ranks);
  for (std::size_t rank = 1; rank < ranks; ++rank) {
    truth[rank].reserve(d.sample.species_of.size());
    for (const auto s : d.sample.species_of) {
      truth[rank].push_back(static_cast<std::uint32_t>(
          d.taxonomy.ancestor_at_rank(s, rank)));
    }
  }

  util::Table table({"Threshold", "Clusters", "ARI vs phylum",
                     "ARI vs genus", "ARI vs species"});
  for (const auto& level : result.levels) {
    const auto labels = closet::Closet::to_partition(
        level.clusters, d.sample.reads.size());
    std::vector<std::string> row{
        util::Table::percent(level.threshold, 0),
        util::Table::num(level.resulting_clusters)};
    for (std::size_t rank = 1; rank < ranks; ++rank) {
      row.push_back(util::Table::fixed(
          eval::adjusted_rand_index(labels, truth[rank]).ari, 3));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  return 0;
}
