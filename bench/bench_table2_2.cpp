// Regenerates Table 2.2: mapping each dataset to its genome with the
// RMAP-like mismatch mapper (unique / ambiguous percentages).

#include <algorithm>

#include "bench_common.hpp"
#include "mapper/mismatch_mapper.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.35);
  bench::print_header(
      "Table 2.2 — Mapping each dataset to its genome (RMAP analog)",
      "Allowed mismatches follow the paper: 5 for 36bp, 10 for 47bp, "
      "10/15 for 101bp reads.");

  util::Table table({"Data", "Allowed mm", "Number of reads",
                     "Uniquely mapped", "Ambiguously mapped", "Unmapped"});
  const auto specs = sim::chapter2_specs(scale);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto d = sim::make_dataset(specs[i], 42);
    std::vector<int> budgets;
    if (specs[i].read_config.read_length <= 36) {
      budgets = {5};
    } else if (specs[i].read_config.read_length <= 47) {
      budgets = {10};
    } else {
      budgets = {10, 15};
    }
    for (const int mm : budgets) {
      const int seed_len = std::clamp(
          mapper::MismatchMapper::seed_length_for(
              specs[i].read_config.read_length, mm),
          6, 12);
      mapper::MismatchMapper m(d.genome.sequence, seed_len);
      const auto stats = mapper::map_read_set(m, d.sim.reads, mm);
      const double n = static_cast<double>(stats.total);
      table.add_row({specs[i].name, std::to_string(mm),
                     util::Table::num(stats.total),
                     util::Table::percent(stats.unique / n),
                     util::Table::percent(stats.ambiguous / n),
                     util::Table::percent(stats.unmapped / n)});
    }
  }
  table.print(std::cout);
  return 0;
}
