// Regenerates Table 3.1: the Chapter 3 experimental datasets — synthetic
// genomes with 20/50/80% repeat span (D1-D3), N. meningitidis-like and
// maize-like repeat-rich analogs (D4-D5), and a low-repeat E. coli-like
// run (D6).

#include "bench_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header("Table 3.1 — Chapter 3 experimental datasets", "");

  util::Table table({"Dataset", "Genome", "Genome length", "Repeat span",
                     "Coverage", "Number of reads", "Error rate"});
  for (const auto& spec : sim::chapter3_specs(scale)) {
    const auto d = sim::make_dataset(spec, 7);
    table.add_row({spec.name, spec.genome_label,
                   util::Table::num(d.genome.sequence.size()),
                   util::Table::percent(d.genome.repeat_fraction, 0),
                   util::Table::fixed(spec.read_config.coverage, 0) + "x",
                   util::Table::num(d.sim.reads.size()),
                   util::Table::percent(d.sim.realized_error_rate())});
  }
  table.print(std::cout);
  return 0;
}
