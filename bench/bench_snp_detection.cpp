// Extension bench — SNP-vs-error separation (Chapter 5, direction 1):
// on diploid data, report the precision/recall of Reptile's
// ambiguity-based SNP candidates across the support gate, and verify
// correction leaves heterozygous sites intact (the failure the chapter
// warns about: a corrector that "fixes" the rarer allele).

#include "bench_common.hpp"

#include <set>

#include "eval/correction_metrics.hpp"
#include "reptile/corrector.hpp"
#include "reptile/polymorphism.hpp"
#include "sim/diploid.hpp"
#include "sim/genome.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Extension — SNP candidate detection from tile ambiguities",
      "Diploid simulation, heterozygous SNPs every >= 50 bp.");

  util::Rng rng(61);
  sim::GenomeSpec gspec;
  gspec.length = static_cast<std::size_t>(60000 * scale);
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.006);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 60.0;
  const auto sample =
      sim::simulate_diploid(genome.sequence, 0.0015, 50, model, cfg, rng);
  std::cout << "planted SNPs: " << sample.snp_positions.size() << ", reads: "
            << sample.reads.reads.size() << "\n\n";

  reptile::ReptileParams params;
  params.k = 11;
  params.c_min = 3;
  params.c_good = 10;
  reptile::ReptileCorrector corrector(sample.reads.reads, params);
  const int T = params.tile_length();
  const std::set<std::size_t> truth(sample.snp_positions.begin(),
                                    sample.snp_positions.end());

  // Precision/recall across the support gate.
  util::Table table({"min_support", "Candidates", "Precision", "SNPs hit",
                     "Recall"});
  for (const std::uint32_t support : {3u, 5u, 8u, 12u}) {
    reptile::SnpParams sp;
    sp.min_support = support;
    const auto candidates = reptile::detect_polymorphisms(corrector, sp);
    std::size_t correct = 0;
    std::set<std::size_t> hit_snps;
    for (const auto& cand : candidates) {
      const std::string sa = seq::decode_kmer(cand.tile_a, T);
      bool anchored = false;
      for (const auto& s : {sa, seq::reverse_complement(sa)}) {
        for (const auto* hap :
             {&sample.haplotype_a, &sample.haplotype_b}) {
          for (auto pos = hap->find(s); pos != std::string::npos;
               pos = hap->find(s, pos + 1)) {
            for (int o = 0; o < T; ++o) {
              const auto site = pos + static_cast<std::size_t>(o);
              if (truth.count(site) != 0) {
                anchored = true;
                hit_snps.insert(site);
              }
            }
          }
        }
      }
      correct += anchored;
    }
    table.add_row(
        {std::to_string(support), util::Table::num(candidates.size()),
         candidates.empty()
             ? "-"
             : util::Table::percent(static_cast<double>(correct) /
                                    static_cast<double>(candidates.size())),
         util::Table::num(hit_snps.size()),
         util::Table::percent(static_cast<double>(hit_snps.size()) /
                              static_cast<double>(truth.size()))});
  }
  table.print(std::cout);

  // Correction must preserve heterozygous bases: count reads whose SNP
  // allele was rewritten toward the other haplotype.
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(sample.reads.reads, stats);
  std::uint64_t allele_flips = 0, allele_sites = 0;
  for (std::size_t i = 0; i < corrected.size(); ++i) {
    const auto& truth_read = sample.reads.reads.truth[i];
    for (std::size_t p = 0; p < corrected[i].bases.size(); ++p) {
      // Position in genome coordinates.
      const std::size_t gpos =
          truth_read.reverse_strand
              ? truth_read.genome_pos + corrected[i].bases.size() - 1 - p
              : truth_read.genome_pos + p;
      if (truth.count(gpos) == 0) continue;
      ++allele_sites;
      if (corrected[i].bases[p] != sample.reads.reads.reads[i].bases[p] &&
          sample.reads.reads.reads[i].bases[p] ==
              truth_read.true_bases[p]) {
        ++allele_flips;
      }
    }
  }
  std::cout << "\nHeterozygous-site preservation: " << allele_flips
            << " correct alleles rewritten out of " << allele_sites
            << " allele observations ("
            << util::Table::percent(
                   allele_sites == 0
                       ? 0.0
                       : static_cast<double>(allele_flips) /
                             static_cast<double>(allele_sites),
                   3)
            << ")\n";
  return 0;
}
