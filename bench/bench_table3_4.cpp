// Regenerates Table 3.4: error-correction comparison of SHREC, Reptile,
// and REDEEM on the synthetic repeat datasets D1 (20%), D2 (50%), D3
// (80%). Expected shape (the chapter's central claim): SHREC/Reptile win
// at low repeat content, REDEEM overtakes as repeats dominate, with the
// crossover around D2; REDEEM costs the most CPU.

#include "bench_common.hpp"

#include "eval/correction_metrics.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.5);
  bench::print_header(
      "Table 3.4 — Error correction results on repeat-rich genomes",
      "D1/D2/D3 span 20/50/80% repeats.");

  util::Table table({"Data", "Method", "Sensitivity", "Specificity", "Gain",
                     "CPU(s)", "Mem(GB)"});

  auto specs = sim::chapter3_specs(scale);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto d = sim::make_dataset(specs[i], 7);

    {
      shrec::ShrecParams sp;
      sp.genome_length = d.genome.sequence.size();
      shrec::ShrecCorrector corrector(sp);
      shrec::ShrecStats stats;
      util::Timer timer;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, corrected);
      table.add_row({specs[i].name, "SHREC",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1),
                     bench::mem_gb()});
    }
    {
      auto params =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      util::Timer timer;
      reptile::ReptileCorrector corrector(d.sim.reads, params);
      reptile::CorrectionStats stats;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, corrected);
      table.add_row({specs[i].name, "Reptile (adaptive)",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1),
                     bench::mem_gb()});
    }
    {
      // Reptile with parameters tuned for a *non-repetitive* genome (the
      // paper ran default settings): repeat-shadow error tiles exceed the
      // fixed Cg and auto-validate — the failure mode that motivates
      // REDEEM in the first place.
      reptile::ReptileParams params;
      params.k = 11;
      params.c_good = 12;
      params.c_min = 4;
      params.quality_cutoff = 15;
      util::Timer timer;
      reptile::ReptileCorrector corrector(d.sim.reads, params);
      reptile::CorrectionStats stats;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, corrected);
      table.add_row({specs[i].name, "Reptile (fixed)",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1),
                     bench::mem_gb()});
    }
    {
      util::Timer timer;
      const auto spectrum =
          kspec::KSpectrum::build(d.sim.reads, 11, /*both_strands=*/false);
      const auto q = redeem::kmer_error_matrices(
          redeem::ErrorDistKind::kTrueIllumina, 11, d.model);
      const redeem::RedeemModel model(spectrum, q, {});
      redeem::RedeemCorrector corrector(model, {});
      redeem::RedeemCorrectionStats stats;
      const auto corrected = corrector.correct_all(d.sim.reads, stats);
      const auto m = eval::evaluate_correction(d.sim.reads, corrected);
      table.add_row({specs[i].name, "REDEEM",
                     util::Table::percent(m.sensitivity()),
                     util::Table::percent(m.specificity()),
                     util::Table::percent(m.gain()),
                     util::Table::fixed(timer.seconds(), 1),
                     bench::mem_gb()});
    }
  }
  table.print(std::cout);
  return 0;
}
