// Extension bench — the full corrector landscape the dissertation
// surveys, side by side: SAP (Pevzner/Chaisson), HiTEC, SHREC, Reptile,
// REDEEM, and the Sec. 3.5 hybrid, on a low-repeat dataset (Ch. 2
// regime) and a high-repeat one (Ch. 3 regime).

#include "bench_common.hpp"

#include "baselines/hitec.hpp"
#include "baselines/sap.hpp"
#include "eval/correction_metrics.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/hybrid.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"

using namespace ngs;

namespace {

void report(util::Table& table, const std::string& data,
            const std::string& method, const sim::Dataset& d,
            const std::vector<seq::Read>& corrected, double seconds) {
  const auto m = eval::evaluate_correction(d.sim.reads, corrected);
  table.add_row({data, method, util::Table::percent(m.sensitivity()),
                 util::Table::percent(m.specificity()),
                 util::Table::percent(m.gain()),
                 util::Table::fixed(m.eba() * 100.0, 3),
                 util::Table::fixed(seconds, 1)});
}

}  // namespace

int main() {
  const double scale = bench::scale_or(0.2);
  bench::print_header(
      "Extension — corrector landscape (SAP / HiTEC / SHREC / Reptile / "
      "REDEEM / Hybrid)",
      "Low-repeat: Chapter 2 D2 analog. High-repeat: Chapter 3 D3 analog "
      "(80% repeat span).");

  util::Table table({"Data", "Method", "Sens", "Spec", "Gain", "EBA(%)",
                     "CPU(s)"});

  const auto low = sim::make_dataset(sim::chapter2_specs(scale)[1], 42);
  const auto high = sim::make_dataset(sim::chapter3_specs(scale)[2], 7);

  for (const auto* dp : {&low, &high}) {
    const auto& d = *dp;
    const std::string label = dp == &low ? "low-repeat" : "high-repeat";
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, 11, d.model);

    {
      baselines::SapParams p;
      p.k = 11;
      util::Timer t;
      baselines::SapCorrector c(d.sim.reads, p);
      baselines::SapStats stats;
      report(table, label, "SAP", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
    {
      baselines::HitecParams p;
      p.k = 11;
      util::Timer t;
      baselines::HitecCorrector c(d.sim.reads, p);
      baselines::HitecStats stats;
      report(table, label, "HiTEC", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
    {
      shrec::ShrecParams p;
      p.genome_length = d.genome.sequence.size();
      util::Timer t;
      shrec::ShrecCorrector c(p);
      shrec::ShrecStats stats;
      report(table, label, "SHREC", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
    {
      util::Timer t;
      const auto params =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      reptile::ReptileCorrector c(d.sim.reads, params);
      reptile::CorrectionStats stats;
      report(table, label, "Reptile", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
    {
      util::Timer t;
      const auto spectrum = kspec::KSpectrum::build(d.sim.reads, 11, false);
      const redeem::RedeemModel model(spectrum, q, {});
      redeem::RedeemCorrector c(model, {});
      redeem::RedeemCorrectionStats stats;
      report(table, label, "REDEEM", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
    {
      util::Timer t;
      redeem::HybridParams p;
      p.reptile =
          reptile::select_parameters(d.sim.reads, d.genome.sequence.size());
      redeem::HybridCorrector c(q, p);
      redeem::HybridStats stats;
      report(table, label, "Hybrid", d, c.correct_all(d.sim.reads, stats),
             t.seconds());
    }
  }
  table.print(std::cout);
  return 0;
}
