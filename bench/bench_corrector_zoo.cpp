// Extension bench — the full corrector landscape the dissertation
// surveys, side by side: SAP (Pevzner/Chaisson), HiTEC, SHREC, Reptile,
// REDEEM, and the Sec. 3.5 hybrid, on a low-repeat dataset (Ch. 2
// regime) and a high-repeat one (Ch. 3 regime). Every method is
// instantiated through core::make_corrector — adding a corrector to the
// registry adds a row here.

#include "bench_common.hpp"

#include "core/registry.hpp"
#include "eval/correction_metrics.hpp"

using namespace ngs;

namespace {

/// Row order and kmer override per method (0 = method default /
/// data-driven selection). Data, not dispatch: construction goes through
/// the registry.
struct ZooEntry {
  const char* name;
  const char* display;
  int k;
};

constexpr ZooEntry kZoo[] = {
    {"sap", "SAP", 11},     {"hitec", "HiTEC", 11}, {"shrec", "SHREC", 0},
    {"reptile", "Reptile", 0}, {"redeem", "REDEEM", 11}, {"hybrid", "Hybrid", 0},
};

void report(util::Table& table, const std::string& data,
            const std::string& method, const sim::Dataset& d,
            const std::vector<seq::Read>& corrected, double seconds) {
  const auto m = eval::evaluate_correction(d.sim.reads, corrected);
  table.add_row({data, method, util::Table::percent(m.sensitivity()),
                 util::Table::percent(m.specificity()),
                 util::Table::percent(m.gain()),
                 util::Table::fixed(m.eba() * 100.0, 3),
                 util::Table::fixed(seconds, 1)});
}

}  // namespace

int main() {
  const double scale = bench::scale_or(0.2);
  bench::print_header(
      "Extension — corrector landscape (SAP / HiTEC / SHREC / Reptile / "
      "REDEEM / Hybrid)",
      "Low-repeat: Chapter 2 D2 analog. High-repeat: Chapter 3 D3 analog "
      "(80% repeat span).");

  util::Table table({"Data", "Method", "Sens", "Spec", "Gain", "EBA(%)",
                     "CPU(s)"});

  const auto low = sim::make_dataset(sim::chapter2_specs(scale)[1], 42);
  const auto high = sim::make_dataset(sim::chapter3_specs(scale)[2], 7);

  for (const auto* dp : {&low, &high}) {
    const auto& d = *dp;
    const std::string label = dp == &low ? "low-repeat" : "high-repeat";
    for (const auto& entry : kZoo) {
      core::CorrectorConfig config;
      config.genome_length = d.genome.sequence.size();
      config.k = entry.k;
      config.error_model = d.model;
      util::Timer t;
      auto corrector = core::make_corrector(entry.name, config);
      corrector->build(d.sim.reads);
      core::CorrectionReport rep;
      report(table, label, entry.display, d,
             corrector->correct_all(d.sim.reads, rep), t.seconds());
    }
  }
  table.print(std::cout);
  return 0;
}
