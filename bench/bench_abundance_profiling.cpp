// Extension bench — the quantification task that motivates Chapter 4
// (Sec. 4.1): estimate taxonomic-unit abundances from cluster sizes and
// compare against the simulated truth, across clustering thresholds.
// Reported: total-variation error of the matched per-species profile and
// Bray-Curtis dissimilarity of the rank-abundance curves.

#include "bench_common.hpp"
#include "closet_common.hpp"

#include "eval/abundance.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(1.0);
  bench::print_header(
      "Extension — species abundance profiling from CLOSET clusters",
      "Total variation: 0 = exact quantification; Bray-Curtis on "
      "rank-abundance curves.");

  const auto d = bench::make_meta_dataset(
      "profiling", static_cast<std::size_t>(5000 * scale), 71);

  auto params = bench::standard_closet_params();
  params.thresholds = {0.95, 0.90, 0.85, 0.80};
  params.cmin = 0.5;
  closet::Closet cl(params);
  const auto result = cl.run(d.sample.reads);

  const auto true_profile = eval::abundance_profile(d.sample.species_of);

  util::Table table({"Threshold", "Clusters", "TV error vs species",
                     "Bray-Curtis (rank curves)"});
  for (const auto& level : result.levels) {
    const auto labels = closet::Closet::to_partition(
        level.clusters, d.sample.reads.size());
    table.add_row(
        {util::Table::percent(level.threshold, 0),
         util::Table::num(level.resulting_clusters),
         util::Table::fixed(
             eval::matched_abundance_error(labels, d.sample.species_of), 3),
         util::Table::fixed(
             eval::bray_curtis(eval::abundance_profile(labels),
                               true_profile),
             3)});
  }
  table.print(std::cout);
  std::cout << "\nSpecies present: "
            << util::Table::num(true_profile.size())
            << "; most abundant species holds "
            << util::Table::percent(true_profile.front())
            << " of the sample.\n";
  return 0;
}
