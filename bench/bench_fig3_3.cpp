// Regenerates Figure 3.3: histogram of REDEEM-estimated attempts T_l on
// the E. coli-like dataset (D6). Expected shape: a spike of erroneous
// kmers near zero-to-one, a dominant genomic peak near the kmer
// coverage, and a small alpha=2 shoulder at twice that.

#include "bench_common.hpp"

#include "kspec/kspectrum.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.25);
  bench::print_header("Figure 3.3 — Histogram of estimated T_l (E. coli-like)",
                      "ASCII bars, 40 bins.");

  const auto spec = sim::chapter3_specs(scale)[5];  // D6
  const auto d = sim::make_dataset(spec, 7);
  const auto spectrum = kspec::KSpectrum::build(d.sim.reads, 11, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, d.model);
  const redeem::RedeemModel model(spectrum, q, {});

  const auto& t = model.estimates();
  // Display range: past the alpha=2 shoulder at twice the genomic peak
  // (the 96th percentile of distinct-kmer T sits inside the alpha=1
  // peak), without letting rare high-copy repeats stretch the axis.
  std::vector<double> sorted = t;
  std::sort(sorted.begin(), sorted.end());
  double max_t = 2.4 * sorted[sorted.size() * 96 / 100];
  max_t = std::max(max_t, 1.0);
  constexpr int kBins = 40;
  std::vector<std::uint64_t> bins(kBins, 0);
  for (const double v : t) {
    const int b = std::min(
        kBins - 1, static_cast<int>(v / max_t * kBins));
    ++bins[static_cast<std::size_t>(b)];
  }
  std::uint64_t peak = 1;
  for (const auto b : bins) peak = std::max(peak, b);

  util::Table table({"T_l range", "Count", "Histogram"});
  for (int b = 0; b < kBins; ++b) {
    const double lo = max_t * b / kBins;
    const double hi = max_t * (b + 1) / kBins;
    const auto width = static_cast<std::size_t>(
        60.0 * static_cast<double>(bins[static_cast<std::size_t>(b)]) /
        static_cast<double>(peak));
    table.add_row({util::Table::fixed(lo, 1) + "-" + util::Table::fixed(hi, 1),
                   util::Table::num(bins[static_cast<std::size_t>(b)]),
                   std::string(width, '#')});
  }
  table.print(std::cout);
  return 0;
}
