// Regenerates Figure 2.3: Gain and Sensitivity of Reptile on the D3
// analog across the paper's 12 parameter settings — 11 points with
// k=11, d=1, |t|=22 and a (Cm, Qc) ladder, plus a final point with
// k=12, d=2, |t|=24, Cm=8, Qc=45.
//
// Expected shape: both curves rise as (Cm, Qc) relax; Gain dips at the
// most permissive settings where miscorrections start to bite.

#include "bench_common.hpp"

#include "eval/correction_metrics.hpp"
#include "reptile/corrector.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.3);
  bench::print_header(
      "Figure 2.3 — Gain and Sensitivity vs parameter choices (D3)",
      "Quality cutoffs are mapped from the paper's Solexa-64 scale to "
      "Phred: Qc' = Qc - 31.");

  const auto spec = sim::chapter2_specs(scale)[2];  // D3
  const auto d = sim::make_dataset(spec, 42);

  struct Point {
    int k;
    int dd;
    std::uint32_t cm;
    int qc_solexa;
  };
  const std::vector<Point> points = {
      {11, 1, 14, 60}, {11, 1, 12, 60}, {11, 1, 10, 60}, {11, 1, 10, 55},
      {11, 1, 8, 60},  {11, 1, 8, 55},  {11, 1, 8, 50},  {11, 1, 8, 45},
      {11, 1, 7, 45},  {11, 1, 6, 45},  {11, 1, 5, 45},  {12, 2, 8, 45},
  };

  util::Table table({"Point", "k", "d", "|t|", "Cm", "Qc", "Sensitivity",
                     "Gain"});
  int idx = 1;
  for (const auto& p : points) {
    reptile::ReptileParams params;
    params.k = p.k;
    params.d = p.dd;
    params.c_min = p.cm;
    params.c_good = std::max<std::uint32_t>(p.cm * 3, 12);
    params.quality_cutoff = std::max(2, p.qc_solexa - 31);
    params.quality_max = params.quality_cutoff + 15;
    reptile::ReptileCorrector corrector(d.sim.reads, params);
    reptile::CorrectionStats stats;
    const auto corrected = corrector.correct_all(d.sim.reads, stats);
    const auto m = eval::evaluate_correction(d.sim.reads, corrected);
    table.add_row({std::to_string(idx++), std::to_string(p.k),
                   std::to_string(p.dd), std::to_string(2 * p.k),
                   std::to_string(p.cm), std::to_string(p.qc_solexa),
                   util::Table::fixed(m.sensitivity(), 2),
                   util::Table::fixed(m.gain(), 2)});
  }
  table.print(std::cout);
  return 0;
}
