// Regenerates Table 3.3: minimum FP+FN over all thresholds, comparing
// thresholding on observed occurrences Y against thresholding on the
// REDEEM-estimated attempts T under each error distribution. Expected
// shape: T beats Y (bold in the paper), with the margin growing with
// repeat content and shrinking for wrong error distributions.

#include "bench_common.hpp"
#include "redeem_common.hpp"

using namespace ngs;

int main() {
  const double scale = bench::scale_or(0.25);
  bench::print_header(
      "Table 3.3 — Minimum wrong predictions (FP+FN): Y vs REDEEM T",
      "Asterisk marks where the model beats raw-count thresholding.");

  util::Table table(
      {"Data", "Y", "tIED", "wIED", "tUED", "wUED"});
  for (const auto& spec : sim::chapter3_specs(scale)) {
    const auto d = sim::make_dataset(spec, 7);
    const auto sweeps = bench::run_redeem_sweeps(d, 11);
    const auto y_best = eval::best_point(sweeps.observed).wrong();
    std::vector<std::string> row{spec.name, util::Table::num(y_best)};
    for (const char* name : {"tIED", "wIED", "tUED", "wUED"}) {
      const auto best = eval::best_point(sweeps.estimated.at(name)).wrong();
      row.push_back(util::Table::num(best) + (best < y_best ? "*" : ""));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  return 0;
}
