
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/repeat_aware_correction.cpp" "examples/CMakeFiles/repeat_aware_correction.dir/repeat_aware_correction.cpp.o" "gcc" "examples/CMakeFiles/repeat_aware_correction.dir/repeat_aware_correction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ngs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ngs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/ngs_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ngs_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/reptile/CMakeFiles/ngs_reptile.dir/DependInfo.cmake"
  "/root/repo/build/src/shrec/CMakeFiles/ngs_shrec.dir/DependInfo.cmake"
  "/root/repo/build/src/redeem/CMakeFiles/ngs_redeem.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ngs_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/closet/CMakeFiles/ngs_closet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
