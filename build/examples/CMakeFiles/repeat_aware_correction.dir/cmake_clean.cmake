file(REMOVE_RECURSE
  "CMakeFiles/repeat_aware_correction.dir/repeat_aware_correction.cpp.o"
  "CMakeFiles/repeat_aware_correction.dir/repeat_aware_correction.cpp.o.d"
  "repeat_aware_correction"
  "repeat_aware_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeat_aware_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
