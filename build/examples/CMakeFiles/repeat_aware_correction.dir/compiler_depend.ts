# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for repeat_aware_correction.
