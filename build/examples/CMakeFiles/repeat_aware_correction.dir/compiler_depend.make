# Empty compiler generated dependencies file for repeat_aware_correction.
# This may be replaced when dependencies are built.
