file(REMOVE_RECURSE
  "CMakeFiles/error_model_training.dir/error_model_training.cpp.o"
  "CMakeFiles/error_model_training.dir/error_model_training.cpp.o.d"
  "error_model_training"
  "error_model_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_model_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
