# Empty dependencies file for error_model_training.
# This may be replaced when dependencies are built.
