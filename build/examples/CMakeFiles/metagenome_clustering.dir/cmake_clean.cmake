file(REMOVE_RECURSE
  "CMakeFiles/metagenome_clustering.dir/metagenome_clustering.cpp.o"
  "CMakeFiles/metagenome_clustering.dir/metagenome_clustering.cpp.o.d"
  "metagenome_clustering"
  "metagenome_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
