# Empty compiler generated dependencies file for metagenome_clustering.
# This may be replaced when dependencies are built.
