file(REMOVE_RECURSE
  "libngs_io.a"
)
