# Empty compiler generated dependencies file for ngs_io.
# This may be replaced when dependencies are built.
