file(REMOVE_RECURSE
  "CMakeFiles/ngs_io.dir/fastx.cpp.o"
  "CMakeFiles/ngs_io.dir/fastx.cpp.o.d"
  "libngs_io.a"
  "libngs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
