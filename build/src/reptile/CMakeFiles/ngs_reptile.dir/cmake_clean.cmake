file(REMOVE_RECURSE
  "CMakeFiles/ngs_reptile.dir/corrector.cpp.o"
  "CMakeFiles/ngs_reptile.dir/corrector.cpp.o.d"
  "CMakeFiles/ngs_reptile.dir/params.cpp.o"
  "CMakeFiles/ngs_reptile.dir/params.cpp.o.d"
  "CMakeFiles/ngs_reptile.dir/polymorphism.cpp.o"
  "CMakeFiles/ngs_reptile.dir/polymorphism.cpp.o.d"
  "libngs_reptile.a"
  "libngs_reptile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_reptile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
