file(REMOVE_RECURSE
  "libngs_reptile.a"
)
