
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reptile/corrector.cpp" "src/reptile/CMakeFiles/ngs_reptile.dir/corrector.cpp.o" "gcc" "src/reptile/CMakeFiles/ngs_reptile.dir/corrector.cpp.o.d"
  "/root/repo/src/reptile/params.cpp" "src/reptile/CMakeFiles/ngs_reptile.dir/params.cpp.o" "gcc" "src/reptile/CMakeFiles/ngs_reptile.dir/params.cpp.o.d"
  "/root/repo/src/reptile/polymorphism.cpp" "src/reptile/CMakeFiles/ngs_reptile.dir/polymorphism.cpp.o" "gcc" "src/reptile/CMakeFiles/ngs_reptile.dir/polymorphism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
