# Empty compiler generated dependencies file for ngs_reptile.
# This may be replaced when dependencies are built.
