# CMake generated Testfile for 
# Source directory: /root/repo/src/reptile
# Build directory: /root/repo/build/src/reptile
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
