file(REMOVE_RECURSE
  "CMakeFiles/ngs_assembly.dir/debruijn.cpp.o"
  "CMakeFiles/ngs_assembly.dir/debruijn.cpp.o.d"
  "libngs_assembly.a"
  "libngs_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
