# Empty dependencies file for ngs_assembly.
# This may be replaced when dependencies are built.
