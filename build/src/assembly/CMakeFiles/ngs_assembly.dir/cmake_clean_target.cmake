file(REMOVE_RECURSE
  "libngs_assembly.a"
)
