file(REMOVE_RECURSE
  "CMakeFiles/ngs_kspec.dir/chunked_builder.cpp.o"
  "CMakeFiles/ngs_kspec.dir/chunked_builder.cpp.o.d"
  "CMakeFiles/ngs_kspec.dir/hamming_graph.cpp.o"
  "CMakeFiles/ngs_kspec.dir/hamming_graph.cpp.o.d"
  "CMakeFiles/ngs_kspec.dir/kspectrum.cpp.o"
  "CMakeFiles/ngs_kspec.dir/kspectrum.cpp.o.d"
  "CMakeFiles/ngs_kspec.dir/neighborhood.cpp.o"
  "CMakeFiles/ngs_kspec.dir/neighborhood.cpp.o.d"
  "CMakeFiles/ngs_kspec.dir/tile_table.cpp.o"
  "CMakeFiles/ngs_kspec.dir/tile_table.cpp.o.d"
  "libngs_kspec.a"
  "libngs_kspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_kspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
