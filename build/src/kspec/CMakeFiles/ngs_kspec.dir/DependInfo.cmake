
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kspec/chunked_builder.cpp" "src/kspec/CMakeFiles/ngs_kspec.dir/chunked_builder.cpp.o" "gcc" "src/kspec/CMakeFiles/ngs_kspec.dir/chunked_builder.cpp.o.d"
  "/root/repo/src/kspec/hamming_graph.cpp" "src/kspec/CMakeFiles/ngs_kspec.dir/hamming_graph.cpp.o" "gcc" "src/kspec/CMakeFiles/ngs_kspec.dir/hamming_graph.cpp.o.d"
  "/root/repo/src/kspec/kspectrum.cpp" "src/kspec/CMakeFiles/ngs_kspec.dir/kspectrum.cpp.o" "gcc" "src/kspec/CMakeFiles/ngs_kspec.dir/kspectrum.cpp.o.d"
  "/root/repo/src/kspec/neighborhood.cpp" "src/kspec/CMakeFiles/ngs_kspec.dir/neighborhood.cpp.o" "gcc" "src/kspec/CMakeFiles/ngs_kspec.dir/neighborhood.cpp.o.d"
  "/root/repo/src/kspec/tile_table.cpp" "src/kspec/CMakeFiles/ngs_kspec.dir/tile_table.cpp.o" "gcc" "src/kspec/CMakeFiles/ngs_kspec.dir/tile_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
