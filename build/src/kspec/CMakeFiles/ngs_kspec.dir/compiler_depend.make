# Empty compiler generated dependencies file for ngs_kspec.
# This may be replaced when dependencies are built.
