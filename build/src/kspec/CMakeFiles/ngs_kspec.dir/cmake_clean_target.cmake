file(REMOVE_RECURSE
  "libngs_kspec.a"
)
