# Empty compiler generated dependencies file for ngs_mapper.
# This may be replaced when dependencies are built.
