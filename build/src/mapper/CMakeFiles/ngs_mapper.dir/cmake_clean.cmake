file(REMOVE_RECURSE
  "CMakeFiles/ngs_mapper.dir/mismatch_mapper.cpp.o"
  "CMakeFiles/ngs_mapper.dir/mismatch_mapper.cpp.o.d"
  "CMakeFiles/ngs_mapper.dir/packed_sequence.cpp.o"
  "CMakeFiles/ngs_mapper.dir/packed_sequence.cpp.o.d"
  "libngs_mapper.a"
  "libngs_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
