file(REMOVE_RECURSE
  "libngs_mapper.a"
)
