file(REMOVE_RECURSE
  "CMakeFiles/ngs_util.dir/cli.cpp.o"
  "CMakeFiles/ngs_util.dir/cli.cpp.o.d"
  "CMakeFiles/ngs_util.dir/memory.cpp.o"
  "CMakeFiles/ngs_util.dir/memory.cpp.o.d"
  "CMakeFiles/ngs_util.dir/rng.cpp.o"
  "CMakeFiles/ngs_util.dir/rng.cpp.o.d"
  "CMakeFiles/ngs_util.dir/stats.cpp.o"
  "CMakeFiles/ngs_util.dir/stats.cpp.o.d"
  "CMakeFiles/ngs_util.dir/table.cpp.o"
  "CMakeFiles/ngs_util.dir/table.cpp.o.d"
  "CMakeFiles/ngs_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ngs_util.dir/thread_pool.cpp.o.d"
  "libngs_util.a"
  "libngs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
