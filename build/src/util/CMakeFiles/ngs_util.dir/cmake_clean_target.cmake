file(REMOVE_RECURSE
  "libngs_util.a"
)
