# Empty compiler generated dependencies file for ngs_util.
# This may be replaced when dependencies are built.
