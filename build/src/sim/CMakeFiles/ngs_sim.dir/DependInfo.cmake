
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datasets.cpp" "src/sim/CMakeFiles/ngs_sim.dir/datasets.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/datasets.cpp.o.d"
  "/root/repo/src/sim/diploid.cpp" "src/sim/CMakeFiles/ngs_sim.dir/diploid.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/diploid.cpp.o.d"
  "/root/repo/src/sim/error_model.cpp" "src/sim/CMakeFiles/ngs_sim.dir/error_model.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/error_model.cpp.o.d"
  "/root/repo/src/sim/genome.cpp" "src/sim/CMakeFiles/ngs_sim.dir/genome.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/genome.cpp.o.d"
  "/root/repo/src/sim/metagenome.cpp" "src/sim/CMakeFiles/ngs_sim.dir/metagenome.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/metagenome.cpp.o.d"
  "/root/repo/src/sim/read_sim.cpp" "src/sim/CMakeFiles/ngs_sim.dir/read_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ngs_sim.dir/read_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
