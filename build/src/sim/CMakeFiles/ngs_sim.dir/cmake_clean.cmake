file(REMOVE_RECURSE
  "CMakeFiles/ngs_sim.dir/datasets.cpp.o"
  "CMakeFiles/ngs_sim.dir/datasets.cpp.o.d"
  "CMakeFiles/ngs_sim.dir/diploid.cpp.o"
  "CMakeFiles/ngs_sim.dir/diploid.cpp.o.d"
  "CMakeFiles/ngs_sim.dir/error_model.cpp.o"
  "CMakeFiles/ngs_sim.dir/error_model.cpp.o.d"
  "CMakeFiles/ngs_sim.dir/genome.cpp.o"
  "CMakeFiles/ngs_sim.dir/genome.cpp.o.d"
  "CMakeFiles/ngs_sim.dir/metagenome.cpp.o"
  "CMakeFiles/ngs_sim.dir/metagenome.cpp.o.d"
  "CMakeFiles/ngs_sim.dir/read_sim.cpp.o"
  "CMakeFiles/ngs_sim.dir/read_sim.cpp.o.d"
  "libngs_sim.a"
  "libngs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
