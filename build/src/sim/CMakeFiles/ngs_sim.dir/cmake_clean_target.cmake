file(REMOVE_RECURSE
  "libngs_sim.a"
)
