# Empty dependencies file for ngs_sim.
# This may be replaced when dependencies are built.
