file(REMOVE_RECURSE
  "libngs_shrec.a"
)
