file(REMOVE_RECURSE
  "CMakeFiles/ngs_shrec.dir/shrec.cpp.o"
  "CMakeFiles/ngs_shrec.dir/shrec.cpp.o.d"
  "libngs_shrec.a"
  "libngs_shrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_shrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
