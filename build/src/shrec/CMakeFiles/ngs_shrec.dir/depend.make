# Empty dependencies file for ngs_shrec.
# This may be replaced when dependencies are built.
