# Empty dependencies file for ngs_baselines.
# This may be replaced when dependencies are built.
