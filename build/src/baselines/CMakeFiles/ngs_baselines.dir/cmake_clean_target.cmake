file(REMOVE_RECURSE
  "libngs_baselines.a"
)
