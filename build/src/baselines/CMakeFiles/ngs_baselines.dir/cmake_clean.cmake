file(REMOVE_RECURSE
  "CMakeFiles/ngs_baselines.dir/freclu.cpp.o"
  "CMakeFiles/ngs_baselines.dir/freclu.cpp.o.d"
  "CMakeFiles/ngs_baselines.dir/hitec.cpp.o"
  "CMakeFiles/ngs_baselines.dir/hitec.cpp.o.d"
  "CMakeFiles/ngs_baselines.dir/qmer.cpp.o"
  "CMakeFiles/ngs_baselines.dir/qmer.cpp.o.d"
  "CMakeFiles/ngs_baselines.dir/sap.cpp.o"
  "CMakeFiles/ngs_baselines.dir/sap.cpp.o.d"
  "libngs_baselines.a"
  "libngs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
