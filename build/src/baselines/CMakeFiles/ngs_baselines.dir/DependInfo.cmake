
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/freclu.cpp" "src/baselines/CMakeFiles/ngs_baselines.dir/freclu.cpp.o" "gcc" "src/baselines/CMakeFiles/ngs_baselines.dir/freclu.cpp.o.d"
  "/root/repo/src/baselines/hitec.cpp" "src/baselines/CMakeFiles/ngs_baselines.dir/hitec.cpp.o" "gcc" "src/baselines/CMakeFiles/ngs_baselines.dir/hitec.cpp.o.d"
  "/root/repo/src/baselines/qmer.cpp" "src/baselines/CMakeFiles/ngs_baselines.dir/qmer.cpp.o" "gcc" "src/baselines/CMakeFiles/ngs_baselines.dir/qmer.cpp.o.d"
  "/root/repo/src/baselines/sap.cpp" "src/baselines/CMakeFiles/ngs_baselines.dir/sap.cpp.o" "gcc" "src/baselines/CMakeFiles/ngs_baselines.dir/sap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
