
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/abundance.cpp" "src/eval/CMakeFiles/ngs_eval.dir/abundance.cpp.o" "gcc" "src/eval/CMakeFiles/ngs_eval.dir/abundance.cpp.o.d"
  "/root/repo/src/eval/ari.cpp" "src/eval/CMakeFiles/ngs_eval.dir/ari.cpp.o" "gcc" "src/eval/CMakeFiles/ngs_eval.dir/ari.cpp.o.d"
  "/root/repo/src/eval/correction_metrics.cpp" "src/eval/CMakeFiles/ngs_eval.dir/correction_metrics.cpp.o" "gcc" "src/eval/CMakeFiles/ngs_eval.dir/correction_metrics.cpp.o.d"
  "/root/repo/src/eval/kmer_classification.cpp" "src/eval/CMakeFiles/ngs_eval.dir/kmer_classification.cpp.o" "gcc" "src/eval/CMakeFiles/ngs_eval.dir/kmer_classification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
