# Empty dependencies file for ngs_eval.
# This may be replaced when dependencies are built.
