file(REMOVE_RECURSE
  "libngs_eval.a"
)
