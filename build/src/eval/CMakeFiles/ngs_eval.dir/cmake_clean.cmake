file(REMOVE_RECURSE
  "CMakeFiles/ngs_eval.dir/abundance.cpp.o"
  "CMakeFiles/ngs_eval.dir/abundance.cpp.o.d"
  "CMakeFiles/ngs_eval.dir/ari.cpp.o"
  "CMakeFiles/ngs_eval.dir/ari.cpp.o.d"
  "CMakeFiles/ngs_eval.dir/correction_metrics.cpp.o"
  "CMakeFiles/ngs_eval.dir/correction_metrics.cpp.o.d"
  "CMakeFiles/ngs_eval.dir/kmer_classification.cpp.o"
  "CMakeFiles/ngs_eval.dir/kmer_classification.cpp.o.d"
  "libngs_eval.a"
  "libngs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
