# Empty compiler generated dependencies file for ngs_mapreduce.
# This may be replaced when dependencies are built.
