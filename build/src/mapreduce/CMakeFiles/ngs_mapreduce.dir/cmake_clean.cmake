file(REMOVE_RECURSE
  "CMakeFiles/ngs_mapreduce.dir/block_store.cpp.o"
  "CMakeFiles/ngs_mapreduce.dir/block_store.cpp.o.d"
  "libngs_mapreduce.a"
  "libngs_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
