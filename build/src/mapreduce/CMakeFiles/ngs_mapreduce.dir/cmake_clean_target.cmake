file(REMOVE_RECURSE
  "libngs_mapreduce.a"
)
