# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("seq")
subdirs("io")
subdirs("sim")
subdirs("kspec")
subdirs("mapper")
subdirs("reptile")
subdirs("shrec")
subdirs("redeem")
subdirs("mapreduce")
subdirs("closet")
subdirs("eval")
subdirs("assembly")
subdirs("baselines")
