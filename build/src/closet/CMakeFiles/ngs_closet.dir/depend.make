# Empty dependencies file for ngs_closet.
# This may be replaced when dependencies are built.
