file(REMOVE_RECURSE
  "libngs_closet.a"
)
