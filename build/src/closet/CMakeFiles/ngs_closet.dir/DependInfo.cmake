
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/closet/baselines.cpp" "src/closet/CMakeFiles/ngs_closet.dir/baselines.cpp.o" "gcc" "src/closet/CMakeFiles/ngs_closet.dir/baselines.cpp.o.d"
  "/root/repo/src/closet/closet.cpp" "src/closet/CMakeFiles/ngs_closet.dir/closet.cpp.o" "gcc" "src/closet/CMakeFiles/ngs_closet.dir/closet.cpp.o.d"
  "/root/repo/src/closet/similarity.cpp" "src/closet/CMakeFiles/ngs_closet.dir/similarity.cpp.o" "gcc" "src/closet/CMakeFiles/ngs_closet.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/ngs_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
