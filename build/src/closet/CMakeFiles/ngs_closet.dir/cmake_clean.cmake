file(REMOVE_RECURSE
  "CMakeFiles/ngs_closet.dir/baselines.cpp.o"
  "CMakeFiles/ngs_closet.dir/baselines.cpp.o.d"
  "CMakeFiles/ngs_closet.dir/closet.cpp.o"
  "CMakeFiles/ngs_closet.dir/closet.cpp.o.d"
  "CMakeFiles/ngs_closet.dir/similarity.cpp.o"
  "CMakeFiles/ngs_closet.dir/similarity.cpp.o.d"
  "libngs_closet.a"
  "libngs_closet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_closet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
