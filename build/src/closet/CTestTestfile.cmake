# CMake generated Testfile for 
# Source directory: /root/repo/src/closet
# Build directory: /root/repo/build/src/closet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
