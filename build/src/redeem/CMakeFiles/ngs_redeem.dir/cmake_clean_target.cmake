file(REMOVE_RECURSE
  "libngs_redeem.a"
)
