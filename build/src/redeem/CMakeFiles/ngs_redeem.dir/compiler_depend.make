# Empty compiler generated dependencies file for ngs_redeem.
# This may be replaced when dependencies are built.
