file(REMOVE_RECURSE
  "CMakeFiles/ngs_redeem.dir/corrector.cpp.o"
  "CMakeFiles/ngs_redeem.dir/corrector.cpp.o.d"
  "CMakeFiles/ngs_redeem.dir/em_model.cpp.o"
  "CMakeFiles/ngs_redeem.dir/em_model.cpp.o.d"
  "CMakeFiles/ngs_redeem.dir/error_dist.cpp.o"
  "CMakeFiles/ngs_redeem.dir/error_dist.cpp.o.d"
  "CMakeFiles/ngs_redeem.dir/hybrid.cpp.o"
  "CMakeFiles/ngs_redeem.dir/hybrid.cpp.o.d"
  "CMakeFiles/ngs_redeem.dir/threshold.cpp.o"
  "CMakeFiles/ngs_redeem.dir/threshold.cpp.o.d"
  "libngs_redeem.a"
  "libngs_redeem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_redeem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
