
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redeem/corrector.cpp" "src/redeem/CMakeFiles/ngs_redeem.dir/corrector.cpp.o" "gcc" "src/redeem/CMakeFiles/ngs_redeem.dir/corrector.cpp.o.d"
  "/root/repo/src/redeem/em_model.cpp" "src/redeem/CMakeFiles/ngs_redeem.dir/em_model.cpp.o" "gcc" "src/redeem/CMakeFiles/ngs_redeem.dir/em_model.cpp.o.d"
  "/root/repo/src/redeem/error_dist.cpp" "src/redeem/CMakeFiles/ngs_redeem.dir/error_dist.cpp.o" "gcc" "src/redeem/CMakeFiles/ngs_redeem.dir/error_dist.cpp.o.d"
  "/root/repo/src/redeem/hybrid.cpp" "src/redeem/CMakeFiles/ngs_redeem.dir/hybrid.cpp.o" "gcc" "src/redeem/CMakeFiles/ngs_redeem.dir/hybrid.cpp.o.d"
  "/root/repo/src/redeem/threshold.cpp" "src/redeem/CMakeFiles/ngs_redeem.dir/threshold.cpp.o" "gcc" "src/redeem/CMakeFiles/ngs_redeem.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ngs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/reptile/CMakeFiles/ngs_reptile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
