file(REMOVE_RECURSE
  "libngs_seq.a"
)
