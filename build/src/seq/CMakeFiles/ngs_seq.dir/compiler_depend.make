# Empty compiler generated dependencies file for ngs_seq.
# This may be replaced when dependencies are built.
