file(REMOVE_RECURSE
  "CMakeFiles/ngs_seq.dir/alphabet.cpp.o"
  "CMakeFiles/ngs_seq.dir/alphabet.cpp.o.d"
  "CMakeFiles/ngs_seq.dir/kmer.cpp.o"
  "CMakeFiles/ngs_seq.dir/kmer.cpp.o.d"
  "libngs_seq.a"
  "libngs_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
