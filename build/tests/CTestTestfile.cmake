# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ngs_tests[1]_include.cmake")
add_test(tools_smoke "bash" "/root/repo/tests/tools_smoke.sh" "/root/repo/build/tools")
set_tests_properties(tools_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
