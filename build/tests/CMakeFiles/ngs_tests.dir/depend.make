# Empty dependencies file for ngs_tests.
# This may be replaced when dependencies are built.
