
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abundance.cpp" "tests/CMakeFiles/ngs_tests.dir/test_abundance.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_abundance.cpp.o.d"
  "/root/repo/tests/test_assembly.cpp" "tests/CMakeFiles/ngs_tests.dir/test_assembly.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_assembly.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/ngs_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_chunked.cpp" "tests/CMakeFiles/ngs_tests.dir/test_chunked.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_chunked.cpp.o.d"
  "/root/repo/tests/test_cli_freclu.cpp" "tests/CMakeFiles/ngs_tests.dir/test_cli_freclu.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_cli_freclu.cpp.o.d"
  "/root/repo/tests/test_closet.cpp" "tests/CMakeFiles/ngs_tests.dir/test_closet.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_closet.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/ngs_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/ngs_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/ngs_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_kspec.cpp" "tests/CMakeFiles/ngs_tests.dir/test_kspec.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_kspec.cpp.o.d"
  "/root/repo/tests/test_mapper.cpp" "tests/CMakeFiles/ngs_tests.dir/test_mapper.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_mapper.cpp.o.d"
  "/root/repo/tests/test_mapreduce.cpp" "tests/CMakeFiles/ngs_tests.dir/test_mapreduce.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_mapreduce.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ngs_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_redeem.cpp" "tests/CMakeFiles/ngs_tests.dir/test_redeem.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_redeem.cpp.o.d"
  "/root/repo/tests/test_reptile.cpp" "tests/CMakeFiles/ngs_tests.dir/test_reptile.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_reptile.cpp.o.d"
  "/root/repo/tests/test_seq.cpp" "tests/CMakeFiles/ngs_tests.dir/test_seq.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_seq.cpp.o.d"
  "/root/repo/tests/test_shrec.cpp" "tests/CMakeFiles/ngs_tests.dir/test_shrec.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_shrec.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/ngs_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ngs_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ngs_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ngs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ngs_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ngs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ngs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kspec/CMakeFiles/ngs_kspec.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/ngs_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ngs_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/reptile/CMakeFiles/ngs_reptile.dir/DependInfo.cmake"
  "/root/repo/build/src/shrec/CMakeFiles/ngs_shrec.dir/DependInfo.cmake"
  "/root/repo/build/src/redeem/CMakeFiles/ngs_redeem.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ngs_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/closet/CMakeFiles/ngs_closet.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/ngs_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ngs_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
