# Empty dependencies file for ngs_cluster.
# This may be replaced when dependencies are built.
