file(REMOVE_RECURSE
  "CMakeFiles/ngs_cluster.dir/ngs_cluster.cpp.o"
  "CMakeFiles/ngs_cluster.dir/ngs_cluster.cpp.o.d"
  "ngs_cluster"
  "ngs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
