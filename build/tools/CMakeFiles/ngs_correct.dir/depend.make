# Empty dependencies file for ngs_correct.
# This may be replaced when dependencies are built.
