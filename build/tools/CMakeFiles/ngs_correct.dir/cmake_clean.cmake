file(REMOVE_RECURSE
  "CMakeFiles/ngs_correct.dir/ngs_correct.cpp.o"
  "CMakeFiles/ngs_correct.dir/ngs_correct.cpp.o.d"
  "ngs_correct"
  "ngs_correct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_correct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
