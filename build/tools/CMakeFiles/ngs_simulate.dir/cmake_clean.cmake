file(REMOVE_RECURSE
  "CMakeFiles/ngs_simulate.dir/ngs_simulate.cpp.o"
  "CMakeFiles/ngs_simulate.dir/ngs_simulate.cpp.o.d"
  "ngs_simulate"
  "ngs_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngs_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
