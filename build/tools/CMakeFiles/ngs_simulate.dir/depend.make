# Empty dependencies file for ngs_simulate.
# This may be replaced when dependencies are built.
