file(REMOVE_RECURSE
  "CMakeFiles/bench_snp_detection.dir/bench_snp_detection.cpp.o"
  "CMakeFiles/bench_snp_detection.dir/bench_snp_detection.cpp.o.d"
  "bench_snp_detection"
  "bench_snp_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snp_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
