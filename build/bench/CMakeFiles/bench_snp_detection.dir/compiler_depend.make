# Empty compiler generated dependencies file for bench_snp_detection.
# This may be replaced when dependencies are built.
