file(REMOVE_RECURSE
  "CMakeFiles/bench_assembly_validation.dir/bench_assembly_validation.cpp.o"
  "CMakeFiles/bench_assembly_validation.dir/bench_assembly_validation.cpp.o.d"
  "bench_assembly_validation"
  "bench_assembly_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assembly_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
