# Empty dependencies file for bench_assembly_validation.
# This may be replaced when dependencies are built.
