# Empty dependencies file for bench_table4_3.
# This may be replaced when dependencies are built.
