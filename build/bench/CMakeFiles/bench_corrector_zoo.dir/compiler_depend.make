# Empty compiler generated dependencies file for bench_corrector_zoo.
# This may be replaced when dependencies are built.
