file(REMOVE_RECURSE
  "CMakeFiles/bench_corrector_zoo.dir/bench_corrector_zoo.cpp.o"
  "CMakeFiles/bench_corrector_zoo.dir/bench_corrector_zoo.cpp.o.d"
  "bench_corrector_zoo"
  "bench_corrector_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corrector_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
