# Empty compiler generated dependencies file for bench_clustering_baselines.
# This may be replaced when dependencies are built.
