file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_baselines.dir/bench_clustering_baselines.cpp.o"
  "CMakeFiles/bench_clustering_baselines.dir/bench_clustering_baselines.cpp.o.d"
  "bench_clustering_baselines"
  "bench_clustering_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
