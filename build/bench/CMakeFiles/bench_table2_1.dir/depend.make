# Empty dependencies file for bench_table2_1.
# This may be replaced when dependencies are built.
