file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_7_threshold.dir/bench_sec3_7_threshold.cpp.o"
  "CMakeFiles/bench_sec3_7_threshold.dir/bench_sec3_7_threshold.cpp.o.d"
  "bench_sec3_7_threshold"
  "bench_sec3_7_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_7_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
