# Empty dependencies file for bench_sec3_7_threshold.
# This may be replaced when dependencies are built.
