# Empty dependencies file for bench_abundance_profiling.
# This may be replaced when dependencies are built.
