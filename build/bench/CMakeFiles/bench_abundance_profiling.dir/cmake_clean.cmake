file(REMOVE_RECURSE
  "CMakeFiles/bench_abundance_profiling.dir/bench_abundance_profiling.cpp.o"
  "CMakeFiles/bench_abundance_profiling.dir/bench_abundance_profiling.cpp.o.d"
  "bench_abundance_profiling"
  "bench_abundance_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abundance_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
