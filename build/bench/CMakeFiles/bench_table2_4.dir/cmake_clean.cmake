file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_4.dir/bench_table2_4.cpp.o"
  "CMakeFiles/bench_table2_4.dir/bench_table2_4.cpp.o.d"
  "bench_table2_4"
  "bench_table2_4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
