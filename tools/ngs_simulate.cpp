// ngs-simulate — generate a synthetic genome and an Illumina-like run,
// writing genome FASTA, reads FASTQ, and a truth TSV (read id, position,
// strand, error-free bases) for downstream evaluation.
//
//   ngs-simulate --genome-length 100000 --coverage 60 --error-rate 0.01 \\
//                --reads out.fastq --genome genome.fasta --truth truth.tsv

#include <fstream>
#include <iostream>

#include "io/fastx.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  util::CliParser cli("ngs-simulate",
                      "simulate a genome and an Illumina-like read set");
  cli.add_option("genome-length", "genome length in bp", true, "100000");
  cli.add_option("repeat-length", "repeat unit length (0 = no repeats)",
                 true, "0");
  cli.add_option("repeat-copies", "repeat copy count", true, "0");
  cli.add_option("read-length", "read length in bp", true, "36");
  cli.add_option("coverage", "genome coverage", true, "60");
  cli.add_option("error-rate", "average substitution error rate", true,
                 "0.01");
  cli.add_option("ambiguous-rate", "per-base N injection rate", true, "0");
  cli.add_option("seed", "RNG seed", true, "42");
  cli.add_option("reads", "output FASTQ path", true, "reads.fastq");
  cli.add_option("genome", "output genome FASTA path", true, "genome.fasta");
  cli.add_option("truth", "output truth TSV path (empty = skip)", true, "");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 42)));
  sim::GenomeSpec gspec;
  gspec.length = static_cast<std::size_t>(cli.get_int("genome-length", 100000));
  const auto rep_len = static_cast<std::size_t>(cli.get_int("repeat-length", 0));
  const auto rep_n = static_cast<std::size_t>(cli.get_int("repeat-copies", 0));
  if (rep_len > 0 && rep_n > 0) {
    gspec.repeats = {{rep_len, rep_n, 0.0}};
  }
  const auto genome = sim::simulate_genome(gspec, rng);

  const auto read_length =
      static_cast<std::size_t>(cli.get_int("read-length", 36));
  const auto model =
      sim::ErrorModel::illumina(read_length, cli.get_double("error-rate", 0.01));
  sim::ReadSimConfig cfg;
  cfg.read_length = read_length;
  cfg.coverage = cli.get_double("coverage", 60.0);
  cfg.ambiguous_rate = cli.get_double("ambiguous-rate", 0.0);
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);

  seq::ReadSet genome_set;
  genome_set.reads.push_back({"genome", genome.sequence, {}});
  io::write_fasta_file(cli.get("genome"), genome_set);
  io::write_fastq_file(cli.get("reads"), run.reads);

  if (!cli.get("truth").empty()) {
    std::ofstream truth(cli.get("truth"));
    truth << "read\tposition\tstrand\ttrue_bases\n";
    for (std::size_t i = 0; i < run.reads.size(); ++i) {
      const auto& t = run.reads.truth[i];
      truth << run.reads.reads[i].id << '\t' << t.genome_pos << '\t'
            << (t.reverse_strand ? '-' : '+') << '\t' << t.true_bases
            << '\n';
    }
  }

  std::cerr << "wrote " << run.reads.size() << " reads ("
            << run.substitution_errors << " erroneous bases, "
            << (genome.repeat_fraction * 100) << "% repeat span)\n";
  return 0;
}
