// ngs-correct-client — client for the ngs-correctd streaming correction
// daemon. Three modes:
//
//   correct (default): stream a FASTQ through the daemon and write the
//     corrected FASTQ — byte-identical to running ngs-correct offline
//     with the same method and parameters.
//
//       ngs-correct-client --socket /tmp/ngs.sock --in reads.fastq \
//                          --out corrected.fastq --method sap
//
//   stats:  print the daemon's counter dump ("key=value" lines).
//   reload: ask the daemon to re-verify and hot-swap its indexes.
//
// The correct mode keeps a window of batches in flight, retries batches
// the daemon shed under load (typed BUSY) with backoff, and restores
// input order before writing — the output file is written atomically
// (temp + rename), like ngs-correct's.
//
// Exit codes: 0 success, 2 usage/config error, 3 input/daemon I/O or
// protocol error, 4 index error (e.g. failed reload), 1 internal error.

#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "io/fastq_stream.hpp"
#include "io/fastx.hpp"
#include "service/client.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  util::CliParser cli("ngs-correct-client",
                      "client for the ngs-correctd correction daemon");
  cli.add_option("socket", "daemon socket path", true, "");
  cli.add_option("mode", "correct, stats, or reload", true, "correct");
  cli.add_option("in", "input FASTQ (correct mode)", true, "");
  cli.add_option("out", "output FASTQ (correct mode)", true,
                 "corrected.fastq");
  cli.add_option("method", "correction method served by the daemon", true,
                 "reptile");
  cli.add_option("genome-length", "genome length estimate (bp)", true,
                 "1000000");
  cli.add_option("k", "kmer length (0 = choose from genome length)", true,
                 "0");
  cli.add_option("error-rate", "error-rate estimate for redeem/hybrid", true,
                 "0.01");
  cli.add_option("batch-size", "reads per request batch", true, "1024");
  cli.add_option("window",
                 "request batches kept in flight (clamped to the daemon's "
                 "per-client limit)",
                 true, "4");
  cli.add_option("busy-retry-limit",
                 "BUSY resends tolerated per batch before giving up", true,
                 "64");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  if (cli.get("socket").empty()) {
    std::cerr << "ngs-correct-client: --socket is required\n" << cli.usage();
    return 2;
  }
  const std::string mode = cli.get("mode", "correct");
  if (mode != "correct" && mode != "stats" && mode != "reload") {
    std::cerr << "ngs-correct-client: --mode must be correct, stats, or "
                 "reload, got '"
              << mode << "'\n";
    return 2;
  }
  if (mode == "correct" && cli.get("in").empty()) {
    std::cerr << "ngs-correct-client: --in is required in correct mode\n"
              << cli.usage();
    return 2;
  }

  try {
    service::Client client(cli.get("socket"));
    client.connect();

    if (mode == "stats") {
      std::cout << client.stats();
      return 0;
    }
    if (mode == "reload") {
      const std::uint64_t epoch = client.reload();
      std::cout << "reloaded: epoch " << epoch << "\n";
      return 0;
    }

    service::HelloRequest hello;
    hello.method = cli.get("method", "reptile");
    hello.k = static_cast<std::int32_t>(cli.get_int("k", 0));
    hello.genome_length =
        static_cast<std::uint64_t>(cli.get_int("genome-length", 1000000));
    hello.error_rate = cli.get_double("error-rate", 0.01);
    const service::HelloOk limits = client.hello(hello);

    service::StreamOptions stream;
    stream.batch_size =
        static_cast<std::size_t>(cli.get_int("batch-size", 1024));
    stream.window = static_cast<std::size_t>(cli.get_int("window", 4));
    stream.busy_retry_limit =
        static_cast<std::size_t>(cli.get_int("busy-retry-limit", 64));
    if (limits.max_batch_reads > 0 &&
        stream.batch_size > limits.max_batch_reads) {
      stream.batch_size = limits.max_batch_reads;
    }

    // Same atomic-output protocol as ngs-correct: a failed run never
    // leaves a truncated corrected FASTQ behind.
    util::AtomicFile out_file(cli.get("out"));
    util::Timer timer;
    service::StreamResult result;
    {
      std::ofstream os(out_file.temp_path());
      if (!os) {
        throw Error(ErrorKind::kIo, "",
                    "cannot open for writing: " + out_file.temp_path());
      }
      io::FastqStreamReader reader(cli.get("in"));
      result = service::correct_stream(
          client, limits, stream,
          [&](std::vector<seq::Read>& reads) {
            reads.clear();
            return reader.read_batch(reads, stream.batch_size) > 0;
          },
          [&](std::vector<seq::Read>&& corrected) {
            io::write_fastq(os, corrected);
          });
      os.flush();
      if (!os) {
        throw Error(ErrorKind::kIo, "",
                    "write failed: " + out_file.temp_path());
      }
    }
    out_file.commit();

    std::cerr << "method=" << hello.method << " via daemon (epoch "
              << limits.epoch_id << ", k=" << limits.resolved_k << "): "
              << result.reads << " reads, " << result.reads_changed
              << " changed, " << result.bases_changed << " bases\n";
    if (result.busy_retries > 0) {
      std::cerr << "backpressure: " << result.busy_retries
                << " batches shed and retried\n";
    }
    std::cerr << "wrote " << cli.get("out") << " in " << timer.seconds()
              << "s (" << result.batches << " batches, window "
              << stream.window << ")\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "ngs-correct-client: " << e.what() << "\n";
    return tool_exit_code(e.kind());
  } catch (const std::invalid_argument& e) {
    std::cerr << "ngs-correct-client: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ngs-correct-client: internal error: " << e.what() << "\n";
    return 1;
  }
}
