// ngs-correctd — the long-lived streaming correction daemon. Maps one
// or more persisted spectrum indexes read-only at startup, shares them
// across every connection, and serves batched correction over a local
// socket (see src/service/). SIGHUP re-verifies and atomically swaps
// the indexes without dropping in-flight requests; SIGTERM/SIGINT shut
// down cleanly.
//
//   ngs-correctd --socket /tmp/ngs.sock --index 15=spectrum.ngsx \
//                --reads reads.fastq --threads 4
//
// --index is repeatable (one spectrum file per k; the `k=` prefix is
// optional and, when given, is validated against the file's header).
// --reads supplies the phase-1 substrate for buffered methods
// (reptile, ...); without it the daemon serves streaming methods only.
//
// Exit codes: 0 clean shutdown, 2 usage/config error, 3 input
// open/parse error, 4 index error, 1 internal error.

#include <signal.h>

#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "index/spectrum_index.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace ngs;

namespace {

/// Splits an --index argument "K=PATH" (or bare "PATH") into its parts.
/// Returns the path; `declared_k` is 0 when no prefix was given.
std::string split_index_arg(const std::string& arg, int& declared_k) {
  declared_k = 0;
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return arg;
  for (std::size_t i = 0; i < eq; ++i) {
    if (arg[i] < '0' || arg[i] > '9') return arg;  // path containing '='
  }
  declared_k = std::atoi(arg.substr(0, eq).c_str());
  return arg.substr(eq + 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ngs-correctd", "streaming correction daemon");
  cli.add_option("socket", "AF_UNIX socket path to listen on", true, "");
  cli.add_option("index",
                 "spectrum index to serve, as PATH or K=PATH (repeatable; "
                 "one file per k)",
                 true, "");
  cli.add_option("reads",
                 "FASTQ whose reads are the phase-1 substrate for buffered "
                 "methods (optional)",
                 true, "");
  cli.add_option("threads", "correction worker threads", true, "2");
  cli.add_option("queue-capacity",
                 "global admission bound in batches (full queue sheds "
                 "requests with BUSY)",
                 true, "32");
  cli.add_option("max-inflight",
                 "unanswered batches one client may have in flight", true,
                 "4");
  cli.add_option("max-batch-reads", "largest read count per request batch",
                 true, "65536");
  cli.add_option("tile-cache-mb",
                 "per-method tile-decision cache budget in MiB (matches "
                 "ngs-correct's default so served output is byte-identical)",
                 true, "32");
  cli.add_option("fault-spec",
                 "fault-injection spec (also read from NGS_FAULT_SPEC; "
                 "testing only)",
                 true, "");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  if (cli.get("socket").empty()) {
    std::cerr << "ngs-correctd: --socket is required\n" << cli.usage();
    return 2;
  }
  const auto index_args = cli.get_all("index");
  if (index_args.empty() && cli.get("reads").empty()) {
    std::cerr << "ngs-correctd: nothing to serve — pass at least one "
                 "--index and/or --reads\n"
              << cli.usage();
    return 2;
  }

  try {
    fault::Registry::instance().configure_from_env();
    if (!cli.get("fault-spec").empty()) {
      fault::Registry::instance().configure(cli.get("fault-spec"));
    }
  } catch (const Error& e) {
    std::cerr << "ngs-correctd: " << e.what() << "\n";
    return tool_exit_code(e.kind());
  }

  service::ServiceOptions options;
  options.socket_path = cli.get("socket");
  options.workers = static_cast<std::size_t>(cli.get_int("threads", 2));
  options.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 32));
  options.max_inflight_per_client =
      static_cast<std::size_t>(cli.get_int("max-inflight", 4));
  options.max_batch_reads =
      static_cast<std::size_t>(cli.get_int("max-batch-reads", 65536));

  service::IndexRegistryConfig registry;
  registry.reads_path = cli.get("reads");
  registry.tile_cache_mb =
      static_cast<std::size_t>(cli.get_int("tile-cache-mb", 32));

  try {
    for (const auto& arg : index_args) {
      int declared_k = 0;
      const std::string path = split_index_arg(arg, declared_k);
      if (declared_k > 0) {
        // The header is authoritative; a stale K= prefix is a config
        // error worth failing on before we start serving.
        const auto info = index::SpectrumIndex::read_info(path);
        if (info.build.k != declared_k) {
          std::cerr << "ngs-correctd: --index " << arg << ": file has k="
                    << info.build.k << ", not k=" << declared_k << "\n";
          return 2;
        }
      }
      registry.index_paths.push_back(path);
    }

    // Block the control signals in every thread the server will spawn;
    // the main thread handles them synchronously below.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGHUP);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    service::CorrectionServer server(options, registry);
    server.start();
    {
      const auto stats = server.stats();
      std::cout << "ngs-correctd: listening on " << options.socket_path
                << " (epoch " << stats.epoch_id << ", " << stats.indexes
                << " indexes, " << options.workers << " workers)"
                << std::endl;
    }

    for (;;) {
      int sig = 0;
      if (sigwait(&sigs, &sig) != 0) continue;
      if (sig == SIGHUP) {
        try {
          const std::uint64_t epoch = server.reload();
          std::cerr << "ngs-correctd: reloaded indexes (epoch " << epoch
                    << ")\n";
        } catch (const Error& e) {
          // Reload failure is survivable by design: the old epoch keeps
          // serving, the operator gets the typed reason.
          std::cerr << "ngs-correctd: reload failed, keeping current epoch: "
                    << e.what() << "\n";
        }
        continue;
      }
      std::cerr << "ngs-correctd: shutting down (signal " << sig << ")\n";
      break;
    }
    server.stop();
    const auto stats = server.stats();
    std::cerr << "ngs-correctd: served " << stats.batches_corrected
              << " batches / " << stats.reads_corrected << " reads over "
              << stats.connections_accepted << " connections ("
              << stats.busy_rejections << " shed, " << stats.batches_failed
              << " failed, " << stats.reloads << " reloads)\n";
    if (fault::Registry::instance().enabled()) {
      std::cerr << "fault injection: "
                << fault::Registry::instance().summary() << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "ngs-correctd: " << e.what() << "\n";
    return tool_exit_code(e.kind());
  } catch (const std::invalid_argument& e) {
    std::cerr << "ngs-correctd: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ngs-correctd: internal error: " << e.what() << "\n";
    return 1;
  }
}
