// ngs-cluster — CLOSET metagenomic read clustering from the command
// line: reads in (FASTA or FASTQ), cluster assignments out (TSV with one
// column per similarity threshold).
//
//   ngs-cluster --in 16s.fasta --thresholds 0.95,0.90,0.85 \\
//               --out clusters.tsv

#include <fstream>
#include <iostream>
#include <sstream>

#include "closet/closet.hpp"
#include "io/fastx.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  util::CliParser cli("ngs-cluster",
                      "sketch + quasi-clique metagenomic read clustering");
  cli.add_option("in", "input FASTA or FASTQ (by extension)", true, "");
  cli.add_option("out", "output TSV path", true, "clusters.tsv");
  cli.add_option("thresholds", "comma-separated similarity levels", true,
                 "0.95,0.92,0.90");
  cli.add_option("k", "sketch kmer length", true, "15");
  cli.add_option("gamma", "quasi-clique density", true, "0.6667");
  cli.add_option("cmin", "candidate screening similarity", true, "0.6");
  cli.add_option("alignment", "validate edges with banded alignment",
                 false);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested() || cli.get("in").empty()) {
    std::cout << cli.usage();
    return cli.help_requested() ? 0 : 2;
  }

  const std::string path = cli.get("in");
  const bool fastq = path.size() > 6 &&
                     (path.rfind(".fastq") == path.size() - 6 ||
                      path.rfind(".fq") == path.size() - 3);
  const auto reads =
      fastq ? io::read_fastq_file(path) : io::read_fasta_file(path);
  std::cerr << "read " << reads.size() << " sequences\n";

  closet::ClosetParams params;
  params.k = static_cast<int>(cli.get_int("k", 15));
  params.gamma = cli.get_double("gamma", 2.0 / 3.0);
  params.cmin = cli.get_double("cmin", 0.6);
  params.validate_with_alignment = cli.has("alignment");
  params.thresholds.clear();
  {
    std::stringstream ss(cli.get("thresholds"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      params.thresholds.push_back(std::atof(item.c_str()));
    }
  }

  util::Timer timer;
  closet::Closet engine(params);
  const auto result = engine.run(reads);
  std::cerr << "validated " << result.confirmed_edges << " edges in "
            << timer.seconds() << "s\n";

  std::ofstream out(cli.get("out"));
  out << "read";
  for (const auto& level : result.levels) {
    out << "\tcluster@" << level.threshold;
  }
  out << "\n";
  std::vector<std::vector<std::uint32_t>> labels;
  labels.reserve(result.levels.size());
  for (const auto& level : result.levels) {
    labels.push_back(
        closet::Closet::to_partition(level.clusters, reads.size()));
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    out << reads.reads[i].id;
    for (const auto& l : labels) out << '\t' << l[i];
    out << '\n';
  }
  for (const auto& level : result.levels) {
    std::cerr << "threshold " << level.threshold << ": "
              << level.resulting_clusters << " clusters\n";
  }
  std::cerr << "wrote " << cli.get("out") << "\n";
  return 0;
}
